#!/usr/bin/env python
"""Compare Octant against GeoLim, GeoPing, GeoTrack and shortest-ping.

Reproduces a small version of the paper's Figure 3 study: every host takes a
turn as the target while the others serve as landmarks, each method produces
a point estimate, and the per-method error distribution is printed as a table
together with the error CDF.

Run with::

    python examples/compare_methods.py [host_count]
"""

from __future__ import annotations

import sys

from repro import collect_dataset, small_deployment
from repro.evalx import format_cdf_table, format_error_table, run_accuracy_study


def main() -> None:
    host_count = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    print(f"Building a {host_count}-host deployment and collecting measurements ...")
    deployment = small_deployment(host_count=host_count, seed=19)
    dataset = collect_dataset(deployment)

    print("Running the leave-one-out accuracy study (this localizes every host "
          "with every method) ...\n")
    study = run_accuracy_study(dataset)

    print("Per-method error summary (miles), cf. the paper's Section 3 numbers:")
    print(format_error_table(study))
    print()
    print("Error CDF (fraction of targets within each error bound), cf. Figure 3:")
    print(format_cdf_table(study))


if __name__ == "__main__":
    main()

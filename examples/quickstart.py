#!/usr/bin/env python
"""Quickstart: localize one host with Octant on a small simulated deployment.

Builds a 12-host PlanetLab-like deployment, collects the all-pairs ping and
traceroute measurements, and runs the full Octant pipeline (calibration,
heights, piecewise router localization, geographic constraints, weighted
solve) for a single target.  Prints the estimated region, the point estimate
and the error against the known true position.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Octant, collect_dataset, small_deployment


def main() -> None:
    print("Building a 12-host simulated PlanetLab deployment ...")
    deployment = small_deployment(host_count=12, seed=7)
    dataset = collect_dataset(deployment)
    print(
        f"  hosts: {len(dataset.hosts)}, router hops observed: {len(dataset.routers)}, "
        f"ping pairs: {len(dataset.pings)}"
    )

    octant = Octant(dataset)
    target = dataset.host_ids[0]
    truth = dataset.true_location(target)

    print(f"\nLocalizing {target} (true position {truth}) ...")
    estimate = octant.localize(target)

    print(f"  point estimate   : {estimate.point}")
    print(f"  error            : {estimate.error_miles(truth):.1f} miles")
    print(f"  region area      : {estimate.region_area_square_miles():.0f} square miles")
    print(f"  truth in region  : {estimate.contains_true_location(truth)}")
    print(f"  constraints used : {estimate.constraints_used}")
    print(f"  solve time       : {estimate.solve_time_s:.2f} s")

    print("\nEstimated region boundary (first piece, geographic ring):")
    ring = estimate.region.boundary_geopoints()[0]
    for point in ring[:: max(1, len(ring) // 8)]:
        print(f"  {point}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""How the number of landmarks affects region-based localization (Figure 4).

Sweeps the landmark population size and reports, for Octant and GeoLim, the
fraction of targets whose true position falls inside the estimated location
region.  The paper's headline observation is that GeoLim degrades as landmarks
are added (over-aggressive constraints eventually conflict) while Octant's
weighted constraint handling keeps its containment rate high and stable.

Run with::

    python examples/landmark_sensitivity.py
"""

from __future__ import annotations

from repro import collect_dataset, small_deployment
from repro.evalx import format_landmark_sweep, run_landmark_sweep


def main() -> None:
    print("Building a 16-host deployment ...")
    deployment = small_deployment(host_count=16, seed=23)
    dataset = collect_dataset(deployment)

    counts = (6, 9, 12, 15)
    print(f"Sweeping landmark counts {counts} for Octant and GeoLim ...\n")
    points = run_landmark_sweep(dataset, landmark_counts=counts, trials=1)

    print("Fraction of targets inside the estimated region vs landmark count,")
    print("cf. the paper's Figure 4:")
    print(format_landmark_sweep(points))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Using the Octant constraint machinery directly, outside the host pipeline.

The constraint system is general (Section 2.5 of the paper): any knowledge
that can be expressed as "the node is inside / outside this area, with this
confidence" can participate in a localization.  This example localizes a
hypothetical node from hand-written evidence:

* three latency-style distance bounds from cities with known coordinates,
* a negative constraint carving out the Gulf of Mexico,
* a weak positive WHOIS-style hint around a registered city.

It then prints the resulting weighted region and point estimate.

Run with::

    python examples/custom_constraints.py
"""

from __future__ import annotations

from repro.core import (
    DiskConstraint,
    DistanceConstraint,
    GeoRegionConstraint,
    Polarity,
    WeightedRegionSolver,
)
from repro.geometry import GeoPoint, km_to_miles, projection_for_points
from repro.network import city_by_code
from repro.network.geodata import OCEAN_REGIONS


def main() -> None:
    atlanta = city_by_code("ATL").location
    dallas = city_by_code("DFW").location
    chicago = city_by_code("ORD").location
    memphis = city_by_code("MEM").location

    constraints = [
        # "Within 450 miles of Atlanta, but not within 120 miles of it."
        DistanceConstraint(
            "atlanta", atlanta, max_km=724.0, min_km=193.0, weight=0.9, label="ping:atl"
        ),
        # "Within 500 miles of Dallas."
        DistanceConstraint("dallas", dallas, max_km=805.0, weight=0.7, label="ping:dfw"),
        # "Within 700 miles of Chicago."
        DistanceConstraint("chicago", chicago, max_km=1127.0, weight=0.5, label="ping:ord"),
        # WHOIS says the block is registered in Memphis -- weak evidence.
        DiskConstraint(memphis, 300.0, Polarity.POSITIVE, weight=0.3, label="whois:memphis"),
    ]
    # Oceans are impossible locations.
    gulf = next(r for r in OCEAN_REGIONS if r.name == "gulf-of-mexico")
    constraints.append(
        GeoRegionConstraint(gulf.ring, Polarity.NEGATIVE, weight=5.0, label="ocean:gulf")
    )

    projection = projection_for_points([atlanta, dallas, chicago])
    planar = [c.to_planar(projection) for c in constraints]

    solver = WeightedRegionSolver()
    region = solver.solve(planar, projection)

    print("Weighted location region:")
    print(f"  pieces        : {len(region)}")
    print(f"  area          : {region.area_square_miles():.0f} square miles")
    print(f"  highest weight: {region.max_weight():.2f}")

    estimate = region.point_estimate()
    print(f"  point estimate: {estimate}")
    for name, location in [("Memphis", memphis), ("Atlanta", atlanta), ("Dallas", dallas)]:
        print(
            f"    distance to {name:8s}: "
            f"{km_to_miles(estimate.distance_km(location)):6.0f} miles"
        )
    nashville = GeoPoint(36.1627, -86.7816)
    print(f"  contains Nashville? {region.contains_geopoint(nashville)}")


if __name__ == "__main__":
    main()

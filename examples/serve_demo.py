#!/usr/bin/env python
"""Online serving demo: start a service, query, ingest, query again.

Builds a simulated deployment, withholds one host, and drives the
:class:`repro.serving.LocalizationService` the way a deployment would:

1. start the service over the live measurement dataset,
2. localize a known host twice (the second request rides the warm caches),
3. ask for the withheld host (the service refuses: no measurements),
4. ingest the withheld host's measurements (incremental matrix extension +
   copy-on-write snapshot swap),
5. localize it, and dump the warm/cold and cache statistics.

Run with::

    python examples/serve_demo.py
"""

from __future__ import annotations

import asyncio

from repro import LocalizationService, collect_dataset, small_deployment


async def main() -> None:
    print("Building a 13-host simulated deployment ...")
    deployment = small_deployment(host_count=13, seed=7)
    ids = sorted(deployment.host_ids)
    serving_ids, held_out = ids[:-1], ids[-1]

    # Collect the full study, but start the service with one host withheld --
    # it plays the role of a brand-new target that shows up while serving.
    full = collect_dataset(deployment)
    dataset = collect_dataset(deployment, host_ids=serving_ids)
    print(f"  serving {len(serving_ids)} hosts; withholding {held_out}")

    async with LocalizationService(dataset, workers=2) as service:
        target = serving_ids[0]
        truth = full.true_location(target)

        print(f"\nLocalizing {target} (cold) ...")
        cold = await service.localize(target)
        print(f"  point: {cold.point}, error {cold.error_miles(truth):.1f} miles")

        print(f"Localizing {target} again (warm caches) ...")
        warm = await service.localize(target)
        print(f"  same answer: {warm.point == cold.point}")

        print(f"\nAsking for the unknown host {held_out} ...")
        unknown = await service.localize(held_out)
        print(f"  refused: {unknown.details.get('error')}")

        print(f"\nIngesting {held_out}'s measurements ...")
        new_pings = [
            ping
            for (src, dst), ping in sorted(full.pings.items())
            if held_out in (src, dst)
        ]
        touched = await service.ingest(hosts=[full.hosts[held_out]], pings=new_pings)
        print(f"  touched {len(touched)} hosts; dataset is now version "
              f"{service.cache_stats()['dataset_version']}")

        print(f"Localizing {held_out} ...")
        found = await service.localize(held_out)
        new_truth = full.true_location(held_out)
        print(f"  point: {found.point}, error {found.error_miles(new_truth):.1f} miles")

        print("\nService statistics:")
        for key, value in service.cache_stats().items():
            print(f"  {key:18}: {value}")


if __name__ == "__main__":
    asyncio.run(main())

"""A minimal bounded LRU map shared by the geometry and pipeline caches.

One implementation of the evict/touch mechanics so the circle cache, the
batch engine's prepared cache and the pipeline's planarize memo cannot drift
apart in eviction or race semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

__all__ = ["BoundedLRU"]

V = TypeVar("V")


class BoundedLRU(Generic[V]):
    """Bounded mapping with least-recently-used eviction.

    Safe for unlocked sharing between threads *when the stored values are
    immutable and deterministic*: a racing insert or evict at worst
    recomputes or re-evicts an entry (the ``move_to_end``/``popitem`` races
    are tolerated), never yields a wrong value.  Callers needing atomic
    get-or-compute semantics must lock around it themselves.  ``None`` is
    not a storable value (``get`` uses it as the miss sentinel).
    """

    __slots__ = ("_entries", "capacity")

    def __init__(self, capacity: int):
        self._entries: OrderedDict[Hashable, V] = OrderedDict()
        self.capacity = max(1, capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> V | None:
        """The value for ``key`` (marked most recently used), or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            try:
                self._entries.move_to_end(key)
            except (KeyError, RuntimeError):
                pass  # racing evictor removed it; the value in hand stays valid
        return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert ``key``, evicting least-recently-used entries over capacity.

        Overwriting an existing key never evicts another entry.
        """
        entries = self._entries
        if key in entries:
            entries[key] = value
            try:
                entries.move_to_end(key)
            except (KeyError, RuntimeError):
                pass
            return
        while len(entries) >= self.capacity:
            try:
                entries.popitem(last=False)
            except (KeyError, RuntimeError):
                break  # racing evictor got there first
        entries[key] = value

    def items(self) -> list[tuple[Hashable, V]]:
        """A point-in-time list of ``(key, value)`` pairs, LRU-first.

        Materialized in one pass so callers can walk a stable snapshot (e.g.
        to carry surviving entries into a fresh cache) while other threads
        keep reading; a concurrent mutation at worst omits or duplicates the
        racing entry, mirroring the get/put race tolerance above.
        """
        while True:
            try:
                return list(self._entries.items())
            except RuntimeError:
                continue  # dict mutated mid-iteration; retry on the new state

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

"""Octant reproduction: geolocalization of Internet hosts via constraint regions.

This package reproduces *Octant: A Comprehensive Framework for the
Geolocalization of Internet Hosts* (Wong, Stoyanov, Sirer).  The public API is
organized in four layers:

* :mod:`repro.geometry` -- spherical math, Bezier-bounded areas, polygon
  boolean algebra and weighted regions.
* :mod:`repro.network`  -- the synthetic Internet substrate (topology, delay
  model, ping/traceroute, DNS and WHOIS) plus measurement datasets.
* :mod:`repro.core`     -- the Octant framework itself: constraints,
  calibration, heights, piecewise localization and the weighted solver.
* :mod:`repro.baselines` / :mod:`repro.evalx` -- the systems the paper
  compares against and the harness that regenerates its figures and tables.
* :mod:`repro.serving` -- the online front-end: an asyncio localization
  service with snapshot-per-request semantics and measurement ingest.
* :mod:`repro.resilience` -- fault injection, deadlines and cooperative
  cancellation, retry/backoff, circuit breakers and the typed error
  taxonomy behind the serving tier's graceful-degradation ladder.

Quickstart::

    from repro import build_deployment, collect_dataset, Octant

    deployment = build_deployment()
    dataset = collect_dataset(deployment)
    estimate = Octant(dataset).localize(dataset.host_ids[0])
    print(estimate.point, estimate.region_area_square_miles())
"""

from .core import (
    BatchLocalizer,
    ConstraintPipeline,
    LocationEstimate,
    Octant,
    OctantConfig,
    SolverConfig,
)
from .geometry import GeoPoint, Region
from .network import (
    Deployment,
    DeploymentConfig,
    MeasurementDataset,
    build_deployment,
    collect_dataset,
    small_deployment,
)
from .resilience import (
    DeadlineExceeded,
    FatalError,
    FaultPlan,
    OperationCancelled,
    ResilienceConfig,
    RetriableError,
    RetryPolicy,
)
from .serving import (
    ClusterConfig,
    LocalizationService,
    ShardedLocalizationService,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GeoPoint",
    "Region",
    "OctantConfig",
    "SolverConfig",
    "Octant",
    "BatchLocalizer",
    "ConstraintPipeline",
    "ClusterConfig",
    "LocalizationService",
    "ShardedLocalizationService",
    "LocationEstimate",
    "FaultPlan",
    "ResilienceConfig",
    "RetryPolicy",
    "RetriableError",
    "FatalError",
    "DeadlineExceeded",
    "OperationCancelled",
    "Deployment",
    "DeploymentConfig",
    "MeasurementDataset",
    "build_deployment",
    "collect_dataset",
    "small_deployment",
]

"""Evaluation harness: metrics, the paper's experiments and text reporting."""

from .experiments import (
    ABLATION_CONFIGS,
    AblationResult,
    AccuracyStudy,
    CalibrationScatter,
    LandmarkSweepPoint,
    MethodFactory,
    TargetResult,
    calibration_scatter,
    default_method_factories,
    run_ablation_study,
    run_accuracy_study,
    run_landmark_sweep,
)
from .metrics import (
    ErrorStatistics,
    cdf_at,
    containment_rate,
    empirical_cdf,
    percentile,
    summarize_errors,
)
from .reporting import (
    format_ablation_table,
    format_calibration_summary,
    format_cdf_table,
    format_error_table,
    format_landmark_sweep,
    format_table,
)

__all__ = [
    "ErrorStatistics",
    "empirical_cdf",
    "cdf_at",
    "percentile",
    "summarize_errors",
    "containment_rate",
    "MethodFactory",
    "TargetResult",
    "AccuracyStudy",
    "CalibrationScatter",
    "LandmarkSweepPoint",
    "AblationResult",
    "ABLATION_CONFIGS",
    "default_method_factories",
    "calibration_scatter",
    "run_accuracy_study",
    "run_landmark_sweep",
    "run_ablation_study",
    "format_table",
    "format_error_table",
    "format_cdf_table",
    "format_landmark_sweep",
    "format_calibration_summary",
    "format_ablation_table",
]

"""Plain-text reporting of experiment results.

The benchmark harness prints the same rows and series the paper reports --
error CDFs, the median/worst-case table, the containment-vs-landmarks curve --
as aligned text tables so they can be eyeballed against the paper and logged
into EXPERIMENTS.md.  No plotting dependencies are used.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .experiments import (
    AblationResult,
    AccuracyStudy,
    CalibrationScatter,
    LandmarkSweepPoint,
)
from .metrics import cdf_at

__all__ = [
    "format_table",
    "format_error_table",
    "format_cdf_table",
    "format_landmark_sweep",
    "format_calibration_summary",
    "format_ablation_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def format_error_table(study: AccuracyStudy) -> str:
    """The Section 3 table: median and worst-case error per method (miles)."""
    rows = []
    for method, stats in sorted(study.statistics().items()):
        rows.append(
            [
                method,
                stats.median,
                stats.mean,
                stats.p90,
                stats.worst,
                f"{study.containment_for(method) * 100.0:.0f}%",
                f"{study.mean_solve_time_s(method):.2f}s",
            ]
        )
    return format_table(
        ["method", "median (mi)", "mean (mi)", "p90 (mi)", "worst (mi)", "in-region", "time"],
        rows,
    )


def format_cdf_table(
    study: AccuracyStudy,
    thresholds: Sequence[float] = (25, 50, 100, 150, 200, 300, 400, 500),
) -> str:
    """Figure 3 as a table: cumulative fraction of targets below each error."""
    headers = ["method"] + [f"<={int(t)} mi" for t in thresholds]
    rows = []
    for method, errors in sorted(study.errors_by_method().items()):
        fractions = cdf_at(errors, thresholds)
        rows.append([method] + [f"{f * 100.0:.0f}%" for f in fractions])
    return format_table(headers, rows)


def format_landmark_sweep(points: Sequence[LandmarkSweepPoint]) -> str:
    """Figure 4 as a table: containment rate vs number of landmarks."""
    methods = sorted({p.method for p in points})
    counts = sorted({p.landmark_count for p in points})
    headers = ["landmarks"] + [f"{m} in-region" for m in methods] + [
        f"{m} median err (mi)" for m in methods
    ]
    rows = []
    indexed = {(p.method, p.landmark_count): p for p in points}
    for count in counts:
        row: list[object] = [count]
        for method in methods:
            p = indexed.get((method, count))
            row.append(f"{p.containment * 100.0:.0f}%" if p else "-")
        for method in methods:
            p = indexed.get((method, count))
            row.append(f"{p.median_error_miles:.0f}" if p else "-")
        rows.append(row)
    return format_table(headers, rows)


def format_calibration_summary(scatter: CalibrationScatter) -> str:
    """Figure 2 as a table: scatter extents, hull facets and percentiles."""
    lines = [f"calibration scatter for landmark {scatter.landmark_id}"]
    lines.append(f"  samples: {len(scatter.samples)}")
    for p, latency in sorted(scatter.latency_percentiles.items()):
        lines.append(f"  {p}th percentile latency: {latency:.1f} ms")
    lines.append("  upper facet R_L (latency ms -> max distance km):")
    for x, y in scatter.upper_facet:
        lines.append(f"    {x:8.1f} -> {y:8.1f}")
    lines.append("  lower facet r_L (latency ms -> min distance km):")
    for x, y in scatter.lower_facet:
        lines.append(f"    {x:8.1f} -> {y:8.1f}")
    lines.append("  2/3-speed-of-light reference (latency ms -> distance km):")
    for x, y in scatter.speed_of_light:
        lines.append(f"    {x:8.1f} -> {y:8.1f}")
    return "\n".join(lines)


def format_ablation_table(results: Sequence[AblationResult]) -> str:
    """The ablation study as a table."""
    rows = [
        [
            r.name,
            r.median_error_miles,
            r.p90_error_miles,
            r.worst_error_miles,
            f"{r.containment * 100.0:.0f}%",
            f"{r.mean_solve_time_s:.2f}s",
        ]
        for r in results
    ]
    return format_table(
        ["configuration", "median (mi)", "p90 (mi)", "worst (mi)", "in-region", "time"],
        rows,
    )

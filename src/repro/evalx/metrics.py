"""Error metrics and distribution summaries for the evaluation harness.

The paper reports localization error as the great-circle distance (in statute
miles) between the point estimate and the target's true position, summarized
as a CDF (Figure 3), the median and the worst case (the Section 3 text), and
as the fraction of targets whose true position falls inside the estimated
region (Figure 4).  This module computes those summaries from lists of
per-target results.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "ErrorStatistics",
    "empirical_cdf",
    "cdf_at",
    "percentile",
    "summarize_errors",
    "containment_rate",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class ErrorStatistics:
    """Summary statistics of a per-target error distribution (miles or km)."""

    count: int
    mean: float
    median: float
    p25: float
    p75: float
    p90: float
    p95: float
    worst: float
    best: float

    @classmethod
    def from_errors(cls, errors: Iterable[float]) -> "ErrorStatistics":
        """Build the summary from raw errors; infinite errors are excluded."""
        values = [e for e in errors if not math.isinf(e) and not math.isnan(e)]
        if not values:
            raise ValueError("no finite errors to summarize")
        return cls(
            count=len(values),
            mean=statistics.fmean(values),
            median=statistics.median(values),
            p25=percentile(values, 25),
            p75=percentile(values, 75),
            p90=percentile(values, 90),
            p95=percentile(values, 95),
            worst=max(values),
            best=min(values),
        )

    def as_dict(self) -> dict[str, float]:
        """Flat dict of the statistics, rounded for reporting."""
        return {
            "count": self.count,
            "mean": round(self.mean, 1),
            "median": round(self.median, 1),
            "p25": round(self.p25, 1),
            "p75": round(self.p75, 1),
            "p90": round(self.p90, 1),
            "p95": round(self.p95, 1),
            "worst": round(self.worst, 1),
            "best": round(self.best, 1),
        }


def empirical_cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """The empirical CDF as (value, cumulative fraction) points.

    Infinite values (failed localizations) count toward the denominator but
    never appear as breakpoints, so the CDF tops out below 1.0 when a method
    fails on some targets -- the honest way to plot a method that does not
    always produce an estimate.
    """
    finite = sorted(v for v in values if not math.isinf(v) and not math.isnan(v))
    total = len([v for v in values if not math.isnan(v)])
    if total == 0:
        return []
    return [(value, (i + 1) / total) for i, value in enumerate(finite)]


def cdf_at(values: Sequence[float], thresholds: Sequence[float]) -> list[float]:
    """Fraction of values at or below each threshold."""
    total = len([v for v in values if not math.isnan(v)])
    if total == 0:
        return [0.0 for _ in thresholds]
    out = []
    for threshold in thresholds:
        covered = sum(1 for v in values if not math.isnan(v) and v <= threshold)
        out.append(covered / total)
    return out


def summarize_errors(
    errors_by_method: Mapping[str, Sequence[float]],
) -> dict[str, ErrorStatistics]:
    """Per-method error summaries for a whole study."""
    return {
        method: ErrorStatistics.from_errors(errors)
        for method, errors in errors_by_method.items()
        if any(not math.isinf(e) for e in errors)
    }


def containment_rate(flags: Sequence[bool]) -> float:
    """Fraction of targets whose true position fell inside the estimated region."""
    if not flags:
        return 0.0
    return sum(1 for f in flags if f) / len(flags)

"""The paper's experiments, reproduced end to end.

Each function corresponds to a figure or table in the evaluation section:

* :func:`calibration_scatter` -- the data behind **Figure 2**: the
  latency-vs-distance scatter for one landmark, the convex-hull facets Octant
  derives from it, the latency percentiles and the speed-of-light reference.
* :func:`run_accuracy_study` -- the leave-one-out study behind **Figure 3**
  and the Section 3 error table: every host in turn becomes the target, every
  other host a landmark, and every method produces a point estimate whose
  error is recorded.
* :func:`run_landmark_sweep` -- **Figure 4**: the fraction of targets whose
  true position lies inside the estimated region, as a function of the number
  of landmarks, for the region-producing methods (Octant and GeoLim).
* :func:`run_ablation_study` -- the design-choice ablations DESIGN.md calls
  out (calibration, heights, negative constraints, piecewise localization,
  weights, geographic constraints).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..baselines import GeoLim, GeoPing, GeoTrack, ShortestPing
from ..core import Octant, OctantConfig
from ..core.batch import BatchLocalizer, localize_many
from ..core.calibration import CalibrationSample
from ..core.estimate import LocationEstimate
from ..geometry import rtt_ms_to_max_distance_km
from ..network.dataset import MeasurementDataset
from .metrics import ErrorStatistics, containment_rate, percentile, summarize_errors

__all__ = [
    "MethodFactory",
    "TargetResult",
    "AccuracyStudy",
    "CalibrationScatter",
    "LandmarkSweepPoint",
    "AblationResult",
    "default_method_factories",
    "calibration_scatter",
    "run_accuracy_study",
    "run_landmark_sweep",
    "run_ablation_study",
    "ABLATION_CONFIGS",
]

#: A method factory builds a localizer for a dataset; the study calls
#: ``factory(dataset)`` once and then ``localize`` per target.
MethodFactory = Callable[[MeasurementDataset], object]


def default_method_factories(
    octant_config: OctantConfig | None = None,
) -> dict[str, MethodFactory]:
    """The four methods the paper compares, plus the shortest-ping sanity check."""
    config = octant_config or OctantConfig()
    return {
        "octant": lambda ds: Octant(ds, config),
        "geolim": lambda ds: GeoLim(ds),
        "geoping": lambda ds: GeoPing(ds),
        "geotrack": lambda ds: GeoTrack(ds),
        "shortest-ping": lambda ds: ShortestPing(ds),
    }


# --------------------------------------------------------------------------- #
# Figure 2: calibration scatter
# --------------------------------------------------------------------------- #
@dataclass
class CalibrationScatter:
    """Everything needed to regenerate Figure 2 for one landmark."""

    landmark_id: str
    samples: list[CalibrationSample]
    upper_facet: list[tuple[float, float]]
    lower_facet: list[tuple[float, float]]
    latency_percentiles: dict[int, float]
    speed_of_light: list[tuple[float, float]]

    def max_latency_ms(self) -> float:
        """Largest observed latency, the plot's x extent."""
        return max(s.latency_ms for s in self.samples)


def calibration_scatter(
    dataset: MeasurementDataset,
    landmark_id: str,
    percentiles: Sequence[int] = (50, 75, 90),
) -> CalibrationScatter:
    """Collect the Figure 2 data for ``landmark_id``."""
    from ..core.calibration import calibrate_landmark

    location = dataset.true_location(landmark_id)
    samples: list[CalibrationSample] = []
    for peer in dataset.host_ids:
        if peer == landmark_id:
            continue
        rtt = dataset.min_rtt_ms(landmark_id, peer)
        if rtt is None:
            continue
        samples.append(
            CalibrationSample(rtt, location.distance_km(dataset.true_location(peer)))
        )
    if len(samples) < 3:
        raise ValueError(f"not enough peers measured from {landmark_id!r}")

    calibration = calibrate_landmark(landmark_id, samples)
    latencies = [s.latency_ms for s in samples]
    max_latency = max(latencies)
    sol_line = [
        (latency, rtt_ms_to_max_distance_km(latency))
        for latency in (0.0, max_latency * 0.25, max_latency * 0.5, max_latency * 0.75, max_latency)
    ]
    return CalibrationScatter(
        landmark_id=landmark_id,
        samples=samples,
        upper_facet=calibration.upper.breakpoints,
        lower_facet=calibration.lower.breakpoints,
        latency_percentiles={p: percentile(latencies, p) for p in percentiles},
        speed_of_light=sol_line,
    )


# --------------------------------------------------------------------------- #
# Figure 3 + Section 3 table: leave-one-out accuracy study
# --------------------------------------------------------------------------- #
@dataclass
class TargetResult:
    """One (method, target) outcome."""

    method: str
    target_id: str
    error_miles: float
    contains_truth: bool
    region_area_sq_mi: float
    solve_time_s: float
    estimate: LocationEstimate


@dataclass
class AccuracyStudy:
    """Results of the leave-one-out accuracy comparison."""

    results: list[TargetResult] = field(default_factory=list)

    def methods(self) -> list[str]:
        """Method names present in the study, sorted."""
        return sorted({r.method for r in self.results})

    def errors_for(self, method: str) -> list[float]:
        """Per-target errors (miles) for one method."""
        return [r.error_miles for r in self.results if r.method == method]

    def errors_by_method(self) -> dict[str, list[float]]:
        """Per-method error lists, the input to CDF plotting."""
        return {method: self.errors_for(method) for method in self.methods()}

    def statistics(self) -> dict[str, ErrorStatistics]:
        """Per-method error summaries (median, worst case, ...)."""
        return summarize_errors(self.errors_by_method())

    def containment_for(self, method: str) -> float:
        """Fraction of targets inside the estimated region, for region methods."""
        flags = [r.contains_truth for r in self.results if r.method == method]
        return containment_rate(flags)

    def mean_solve_time_s(self, method: str) -> float:
        """Average per-target solve time for a method."""
        times = [r.solve_time_s for r in self.results if r.method == method]
        return sum(times) / len(times) if times else 0.0


def run_accuracy_study(
    dataset: MeasurementDataset,
    method_factories: Mapping[str, MethodFactory] | None = None,
    target_ids: Sequence[str] | None = None,
    max_workers: int | str | None = None,
) -> AccuracyStudy:
    """Leave-one-out localization of every target with every method.

    Octant methods run through the batch engine (shared full-cohort
    preparation, optional ``max_workers`` fan-out); baseline methods run
    target by target.  A target a method cannot localize is recorded as a
    failed result (infinite error, empty region) instead of aborting the
    study.
    """
    factories = method_factories or default_method_factories()
    targets = list(target_ids) if target_ids is not None else dataset.host_ids
    study = AccuracyStudy()

    for method_name, factory in factories.items():
        localizer = factory(dataset)
        started = time.perf_counter()
        estimates = localize_many(
            localizer, targets, method=method_name, max_workers=max_workers
        )
        elapsed_each = (time.perf_counter() - started) / max(1, len(targets))
        for target in targets:
            estimate = estimates[target]
            truth = dataset.true_location(target)
            study.results.append(
                TargetResult(
                    method=method_name,
                    target_id=target,
                    error_miles=estimate.error_miles(truth),
                    contains_truth=estimate.contains_true_location(truth),
                    region_area_sq_mi=estimate.region_area_square_miles(),
                    solve_time_s=estimate.solve_time_s or elapsed_each,
                    estimate=estimate,
                )
            )
    return study


# --------------------------------------------------------------------------- #
# Figure 4: containment vs number of landmarks
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LandmarkSweepPoint:
    """One point of the Figure 4 curves."""

    method: str
    landmark_count: int
    containment: float
    median_error_miles: float
    targets_evaluated: int


def run_landmark_sweep(
    dataset: MeasurementDataset,
    landmark_counts: Sequence[int] = (10, 20, 30, 40, 50),
    method_factories: Mapping[str, MethodFactory] | None = None,
    target_ids: Sequence[str] | None = None,
    trials: int = 1,
    seed: int = 11,
) -> list[LandmarkSweepPoint]:
    """Containment rate as a function of the number of landmarks (Figure 4).

    For every landmark count, a random subset of hosts of that size acts as
    the landmark population and every host outside the subset (plus, as in
    the paper, subset members treated leave-one-out) is localized.  The
    containment criterion only applies to region-producing methods; point
    methods report 0, matching the paper's restriction of this figure to
    Octant and GeoLim.
    """
    factories = method_factories or {
        "octant": lambda ds: Octant(ds, OctantConfig()),
        "geolim": lambda ds: GeoLim(ds),
    }
    hosts = dataset.host_ids
    targets_pool = list(target_ids) if target_ids is not None else hosts
    rng = random.Random(seed)
    points: list[LandmarkSweepPoint] = []

    # One localizer (and, for Octant methods, one batch engine with its
    # shared DNS cache and router observation index) per method for the
    # whole sweep -- the shared state is landmark-set independent, so
    # rebuilding it per trial would redo exactly the work the batch engine
    # exists to amortize.
    localizers = {name: factory(dataset) for name, factory in factories.items()}
    engines = {
        name: BatchLocalizer(localizer) if isinstance(localizer, Octant) else None
        for name, localizer in localizers.items()
    }

    for count in landmark_counts:
        usable = min(count, len(hosts) - 1)
        per_method_flags: dict[str, list[bool]] = {name: [] for name in factories}
        per_method_errors: dict[str, list[float]] = {name: [] for name in factories}

        for _ in range(trials):
            landmarks = rng.sample(hosts, usable)
            eligible = [
                t
                for t in targets_pool
                if len([lid for lid in landmarks if lid != t]) >= 3
            ]
            for method_name, localizer in localizers.items():
                engine = engines[method_name]
                if engine is not None:
                    estimates = engine.localize_all(
                        eligible, landmark_pool=landmarks
                    )
                else:
                    estimates = {
                        t: localizer.localize(t, [lid for lid in landmarks if lid != t])
                        for t in eligible
                    }
                for target in eligible:
                    estimate = estimates[target]
                    if "error" in estimate.details:
                        # A captured per-target failure is an excluded trial,
                        # not a non-containment observation; counting it as
                        # False would silently bias the Figure 4 statistic.
                        continue
                    truth = dataset.true_location(target)
                    per_method_flags[method_name].append(
                        estimate.contains_true_location(truth)
                    )
                    per_method_errors[method_name].append(estimate.error_miles(truth))

        for method_name in factories:
            flags = per_method_flags[method_name]
            errors = [e for e in per_method_errors[method_name] if e != float("inf")]
            points.append(
                LandmarkSweepPoint(
                    method=method_name,
                    landmark_count=usable,
                    containment=containment_rate(flags),
                    median_error_miles=percentile(errors, 50) if errors else float("inf"),
                    targets_evaluated=len(flags),
                )
            )
    return points


# --------------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------------- #
#: The configurations compared by the ablation study, keyed by display name.
ABLATION_CONFIGS: dict[str, OctantConfig] = {
    "full": OctantConfig(),
    "no-calibration (speed of light)": OctantConfig().with_overrides(
        use_calibration=False, use_negative_constraints=False
    ),
    "no-heights": OctantConfig().with_overrides(use_heights=False),
    "no-negative-constraints": OctantConfig().with_overrides(use_negative_constraints=False),
    "no-piecewise": OctantConfig().with_overrides(use_piecewise=False),
    "no-weights (strict)": OctantConfig().with_overrides(use_weights=False),
    "no-geographic": OctantConfig().with_overrides(use_geographic_constraints=False),
}


@dataclass(frozen=True)
class AblationResult:
    """Error summary of one ablated configuration."""

    name: str
    median_error_miles: float
    p90_error_miles: float
    worst_error_miles: float
    containment: float
    mean_solve_time_s: float


def run_ablation_study(
    dataset: MeasurementDataset,
    configs: Mapping[str, OctantConfig] | None = None,
    target_ids: Sequence[str] | None = None,
) -> list[AblationResult]:
    """Compare Octant configurations with individual mechanisms disabled."""
    chosen = configs or ABLATION_CONFIGS
    targets = list(target_ids) if target_ids is not None else dataset.host_ids
    results: list[AblationResult] = []

    for name, config in chosen.items():
        octant = Octant(dataset, config)
        estimates = BatchLocalizer(octant).localize_all(targets)
        errors: list[float] = []
        flags: list[bool] = []
        times: list[float] = []
        for target in targets:
            truth = dataset.true_location(target)
            estimate = estimates[target]
            errors.append(estimate.error_miles(truth))
            flags.append(estimate.contains_true_location(truth))
            times.append(estimate.solve_time_s)
        finite = [e for e in errors if e != float("inf")]
        stats = ErrorStatistics.from_errors(finite) if finite else None
        results.append(
            AblationResult(
                name=name,
                median_error_miles=stats.median if stats else float("inf"),
                p90_error_miles=stats.p90 if stats else float("inf"),
                worst_error_miles=stats.worst if stats else float("inf"),
                containment=containment_rate(flags),
                mean_solve_time_s=sum(times) / len(times) if times else 0.0,
            )
        )
    return results

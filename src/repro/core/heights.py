"""Height (minimum queuing delay) estimation -- Section 2.2 of the paper.

A measured round-trip time decomposes into transmission (propagation) delay,
which correlates with distance, and an inelastic per-endpoint component the
paper calls the node's *height*: access-link serialization, last-mile
congestion, end-host processing.  Heights inflate every measurement a node
takes part in and, left uncorrected, systematically loosen the calibrated
latency-to-distance bounds.

Octant estimates heights from inter-landmark measurements alone.  For every
pair of primary landmarks ``a, b`` with known positions, the excess delay
``[a,b] - (a,b)`` (measured RTT minus the RTT-equivalent of the great-circle
distance) is attributed to the two endpoints: ``h_a + h_b ~= [a,b] - (a,b)``.
Stacking one equation per pair gives an overdetermined linear system solved
in the least-squares sense (the paper's 3-landmark example generalizes to the
full landmark set).  Target heights are then recovered from the target's
measurements to the landmarks by jointly fitting the target's height and a
rough position -- the position itself is noisy and discarded, exactly as the
paper notes, but the height estimate is what allows measurement adjustment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..geometry import GeoPoint, distance_km_to_min_rtt_ms, geographic_midpoint
from ..geometry.sphere import FIBER_SPEED_KM_PER_MS

__all__ = [
    "HeightModel",
    "estimate_landmark_heights",
    "estimate_landmark_heights_lstsq",
    "estimate_target_height",
]


@dataclass(frozen=True)
class HeightModel:
    """Estimated per-node heights (in RTT milliseconds attributable to the node)."""

    heights_ms: dict[str, float]
    residual_ms: float

    def height(self, node_id: str) -> float:
        """Height of a node; unknown nodes are assumed to add no delay."""
        return self.heights_ms.get(node_id, 0.0)

    def adjusted_rtt_ms(self, rtt_ms: float, node_a: str, node_b: str) -> float:
        """Measurement with both endpoints' heights removed (never below zero)."""
        return max(0.0, rtt_ms - self.height(node_a) - self.height(node_b))

    def __len__(self) -> int:
        return len(self.heights_ms)


def _quantile_sorted(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence.

    Matches numpy's default ``linear`` method, including its two-sided lerp
    (interpolating from the upper neighbour when the fractional rank is at or
    above one half), so it can stand in for ``np.quantile`` on the height
    estimation hot path without changing results.
    """
    n = len(values)
    if n == 1:
        return float(values[0])
    position = q * (n - 1)
    low = int(position)
    if low >= n - 1:
        return float(values[n - 1])
    t = position - low
    a = values[low]
    b = values[low + 1]
    if t == 0.0:
        return float(a)
    diff = b - a
    if t >= 0.5:
        return float(b - diff * (1.0 - t))
    return float(a + diff * t)


def _pairwise_excess_table(
    landmark_locations: Mapping[str, GeoPoint],
    pairwise_rtt_ms: Mapping[tuple[str, str], float],
    distance_km: Callable[[str, str], float] | None = None,
) -> tuple[list[str], dict[tuple[str, str], float]]:
    """Per-pair excess delay (RTT minus propagation), symmetric and deduplicated.

    ``distance_km`` optionally supplies precomputed great-circle distances
    (e.g. the full-cohort matrix cached on the dataset); it must return values
    identical to ``locations[a].distance_km(locations[b])``.  Pairs involving
    hosts absent from ``landmark_locations`` are ignored, which is how a
    leave-one-out exclusion mask is applied: pass the full pairwise matrix
    together with the masked location map.
    """
    landmark_ids = sorted(landmark_locations)
    index = set(landmark_ids)
    if len(landmark_ids) < 3:
        raise ValueError("height estimation needs at least 3 landmarks")

    best: dict[tuple[str, str], float] = {}
    for (a, b), rtt in pairwise_rtt_ms.items():
        if a not in index or b not in index or a == b:
            continue
        key = (a, b) if a <= b else (b, a)
        if key not in best or rtt < best[key]:
            best[key] = rtt
    if len(best) < len(landmark_ids):
        raise ValueError(
            "height estimation needs at least as many measured pairs as landmarks; "
            f"got {len(best)} pairs for {len(landmark_ids)} landmarks"
        )

    excess: dict[tuple[str, str], float] = {}
    for (a, b), rtt in best.items():
        if distance_km is not None:
            distance = distance_km(a, b)
        else:
            distance = landmark_locations[a].distance_km(landmark_locations[b])
        excess[(a, b)] = rtt - distance_km_to_min_rtt_ms(distance)
    return landmark_ids, excess


def estimate_landmark_heights(
    landmark_locations: Mapping[str, GeoPoint],
    pairwise_rtt_ms: Mapping[tuple[str, str], float],
    quantile: float = 0.15,
    iterations: int = 10,
    distance_km: Callable[[str, str], float] | None = None,
) -> HeightModel:
    """Estimate the per-landmark *minimum* excess delay (the paper's height).

    The excess of a measurement over the propagation floor mixes two effects:
    the per-endpoint constant the paper calls height (access links, end-host
    stacks, fixed backhaul to the provider PoP) and per-path route inflation,
    which varies pair by pair.  A least-squares fit of ``h_a + h_b ~= excess``
    spreads the inflation over the endpoints and grossly over-estimates
    heights; Octant wants the *minimum* component only, so the estimator
    iterates a robust low-quantile fix-point::

        h_a <- quantile_q over peers b of (excess_ab - h_b)

    With a small ``quantile`` the estimate converges to the constant component
    seen on the landmark's least-inflated paths, which is exactly the
    inelastic part the adjustment should remove.  Heights are clamped to be
    non-negative.
    """
    if not 0.0 <= quantile <= 0.5:
        raise ValueError(f"quantile must be in [0, 0.5], got {quantile!r}")
    landmark_ids, excess = _pairwise_excess_table(
        landmark_locations, pairwise_rtt_ms, distance_km
    )

    peers: dict[str, list[tuple[str, float]]] = {lid: [] for lid in landmark_ids}
    for (a, b), value in excess.items():
        peers[a].append((b, value))
        peers[b].append((a, value))

    heights = {lid: 0.0 for lid in landmark_ids}
    for _ in range(iterations):
        updated: dict[str, float] = {}
        for lid in landmark_ids:
            observations = peers[lid]
            if not observations:
                updated[lid] = 0.0
                continue
            implied = sorted(value - heights[peer] for peer, value in observations)
            rank = min(len(implied) - 1, max(0, int(round(quantile * (len(implied) - 1)))))
            updated[lid] = max(0.0, implied[rank])
        # Damped update keeps the fix-point iteration stable.
        heights = {
            lid: 0.5 * heights[lid] + 0.5 * updated[lid] for lid in landmark_ids
        }

    residuals = [
        max(0.0, value - heights[a] - heights[b]) for (a, b), value in excess.items()
    ]
    residual = float(np.sqrt(np.mean(np.square(residuals)))) if residuals else 0.0
    return HeightModel(heights_ms=dict(heights), residual_ms=residual)


def estimate_landmark_heights_lstsq(
    landmark_locations: Mapping[str, GeoPoint],
    pairwise_rtt_ms: Mapping[tuple[str, str], float],
) -> HeightModel:
    """The naive least-squares variant of the height system (for comparison).

    Solves the paper's linear system ``h_a + h_b = [a,b] - (a,b)`` literally,
    in the least-squares sense.  On paths with little route inflation it
    matches :func:`estimate_landmark_heights`; with realistic inflation it
    over-estimates heights because inflation gets averaged into the endpoints.
    Kept as a reference point for tests and the ablation discussion.
    """
    landmark_ids, excess = _pairwise_excess_table(landmark_locations, pairwise_rtt_ms)
    index = {lid: i for i, lid in enumerate(landmark_ids)}

    rows = []
    rhs = []
    for (a, b), value in sorted(excess.items()):
        row = np.zeros(len(landmark_ids))
        row[index[a]] = 1.0
        row[index[b]] = 1.0
        rows.append(row)
        rhs.append(value)

    matrix = np.vstack(rows)
    target = np.asarray(rhs)
    solution, _, _, _ = np.linalg.lstsq(matrix, target, rcond=None)
    heights = np.maximum(solution, 0.0)
    residual = float(np.sqrt(np.mean((matrix @ heights - target) ** 2)))

    return HeightModel(
        heights_ms={lid: float(heights[index[lid]]) for lid in landmark_ids},
        residual_ms=residual,
    )


def estimate_target_height(
    target_rtts_ms: Mapping[str, float],
    landmark_locations: Mapping[str, GeoPoint],
    landmark_heights: HeightModel,
    quantile: float = 0.15,
    refine_step_deg: float = 1.0,
) -> tuple[float, GeoPoint]:
    """Estimate a target's height (and a rough position) from its measurements.

    Follows the paper's Section 2.2: solve, over all landmarks ``a`` the
    target was probed from, the system ``h_a + h_t + (a, t) = [a, t]`` for the
    target height ``h_t`` and a rough position, where ``(a, t)`` is the
    RTT-equivalent of the great-circle distance from a candidate position.

    The position search evaluates every landmark location as a candidate (the
    target is always bracketed by landmarks in the paper's setting) and then
    refines on a small local grid around the best candidate.  Given a
    position, the height is the low-quantile of the implied per-landmark
    heights -- the same robust statistic used for the landmark heights, so
    target and landmark heights are directly comparable.  The returned
    position is noisy and, as the paper notes, not used downstream; the height
    is what the measurement adjustment needs.
    """
    usable = {
        lid: rtt
        for lid, rtt in target_rtts_ms.items()
        if lid in landmark_locations and rtt >= 0
    }
    if len(usable) < 3:
        raise ValueError("target height estimation needs measurements to >= 3 landmarks")

    landmark_ids = sorted(usable)
    locations = [landmark_locations[lid] for lid in landmark_ids]
    rtts = np.asarray([usable[lid] for lid in landmark_ids])
    lm_heights = np.asarray([landmark_heights.height(lid) for lid in landmark_ids])

    # No position can make the target height exceed the smallest
    # height-corrected measurement: the height is an additive component of
    # every RTT the target participates in.
    height_ceiling = max(0.0, float(np.min(rtts - lm_heights)))

    # Candidate-independent terms, hoisted out of the (heavily repeated)
    # position evaluation: landmark coordinates in radians, their cosines,
    # and the height-corrected measurements the propagation estimate is
    # subtracted from.
    lat_rad = [math.radians(loc.lat) for loc in locations]
    lon_rad = [math.radians(loc.lon) for loc in locations]
    cos_lat = [math.cos(lat) for lat in lat_rad]
    corrected = (rtts - lm_heights).tolist()  # native floats for the hot loop
    count = len(landmark_ids)
    sin = math.sin
    asin = math.asin
    sqrt = math.sqrt

    def evaluate(lat_deg: float, lon_deg: float) -> tuple[float, float]:
        """Optimal height and RMS residual for a candidate position."""
        phi = math.radians(lat_deg)
        lam = math.radians(lon_deg)
        cos_phi = math.cos(phi)
        # Haversine to every landmark, then the implied target height after
        # removing the landmark's height and the propagation floor
        # (2 * distance / fiber speed, the scalar distance_km_to_min_rtt_ms).
        implied_list = []
        for i in range(count):
            s1 = sin((lat_rad[i] - phi) / 2.0)
            s2 = sin((lon_rad[i] - lam) / 2.0)
            h = s1 * s1 + cos_phi * cos_lat[i] * (s2 * s2)
            if h < 0.0:
                h = 0.0
            elif h > 1.0:
                h = 1.0
            distance = 2.0 * 6371.0088 * asin(sqrt(h))
            implied_list.append(corrected[i] - 2.0 * distance / FIBER_SPEED_KM_PER_MS)
        implied_list.sort()
        height = _quantile_sorted(implied_list, quantile)
        height = min(max(0.0, height), height_ceiling)
        total = 0.0
        for value in implied_list:
            deviation = value - height
            total += deviation * deviation
        residual = sqrt(total / count)
        return height, residual

    candidates: list[tuple[float, float]] = [(loc.lat, loc.lon) for loc in locations]
    midpoint = geographic_midpoint(locations)
    candidates.append((midpoint.lat, midpoint.lon))

    best_height = 0.0
    best_residual = math.inf
    best_lat, best_lon = candidates[0]
    for lat, lon in candidates:
        height, residual = evaluate(lat, lon)
        if residual < best_residual:
            best_residual = residual
            best_height = height
            best_lat, best_lon = lat, lon

    # Local refinement around the best landmark-anchored candidate.
    step = refine_step_deg
    for _ in range(3):
        improved = False
        for dlat in (-step, 0.0, step):
            for dlon in (-step, 0.0, step):
                if dlat == 0.0 and dlon == 0.0:
                    continue
                lat = max(-89.0, min(89.0, best_lat + dlat))
                lon = ((best_lon + dlon + 180.0) % 360.0) - 180.0
                height, residual = evaluate(lat, lon)
                if residual < best_residual:
                    best_residual = residual
                    best_height = height
                    best_lat, best_lon = lat, lon
                    improved = True
        if not improved:
            step /= 2.0

    return best_height, GeoPoint(best_lat, best_lon)


def pairwise_excess_ms(
    location_a: GeoPoint, location_b: GeoPoint, rtt_ms: float
) -> float:
    """Excess of a measurement over the propagation floor for a known pair.

    Convenience used by tests and diagnostics: ``[a,b] - (a,b)``, floored at
    zero because measurement noise can push the difference slightly negative.
    """
    transmission = distance_km_to_min_rtt_ms(location_a.distance_km(location_b))
    return max(0.0, rtt_ms - transmission)

"""Height (minimum queuing delay) estimation -- Section 2.2 of the paper.

A measured round-trip time decomposes into transmission (propagation) delay,
which correlates with distance, and an inelastic per-endpoint component the
paper calls the node's *height*: access-link serialization, last-mile
congestion, end-host processing.  Heights inflate every measurement a node
takes part in and, left uncorrected, systematically loosen the calibrated
latency-to-distance bounds.

Octant estimates heights from inter-landmark measurements alone.  For every
pair of primary landmarks ``a, b`` with known positions, the excess delay
``[a,b] - (a,b)`` (measured RTT minus the RTT-equivalent of the great-circle
distance) is attributed to the two endpoints: ``h_a + h_b ~= [a,b] - (a,b)``.
Stacking one equation per pair gives an overdetermined linear system solved
in the least-squares sense (the paper's 3-landmark example generalizes to the
full landmark set).  Target heights are then recovered from the target's
measurements to the landmarks by jointly fitting the target's height and a
rough position -- the position itself is noisy and discarded, exactly as the
paper notes, but the height estimate is what allows measurement adjustment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..geometry import GeoPoint, distance_km_to_min_rtt_ms, geographic_midpoint
from ..geometry.sphere import FIBER_SPEED_KM_PER_MS

__all__ = [
    "HeightModel",
    "TargetHeightTables",
    "estimate_landmark_heights",
    "estimate_landmark_heights_lstsq",
    "estimate_landmark_heights_many",
    "estimate_target_height",
    "estimate_target_height_tabled",
]


@dataclass(frozen=True)
class HeightModel:
    """Estimated per-node heights (in RTT milliseconds attributable to the node)."""

    heights_ms: dict[str, float]
    residual_ms: float

    def height(self, node_id: str) -> float:
        """Height of a node; unknown nodes are assumed to add no delay."""
        return self.heights_ms.get(node_id, 0.0)

    def adjusted_rtt_ms(self, rtt_ms: float, node_a: str, node_b: str) -> float:
        """Measurement with both endpoints' heights removed (never below zero)."""
        return max(0.0, rtt_ms - self.height(node_a) - self.height(node_b))

    def __len__(self) -> int:
        return len(self.heights_ms)


def _quantile_sorted(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence.

    Matches numpy's default ``linear`` method, including its two-sided lerp
    (interpolating from the upper neighbour when the fractional rank is at or
    above one half), so it can stand in for ``np.quantile`` on the height
    estimation hot path without changing results.
    """
    n = len(values)
    if n == 1:
        return float(values[0])
    position = q * (n - 1)
    low = int(position)
    if low >= n - 1:
        return float(values[n - 1])
    t = position - low
    a = values[low]
    b = values[low + 1]
    if t == 0.0:
        return float(a)
    diff = b - a
    if t >= 0.5:
        return float(b - diff * (1.0 - t))
    return float(a + diff * t)


def _pairwise_excess_table(
    landmark_locations: Mapping[str, GeoPoint],
    pairwise_rtt_ms: Mapping[tuple[str, str], float],
    distance_km: Callable[[str, str], float] | None = None,
) -> tuple[list[str], dict[tuple[str, str], float]]:
    """Per-pair excess delay (RTT minus propagation), symmetric and deduplicated.

    ``distance_km`` optionally supplies precomputed great-circle distances
    (e.g. the full-cohort matrix cached on the dataset); it must return values
    identical to ``locations[a].distance_km(locations[b])``.  Pairs involving
    hosts absent from ``landmark_locations`` are ignored, which is how a
    leave-one-out exclusion mask is applied: pass the full pairwise matrix
    together with the masked location map.
    """
    landmark_ids = sorted(landmark_locations)
    index = set(landmark_ids)
    if len(landmark_ids) < 3:
        raise ValueError("height estimation needs at least 3 landmarks")

    best: dict[tuple[str, str], float] = {}
    for (a, b), rtt in pairwise_rtt_ms.items():
        if a not in index or b not in index or a == b:
            continue
        key = (a, b) if a <= b else (b, a)
        if key not in best or rtt < best[key]:
            best[key] = rtt
    if len(best) < len(landmark_ids):
        raise ValueError(
            "height estimation needs at least as many measured pairs as landmarks; "
            f"got {len(best)} pairs for {len(landmark_ids)} landmarks"
        )

    excess: dict[tuple[str, str], float] = {}
    for (a, b), rtt in best.items():
        if distance_km is not None:
            distance = distance_km(a, b)
        else:
            distance = landmark_locations[a].distance_km(landmark_locations[b])
        excess[(a, b)] = rtt - distance_km_to_min_rtt_ms(distance)
    return landmark_ids, excess


def estimate_landmark_heights(
    landmark_locations: Mapping[str, GeoPoint],
    pairwise_rtt_ms: Mapping[tuple[str, str], float],
    quantile: float = 0.15,
    iterations: int = 10,
    distance_km: Callable[[str, str], float] | None = None,
) -> HeightModel:
    """Estimate the per-landmark *minimum* excess delay (the paper's height).

    The excess of a measurement over the propagation floor mixes two effects:
    the per-endpoint constant the paper calls height (access links, end-host
    stacks, fixed backhaul to the provider PoP) and per-path route inflation,
    which varies pair by pair.  A least-squares fit of ``h_a + h_b ~= excess``
    spreads the inflation over the endpoints and grossly over-estimates
    heights; Octant wants the *minimum* component only, so the estimator
    iterates a robust low-quantile fix-point::

        h_a <- quantile_q over peers b of (excess_ab - h_b)

    With a small ``quantile`` the estimate converges to the constant component
    seen on the landmark's least-inflated paths, which is exactly the
    inelastic part the adjustment should remove.  Heights are clamped to be
    non-negative.
    """
    if not 0.0 <= quantile <= 0.5:
        raise ValueError(f"quantile must be in [0, 0.5], got {quantile!r}")
    landmark_ids, excess = _pairwise_excess_table(
        landmark_locations, pairwise_rtt_ms, distance_km
    )

    peers: dict[str, list[tuple[str, float]]] = {lid: [] for lid in landmark_ids}
    for (a, b), value in excess.items():
        peers[a].append((b, value))
        peers[b].append((a, value))

    heights = {lid: 0.0 for lid in landmark_ids}
    for _ in range(iterations):
        updated: dict[str, float] = {}
        for lid in landmark_ids:
            observations = peers[lid]
            if not observations:
                updated[lid] = 0.0
                continue
            implied = sorted(value - heights[peer] for peer, value in observations)
            rank = min(len(implied) - 1, max(0, int(round(quantile * (len(implied) - 1)))))
            updated[lid] = max(0.0, implied[rank])
        # Damped update keeps the fix-point iteration stable.
        heights = {
            lid: 0.5 * heights[lid] + 0.5 * updated[lid] for lid in landmark_ids
        }

    residuals = [
        max(0.0, value - heights[a] - heights[b]) for (a, b), value in excess.items()
    ]
    residual = float(np.sqrt(np.mean(np.square(residuals)))) if residuals else 0.0
    return HeightModel(heights_ms=dict(heights), residual_ms=residual)


def estimate_landmark_heights_many(
    rosters: Sequence[Mapping[str, GeoPoint]],
    pairwise_rtt_ms,
    quantile: float = 0.15,
    iterations: int = 10,
    distance_km: Callable[[str, str], float] | None = None,
) -> list[HeightModel | ValueError]:
    """Cohort-axis :func:`estimate_landmark_heights` over many landmark rosters.

    Each entry of ``rosters`` is the landmark location map one scalar call
    would receive (typically the shared cohort locations minus one target, so
    the leave-one-out mask is expressed by roster membership).  All rosters
    draw their measurements from the same ``pairwise_rtt_ms``, which makes
    the fix-point iteration a single ``(cohort, landmark, landmark)`` tensor
    pass instead of a per-target Python loop.

    Results are bitwise identical to the scalar estimator: the excess table
    is built with the same scalar arithmetic per measured pair, the quantile
    rank and damped update replicate the reference expression ordering, and
    the residual reduces the per-target excess rows in the scalar iteration
    order.  Per-roster failures (too few landmarks or pairs) are captured as
    ``ValueError`` entries instead of aborting the cohort.

    The fast path requires a matrix-backed ``pairwise_rtt_ms`` (the
    :class:`~repro.network.dataset.PairMatrixView` interface: sorted ``.ids``
    plus a dense ``.matrix``); any other mapping falls back to scalar calls.
    """
    if not 0.0 <= quantile <= 0.5:
        raise ValueError(f"quantile must be in [0, 0.5], got {quantile!r}")
    rosters = list(rosters)
    if not rosters:
        return []

    view_ids = getattr(pairwise_rtt_ms, "ids", None)
    view_matrix = getattr(pairwise_rtt_ms, "matrix", None)
    if view_ids is None or view_matrix is None or list(view_ids) != sorted(view_ids):
        results: list[HeightModel | ValueError] = []
        for roster in rosters:
            try:
                results.append(
                    estimate_landmark_heights(
                        roster,
                        pairwise_rtt_ms,
                        quantile=quantile,
                        iterations=iterations,
                        distance_km=distance_km,
                    )
                )
            except ValueError as exc:
                results.append(exc)
        return results

    union = sorted({lid for roster in rosters for lid in roster})
    merged_locations: dict[str, GeoPoint] = {}
    for roster in rosters:
        for lid, location in roster.items():
            merged_locations.setdefault(lid, location)

    size = len(union)
    union_index = {lid: i for i, lid in enumerate(union)}
    view_index = {lid: i for i, lid in enumerate(view_ids)}
    row_idx, col_idx = np.triu_indices(size, 1)

    # Excess table over the union roster, one scalar evaluation per measured
    # pair so every value is bit-for-bit the scalar `_pairwise_excess_table`
    # entry.  Unmeasured pairs stay NaN.
    excess_vals = np.full(row_idx.shape[0], np.nan)
    for n, (p, q) in enumerate(zip(row_idx.tolist(), col_idx.tolist())):
        a, b = union[p], union[q]
        ia = view_index.get(a)
        ib = view_index.get(b)
        if ia is None or ib is None:
            continue
        rtt = view_matrix[ia, ib] if ia < ib else view_matrix[ib, ia]
        if not math.isfinite(rtt):
            continue
        if distance_km is not None:
            distance = distance_km(a, b)
        else:
            distance = merged_locations[a].distance_km(merged_locations[b])
        excess_vals[n] = rtt - distance_km_to_min_rtt_ms(distance)

    excess = np.full((size, size), np.nan)
    excess[row_idx, col_idx] = excess_vals
    excess[col_idx, row_idx] = excess_vals
    measured = np.isfinite(excess)
    excess_filled = np.where(measured, excess, 0.0)

    cohort = len(rosters)
    member = np.zeros((cohort, size), dtype=bool)
    for t, roster in enumerate(rosters):
        for lid in roster:
            member[t, union_index[lid]] = True

    valid = member[:, :, None] & member[:, None, :] & measured[None, :, :]
    counts = valid.sum(axis=2)
    pair_valid = valid[:, row_idx, col_idx]
    pair_counts = pair_valid.sum(axis=1)

    errors: dict[int, ValueError] = {}
    for t, roster in enumerate(rosters):
        if len(roster) < 3:
            errors[t] = ValueError("height estimation needs at least 3 landmarks")
        elif int(pair_counts[t]) < len(roster):
            errors[t] = ValueError(
                "height estimation needs at least as many measured pairs as landmarks; "
                f"got {int(pair_counts[t])} pairs for {len(roster)} landmarks"
            )

    # rank = min(n - 1, max(0, round(quantile * (n - 1)))), exactly as the
    # scalar loop computes it (banker's rounding); counts of zero gather a
    # dummy slot and are masked to the scalar's 0.0 fallback below.
    rank = np.rint(quantile * (counts - 1).astype(float)).astype(np.int64)
    rank = np.minimum(counts - 1, np.maximum(0, rank))
    rank = np.maximum(rank, 0)

    heights = np.zeros((cohort, size))
    for _ in range(iterations):
        implied = excess_filled[None, :, :] - heights[:, None, :]
        implied = np.where(valid, implied, np.inf)
        implied.sort(axis=2)
        gathered = np.take_along_axis(implied, rank[:, :, None], axis=2)[:, :, 0]
        updated = np.where(counts > 0, np.maximum(0.0, gathered), 0.0)
        # Damped update keeps the fix-point iteration stable.
        heights = 0.5 * heights + 0.5 * updated

    results = []
    for t, roster in enumerate(rosters):
        if t in errors:
            results.append(errors[t])
            continue
        keep = np.nonzero(pair_valid[t])[0]
        residuals = np.maximum(
            0.0,
            (excess_vals[keep] - heights[t, row_idx[keep]]) - heights[t, col_idx[keep]],
        )
        residual = (
            float(np.sqrt(np.mean(np.square(residuals)))) if residuals.size else 0.0
        )
        landmark_ids = sorted(roster)
        heights_ms = {
            lid: float(heights[t, union_index[lid]]) for lid in landmark_ids
        }
        results.append(HeightModel(heights_ms=heights_ms, residual_ms=residual))
    return results


def estimate_landmark_heights_lstsq(
    landmark_locations: Mapping[str, GeoPoint],
    pairwise_rtt_ms: Mapping[tuple[str, str], float],
) -> HeightModel:
    """The naive least-squares variant of the height system (for comparison).

    Solves the paper's linear system ``h_a + h_b = [a,b] - (a,b)`` literally,
    in the least-squares sense.  On paths with little route inflation it
    matches :func:`estimate_landmark_heights`; with realistic inflation it
    over-estimates heights because inflation gets averaged into the endpoints.
    Kept as a reference point for tests and the ablation discussion.
    """
    landmark_ids, excess = _pairwise_excess_table(landmark_locations, pairwise_rtt_ms)
    index = {lid: i for i, lid in enumerate(landmark_ids)}

    rows = []
    rhs = []
    for (a, b), value in sorted(excess.items()):
        row = np.zeros(len(landmark_ids))
        row[index[a]] = 1.0
        row[index[b]] = 1.0
        rows.append(row)
        rhs.append(value)

    matrix = np.vstack(rows)
    target = np.asarray(rhs)
    solution, _, _, _ = np.linalg.lstsq(matrix, target, rcond=None)
    heights = np.maximum(solution, 0.0)
    residual = float(np.sqrt(np.mean((matrix @ heights - target) ** 2)))

    return HeightModel(
        heights_ms={lid: float(heights[index[lid]]) for lid in landmark_ids},
        residual_ms=residual,
    )


def estimate_target_height(
    target_rtts_ms: Mapping[str, float],
    landmark_locations: Mapping[str, GeoPoint],
    landmark_heights: HeightModel,
    quantile: float = 0.15,
    refine_step_deg: float = 1.0,
) -> tuple[float, GeoPoint]:
    """Estimate a target's height (and a rough position) from its measurements.

    Follows the paper's Section 2.2: solve, over all landmarks ``a`` the
    target was probed from, the system ``h_a + h_t + (a, t) = [a, t]`` for the
    target height ``h_t`` and a rough position, where ``(a, t)`` is the
    RTT-equivalent of the great-circle distance from a candidate position.

    The position search evaluates every landmark location as a candidate (the
    target is always bracketed by landmarks in the paper's setting) and then
    refines on a small local grid around the best candidate.  Given a
    position, the height is the low-quantile of the implied per-landmark
    heights -- the same robust statistic used for the landmark heights, so
    target and landmark heights are directly comparable.  The returned
    position is noisy and, as the paper notes, not used downstream; the height
    is what the measurement adjustment needs.
    """
    usable = {
        lid: rtt
        for lid, rtt in target_rtts_ms.items()
        if lid in landmark_locations and rtt >= 0
    }
    if len(usable) < 3:
        raise ValueError("target height estimation needs measurements to >= 3 landmarks")

    landmark_ids = sorted(usable)
    locations = [landmark_locations[lid] for lid in landmark_ids]
    rtts = np.asarray([usable[lid] for lid in landmark_ids])
    lm_heights = np.asarray([landmark_heights.height(lid) for lid in landmark_ids])

    # No position can make the target height exceed the smallest
    # height-corrected measurement: the height is an additive component of
    # every RTT the target participates in.
    height_ceiling = max(0.0, float(np.min(rtts - lm_heights)))

    # Candidate-independent terms, hoisted out of the (heavily repeated)
    # position evaluation: landmark coordinates in radians, their cosines,
    # and the height-corrected measurements the propagation estimate is
    # subtracted from.
    lat_rad = [math.radians(loc.lat) for loc in locations]
    lon_rad = [math.radians(loc.lon) for loc in locations]
    cos_lat = [math.cos(lat) for lat in lat_rad]
    corrected = (rtts - lm_heights).tolist()  # native floats for the hot loop
    count = len(landmark_ids)
    sin = math.sin
    asin = math.asin
    sqrt = math.sqrt

    def evaluate(lat_deg: float, lon_deg: float) -> tuple[float, float]:
        """Optimal height and RMS residual for a candidate position."""
        phi = math.radians(lat_deg)
        lam = math.radians(lon_deg)
        cos_phi = math.cos(phi)
        # Haversine to every landmark, then the implied target height after
        # removing the landmark's height and the propagation floor
        # (2 * distance / fiber speed, the scalar distance_km_to_min_rtt_ms).
        implied_list = []
        for i in range(count):
            s1 = sin((lat_rad[i] - phi) / 2.0)
            s2 = sin((lon_rad[i] - lam) / 2.0)
            h = s1 * s1 + cos_phi * cos_lat[i] * (s2 * s2)
            if h < 0.0:
                h = 0.0
            elif h > 1.0:
                h = 1.0
            distance = 2.0 * 6371.0088 * asin(sqrt(h))
            implied_list.append(corrected[i] - 2.0 * distance / FIBER_SPEED_KM_PER_MS)
        implied_list.sort()
        height = _quantile_sorted(implied_list, quantile)
        height = min(max(0.0, height), height_ceiling)
        total = 0.0
        for value in implied_list:
            deviation = value - height
            total += deviation * deviation
        residual = sqrt(total / count)
        return height, residual

    candidates: list[tuple[float, float]] = [(loc.lat, loc.lon) for loc in locations]
    midpoint = geographic_midpoint(locations)
    candidates.append((midpoint.lat, midpoint.lon))

    best_height = 0.0
    best_residual = math.inf
    best_lat, best_lon = candidates[0]
    for lat, lon in candidates:
        height, residual = evaluate(lat, lon)
        if residual < best_residual:
            best_residual = residual
            best_height = height
            best_lat, best_lon = lat, lon

    # Local refinement around the best landmark-anchored candidate.
    step = refine_step_deg
    for _ in range(3):
        improved = False
        for dlat in (-step, 0.0, step):
            for dlon in (-step, 0.0, step):
                if dlat == 0.0 and dlon == 0.0:
                    continue
                lat = max(-89.0, min(89.0, best_lat + dlat))
                lon = ((best_lon + dlon + 180.0) % 360.0) - 180.0
                height, residual = evaluate(lat, lon)
                if residual < best_residual:
                    best_residual = residual
                    best_height = height
                    best_lat, best_lon = lat, lon
                    improved = True
        if not improved:
            step /= 2.0

    return best_height, GeoPoint(best_lat, best_lon)


class TargetHeightTables:
    """Cohort-shared candidate tables for :func:`estimate_target_height_tabled`.

    The scalar estimator's candidate scan re-evaluates a haversine from every
    landmark to every candidate position for every call; across a cohort the
    candidates are the same landmark coordinates every time.  This table
    precomputes, once per cohort, the propagation term
    ``2 * distance(landmark_i, landmark_k) / fiber_speed`` with exactly the
    expression ordering of the scalar ``evaluate`` closure, so the batched
    scan reduces to a subtract-and-sort over the table.  Entries are built
    with scalar ``math`` calls, keeping them bit-identical to the reference
    on every NumPy build.
    """

    __slots__ = ("ids", "index", "locations", "lat_rad", "lon_rad", "cos_lat", "q_table")

    def __init__(self, ids: Sequence[str], locations: Mapping[str, GeoPoint]):
        self.ids = list(ids)
        self.index = {lid: i for i, lid in enumerate(self.ids)}
        self.locations = [locations[lid] for lid in self.ids]
        self.lat_rad = [math.radians(loc.lat) for loc in self.locations]
        self.lon_rad = [math.radians(loc.lon) for loc in self.locations]
        self.cos_lat = [math.cos(lat) for lat in self.lat_rad]

        count = len(self.ids)
        table = np.empty((count, count))
        sin = math.sin
        asin = math.asin
        sqrt = math.sqrt
        lat_rad = self.lat_rad
        lon_rad = self.lon_rad
        cos_lat = self.cos_lat
        for k in range(count):
            phi = lat_rad[k]
            lam = lon_rad[k]
            cos_phi = cos_lat[k]
            for i in range(count):
                s1 = sin((lat_rad[i] - phi) / 2.0)
                s2 = sin((lon_rad[i] - lam) / 2.0)
                h = s1 * s1 + cos_phi * cos_lat[i] * (s2 * s2)
                if h < 0.0:
                    h = 0.0
                elif h > 1.0:
                    h = 1.0
                distance = 2.0 * 6371.0088 * asin(sqrt(h))
                table[i, k] = 2.0 * distance / FIBER_SPEED_KM_PER_MS
        self.q_table = table

    def covers(self, landmark_ids: Sequence[str], locations: Mapping[str, GeoPoint]) -> bool:
        """True when every id is tabled with exactly the given coordinates."""
        for lid in landmark_ids:
            slot = self.index.get(lid)
            if slot is None:
                return False
            tabled = self.locations[slot]
            given = locations[lid]
            if tabled.lat != given.lat or tabled.lon != given.lon:
                return False
        return True


def _quantile_sorted_columns(sorted_columns: np.ndarray, q: float) -> np.ndarray:
    """:func:`_quantile_sorted` over every column of a column-sorted matrix."""
    n = sorted_columns.shape[0]
    if n == 1:
        return sorted_columns[0].copy()
    position = q * (n - 1)
    low = int(position)
    if low >= n - 1:
        return sorted_columns[n - 1].copy()
    t = position - low
    a = sorted_columns[low]
    b = sorted_columns[low + 1]
    if t == 0.0:
        return a.copy()
    diff = b - a
    if t >= 0.5:
        return b - diff * (1.0 - t)
    return a + diff * t


def estimate_target_height_tabled(
    target_rtts_ms: Mapping[str, float],
    landmark_locations: Mapping[str, GeoPoint],
    landmark_heights: HeightModel,
    tables: TargetHeightTables,
    quantile: float = 0.15,
    refine_step_deg: float = 1.0,
) -> tuple[float, GeoPoint]:
    """:func:`estimate_target_height` with the candidate scan read from tables.

    Bitwise identical to the scalar estimator: the landmark-anchored candidate
    scan becomes ``corrected - q_table`` followed by a column sort and the
    vectorized quantile/residual reduction (all elementwise IEEE arithmetic in
    the scalar expression order), while the midpoint candidate and the local
    refinement — which visit positions no table can anticipate — run the
    scalar ``evaluate`` verbatim.  Falls back to the scalar function whenever
    the tables do not cover the usable landmarks at the exact coordinates.
    """
    usable = {
        lid: rtt
        for lid, rtt in target_rtts_ms.items()
        if lid in landmark_locations and rtt >= 0
    }
    if len(usable) < 3:
        raise ValueError("target height estimation needs measurements to >= 3 landmarks")

    landmark_ids = sorted(usable)
    if not tables.covers(landmark_ids, landmark_locations):
        return estimate_target_height(
            target_rtts_ms,
            landmark_locations,
            landmark_heights,
            quantile=quantile,
            refine_step_deg=refine_step_deg,
        )

    locations = [landmark_locations[lid] for lid in landmark_ids]
    rtts = np.asarray([usable[lid] for lid in landmark_ids])
    lm_heights = np.asarray([landmark_heights.height(lid) for lid in landmark_ids])

    height_ceiling = max(0.0, float(np.min(rtts - lm_heights)))
    corrected_arr = rtts - lm_heights

    lat_rad = [math.radians(loc.lat) for loc in locations]
    lon_rad = [math.radians(loc.lon) for loc in locations]
    cos_lat = [math.cos(lat) for lat in lat_rad]
    corrected = corrected_arr.tolist()  # native floats for the scalar evaluate
    count = len(landmark_ids)
    sin = math.sin
    asin = math.asin
    sqrt = math.sqrt

    def _finish(implied_list: list[float]) -> tuple[float, float]:
        """Quantile height and RMS residual from per-landmark implied heights."""
        implied_list.sort()
        height = _quantile_sorted(implied_list, quantile)
        height = min(max(0.0, height), height_ceiling)
        total = 0.0
        for value in implied_list:
            deviation = value - height
            total += deviation * deviation
        residual = sqrt(total / count)
        return height, residual

    # 2.0 * 6371.0088 hoisted: the product of the same two literals is the
    # same double, so `diameter * asin(...)` reproduces the reference
    # expression `2.0 * 6371.0088 * asin(...)` bit for bit.
    diameter = 2.0 * 6371.0088
    per_landmark = list(zip(lat_rad, lon_rad, cos_lat, corrected))

    def evaluate(lat_deg: float, lon_deg: float) -> tuple[float, float]:
        """Optimal height and RMS residual for a candidate position."""
        phi = math.radians(lat_deg)
        lam = math.radians(lon_deg)
        cos_phi = math.cos(phi)
        implied_list = []
        append = implied_list.append
        for lat_r, lon_r, c_lat, corr in per_landmark:
            s1 = sin((lat_r - phi) / 2.0)
            s2 = sin((lon_r - lam) / 2.0)
            h = s1 * s1 + cos_phi * c_lat * (s2 * s2)
            if h < 0.0:
                h = 0.0
            elif h > 1.0:
                h = 1.0
            distance = diameter * asin(sqrt(h))
            append(corr - 2.0 * distance / FIBER_SPEED_KM_PER_MS)
        return _finish(implied_list)

    # Landmark-anchored candidates, evaluated in one table pass: column c is
    # the scalar evaluate() at candidate position `locations[c]`.
    selector = [tables.index[lid] for lid in landmark_ids]
    implied = corrected_arr[:, None] - tables.q_table[np.ix_(selector, selector)]
    implied.sort(axis=0)
    height_vec = _quantile_sorted_columns(implied, quantile)
    height_vec = np.minimum(np.maximum(0.0, height_vec), height_ceiling)
    total_vec = np.zeros(count)
    for i in range(count):
        deviation = implied[i] - height_vec
        total_vec = total_vec + deviation * deviation
    residual_vec = np.sqrt(total_vec / count)

    candidates: list[tuple[float, float]] = [(loc.lat, loc.lon) for loc in locations]
    midpoint = geographic_midpoint(locations)
    candidates.append((midpoint.lat, midpoint.lon))
    mid_height, mid_residual = evaluate(midpoint.lat, midpoint.lon)

    all_residuals = np.concatenate([residual_vec, [mid_residual]])
    all_heights = np.concatenate([height_vec, [mid_height]])
    # First index attaining the minimum == the scalar loop's strict-< winner.
    best_index = int(np.argmin(all_residuals))
    best_residual = float(all_residuals[best_index])
    best_height = float(all_heights[best_index])
    best_lat, best_lon = candidates[best_index]

    # Local refinement around the best landmark-anchored candidate.
    step = refine_step_deg
    for _ in range(3):
        improved = False
        for dlat in (-step, 0.0, step):
            for dlon in (-step, 0.0, step):
                if dlat == 0.0 and dlon == 0.0:
                    continue
                lat = max(-89.0, min(89.0, best_lat + dlat))
                lon = ((best_lon + dlon + 180.0) % 360.0) - 180.0
                height, residual = evaluate(lat, lon)
                if residual < best_residual:
                    best_residual = residual
                    best_height = height
                    best_lat, best_lon = lat, lon
                    improved = True
        if not improved:
            step /= 2.0

    return best_height, GeoPoint(best_lat, best_lon)


def pairwise_excess_ms(
    location_a: GeoPoint, location_b: GeoPoint, rtt_ms: float
) -> float:
    """Excess of a measurement over the propagation floor for a known pair.

    Convenience used by tests and diagnostics: ``[a,b] - (a,b)``, floored at
    zero because measurement noise can push the difference slightly negative.
    """
    transmission = distance_km_to_min_rtt_ms(location_a.distance_km(location_b))
    return max(0.0, rtt_ms - transmission)

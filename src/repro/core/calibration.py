"""Per-landmark latency-to-distance calibration (Section 2.1 of the paper).

For every landmark L the calibration step turns the scatter of
(latency, great-circle distance) points observed toward all *other* landmarks
into two functions:

* ``R_L(d)`` -- the maximum plausible distance of a node whose latency is d
  (the *upper* facet of the convex hull around the scatter), and
* ``r_L(d)`` -- the minimum plausible distance (the *lower* facet).

Both are more aggressive than the conservative 2/3-speed-of-light bound and
give Octant its tight positive and negative constraints.  Because the scatter
only covers latencies actually observed between landmarks, the paper
introduces a cutoff ``rho`` (a percentile of the observed latencies): beyond
it the lower bound is frozen and the upper bound blends linearly toward a
far-away sentinel point that sits on the speed-of-light line, giving a smooth
transition from aggressive to conservative constraints.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..geometry import GeoPoint, Point2D, lower_hull, rtt_ms_to_max_distance_km, upper_hull
from .heights import HeightModel

__all__ = [
    "CalibrationSample",
    "LandmarkCalibration",
    "CalibrationSet",
    "calibrate_landmark",
    "build_calibration_set",
    "build_calibration_sets_many",
]


@dataclass(frozen=True)
class CalibrationSample:
    """One inter-landmark observation: measured latency and true distance."""

    latency_ms: float
    distance_km: float

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_ms!r}")
        if self.distance_km < 0:
            raise ValueError(f"distance must be non-negative, got {self.distance_km!r}")


class _PiecewiseLinear:
    """A piecewise-linear function given by (x, y) breakpoints sorted by x."""

    __slots__ = ("_xs", "_ys")

    def __init__(self, points: Sequence[tuple[float, float]]):
        if not points:
            raise ValueError("need at least one breakpoint")
        pts = sorted(points)
        self._xs = [p[0] for p in pts]
        self._ys = [p[1] for p in pts]

    def __call__(self, x: float) -> float:
        xs, ys = self._xs, self._ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        i = bisect.bisect_right(xs, x)
        x0, x1 = xs[i - 1], xs[i]
        y0, y1 = ys[i - 1], ys[i]
        if x1 == x0:
            return max(y0, y1)
        t = (x - x0) / (x1 - x0)
        return y0 + t * (y1 - y0)

    @property
    def breakpoints(self) -> list[tuple[float, float]]:
        return list(zip(self._xs, self._ys))


@dataclass(frozen=True)
class LandmarkCalibration:
    """Calibrated latency-to-distance bounds for one landmark.

    Use :func:`calibrate_landmark` to build one from samples; the constructor
    takes the already-computed facet functions (kept explicit so tests can
    construct synthetic calibrations directly).
    """

    landmark_id: str
    upper: _PiecewiseLinear
    lower: _PiecewiseLinear
    cutoff_ms: float
    upper_slope_beyond_cutoff: float
    sample_count: int
    slack: float = 0.0

    def max_distance_km(self, latency_ms: float) -> float:
        """The bound ``R_L``: maximum plausible distance for a latency.

        Never exceeds (and beyond the calibrated range converges to) the
        speed-of-light bound, and never goes below zero.
        """
        if latency_ms < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ms!r}")
        sol = rtt_ms_to_max_distance_km(latency_ms)
        if latency_ms <= self.cutoff_ms:
            value = self.upper(latency_ms)
        else:
            anchor = self.upper(self.cutoff_ms)
            value = anchor + self.upper_slope_beyond_cutoff * (latency_ms - self.cutoff_ms)
        value *= 1.0 + self.slack
        return max(1.0, min(value, sol))

    def min_distance_km(self, latency_ms: float) -> float:
        """The bound ``r_L``: minimum plausible distance for a latency.

        Frozen at its cutoff value for latencies beyond the calibrated range,
        as the paper prescribes, and never allowed to exceed the maximum bound.
        """
        if latency_ms < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ms!r}")
        clamped = min(latency_ms, self.cutoff_ms)
        value = self.lower(clamped) * (1.0 - self.slack)
        return max(0.0, min(value, self.max_distance_km(latency_ms) * 0.999))

    def bounds_km(self, latency_ms: float) -> tuple[float, float]:
        """``(r_L, R_L)`` for a latency, convenient for constraint building."""
        return (self.min_distance_km(latency_ms), self.max_distance_km(latency_ms))


def calibrate_landmark(
    landmark_id: str,
    samples: Iterable[CalibrationSample],
    cutoff_percentile: float = 75.0,
    sentinel_ms: float = 400.0,
    slack: float = 0.0,
) -> LandmarkCalibration:
    """Build the convex-hull calibration for one landmark.

    ``samples`` are the (latency, distance) pairs toward all peer landmarks.
    ``cutoff_percentile`` selects the latency ``rho`` such that the given
    percentage of samples lies to its left; ``sentinel_ms`` is the latency of
    the fictitious far-away point (placed on the speed-of-light line) used to
    extend the upper facet smoothly past the cutoff.
    """
    points = [CalibrationSample(s.latency_ms, s.distance_km) for s in samples]
    return _calibrate_landmark_values(
        landmark_id,
        [p.latency_ms for p in points],
        [p.distance_km for p in points],
        cutoff_percentile=cutoff_percentile,
        sentinel_ms=sentinel_ms,
        slack=slack,
    )


def _calibrate_landmark_values(
    landmark_id: str,
    sample_latencies_ms: Sequence[float],
    sample_distances_km: Sequence[float],
    *,
    cutoff_percentile: float = 75.0,
    sentinel_ms: float = 400.0,
    slack: float = 0.0,
) -> LandmarkCalibration:
    """:func:`calibrate_landmark` on raw value columns.

    The batched calibration path gathers latencies and distances as array
    slices; going through :class:`CalibrationSample` objects would dominate
    the fit cost, so this core validates the raw columns with the same rules
    (and messages) and runs the identical hull construction.
    """
    for latency_ms, distance_km in zip(sample_latencies_ms, sample_distances_km):
        if latency_ms < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ms!r}")
        if distance_km < 0:
            raise ValueError(f"distance must be non-negative, got {distance_km!r}")
    if len(sample_latencies_ms) < 3:
        raise ValueError(
            f"calibration for {landmark_id!r} needs at least 3 samples, "
            f"got {len(sample_latencies_ms)}"
        )
    if not 0.0 < cutoff_percentile <= 100.0:
        raise ValueError(f"cutoff_percentile must be in (0, 100], got {cutoff_percentile!r}")

    planar = [
        Point2D(latency_ms, distance_km)
        for latency_ms, distance_km in zip(sample_latencies_ms, sample_distances_km)
    ]
    # Anchor the hull at the origin: zero latency implies zero distance, which
    # keeps the facets sensible for latencies below the smallest observation.
    planar.append(Point2D(0.0, 0.0))

    upper_pts = [(p.x, p.y) for p in upper_hull(planar)]
    lower_pts = [(p.x, p.y) for p in lower_hull(planar)]

    latencies = sorted(sample_latencies_ms)
    rank = (cutoff_percentile / 100.0) * (len(latencies) - 1)
    low_idx = int(math.floor(rank))
    high_idx = min(low_idx + 1, len(latencies) - 1)
    frac = rank - low_idx
    cutoff = latencies[low_idx] * (1.0 - frac) + latencies[high_idx] * frac

    upper_fn = _PiecewiseLinear(upper_pts)
    lower_fn = _PiecewiseLinear(lower_pts)

    sentinel_latency = max(sentinel_ms, cutoff * 2.0)
    sentinel_distance = rtt_ms_to_max_distance_km(sentinel_latency)
    anchor = upper_fn(cutoff)
    denom = sentinel_latency - cutoff
    slope = (sentinel_distance - anchor) / denom if denom > 0 else 0.0
    slope = max(0.0, slope)

    return LandmarkCalibration(
        landmark_id=landmark_id,
        upper=upper_fn,
        lower=lower_fn,
        cutoff_ms=cutoff,
        upper_slope_beyond_cutoff=slope,
        sample_count=len(sample_latencies_ms),
        slack=slack,
    )


def build_calibration_set(
    landmark_ids: Sequence[str],
    locations: Mapping[str, GeoPoint],
    rtt_ms: Callable[[str, str], float | None],
    *,
    heights: HeightModel | None = None,
    pseudo_heights: Mapping[str, float] | None = None,
    distance_km: Callable[[str, str], float] | None = None,
    cutoff_percentile: float = 75.0,
    sentinel_ms: float = 400.0,
    slack: float = 0.0,
) -> "CalibrationSet":
    """Calibrate every landmark from inter-landmark observations.

    ``rtt_ms`` and ``distance_km`` are measurement lookups, so callers can
    inject either live dataset accessors or the precomputed full-cohort
    matrices; the batch engine applies its leave-one-out mask by passing an
    already-masked ``landmark_ids`` roster.  When ``heights`` /
    ``pseudo_heights`` are given, each sample's latency is adjusted exactly
    the way target measurements are adjusted at localization time (landmark
    height plus the peer's pseudo-target height).

    Landmarks with fewer than 3 usable samples are skipped, mirroring
    :func:`calibrate_landmark`'s minimum.
    """
    pseudo = pseudo_heights or {}
    calibrations = CalibrationSet()
    for landmark in landmark_ids:
        samples: list[CalibrationSample] = []
        for peer in landmark_ids:
            if peer == landmark:
                continue
            rtt = rtt_ms(landmark, peer)
            if rtt is None:
                continue
            if heights is not None:
                rtt = max(0.0, rtt - heights.height(landmark) - pseudo.get(peer, 0.0))
            if distance_km is not None:
                distance = distance_km(landmark, peer)
            else:
                distance = locations[landmark].distance_km(locations[peer])
            samples.append(CalibrationSample(rtt, distance))
        if len(samples) < 3:
            continue
        calibrations.add(
            calibrate_landmark(
                landmark,
                samples,
                cutoff_percentile=cutoff_percentile,
                sentinel_ms=sentinel_ms,
                slack=slack,
            )
        )
    return calibrations


def build_calibration_sets_many(
    rosters: Sequence[Sequence[str]],
    locations: Mapping[str, GeoPoint],
    rtt_ms: Callable[[str, str], float | None],
    *,
    heights_list: Sequence[HeightModel | None] | None = None,
    pseudo_heights_list: Sequence[Mapping[str, float] | None] | None = None,
    distance_km: Callable[[str, str], float] | None = None,
    cutoff_percentile: float = 75.0,
    sentinel_ms: float = 400.0,
    slack: float = 0.0,
) -> list["CalibrationSet | ValueError"]:
    """Cohort-axis :func:`build_calibration_set` over many landmark rosters.

    All rosters draw from the same measurement lookups, so the expensive part
    — one ``rtt_ms``/``distance_km`` call per ordered landmark pair — is
    gathered once for the union roster and reused by every target; the
    per-target work reduces to a masked height adjustment over the shared
    matrix plus the per-landmark hull fits.  Sample values, ordering, and
    skip/validation rules are exactly the scalar function's, so the resulting
    calibrations are bitwise identical (pinned by the equivalence suites).
    Per-roster validation failures are captured as ``ValueError`` entries.
    """
    rosters = [list(roster) for roster in rosters]
    if not rosters:
        return []
    count = len(rosters)
    if heights_list is None:
        heights_list = [None] * count
    if pseudo_heights_list is None:
        pseudo_heights_list = [None] * count

    union = sorted({lid for roster in rosters for lid in roster})
    size = len(union)
    union_index = {lid: i for i, lid in enumerate(union)}

    # One directed measurement gather for the whole cohort: rtt[a, p] and
    # distance[a, p] exactly as the scalar loop would look them up.
    rtt_matrix = np.full((size, size), np.nan)
    dist_matrix = np.zeros((size, size))
    for i, a in enumerate(union):
        for j, p in enumerate(union):
            if i == j:
                continue
            rtt = rtt_ms(a, p)
            if rtt is None:
                continue
            rtt_matrix[i, j] = rtt
            if distance_km is not None:
                dist_matrix[i, j] = distance_km(a, p)
            else:
                dist_matrix[i, j] = locations[a].distance_km(locations[p])
    measured = np.isfinite(rtt_matrix)
    rtt_filled = np.where(measured, rtt_matrix, 0.0)

    results: list[CalibrationSet | ValueError] = []
    for roster, heights, pseudo_heights in zip(rosters, heights_list, pseudo_heights_list):
        selector = np.asarray([union_index[lid] for lid in roster], dtype=np.intp)
        if heights is not None:
            pseudo = pseudo_heights or {}
            height_col = np.asarray([heights.height(lid) for lid in union])
            pseudo_row = np.asarray([pseudo.get(lid, 0.0) for lid in union])
            adjusted = np.maximum(0.0, (rtt_filled - height_col[:, None]) - pseudo_row[None, :])
        else:
            adjusted = rtt_filled

        calibrations = CalibrationSet()
        failure: ValueError | None = None
        for position, landmark in enumerate(roster):
            row = selector[position]
            peer_slots = np.concatenate([selector[:position], selector[position + 1 :]])
            usable = peer_slots[measured[row, peer_slots]]
            latencies = adjusted[row, usable].tolist()
            distances = dist_matrix[row, usable].tolist()
            try:
                calibration = _calibrate_landmark_values(
                    landmark,
                    latencies,
                    distances,
                    cutoff_percentile=cutoff_percentile,
                    sentinel_ms=sentinel_ms,
                    slack=slack,
                )
            except ValueError as exc:
                message = str(exc)
                if message.startswith(f"calibration for {landmark!r} needs at least 3 samples"):
                    continue  # the scalar path skips under-sampled landmarks
                failure = exc
                break
            calibrations.add(calibration)
        results.append(failure if failure is not None else calibrations)
    return results


class CalibrationSet:
    """Calibrations for a whole landmark population, keyed by landmark id."""

    def __init__(self, calibrations: Mapping[str, LandmarkCalibration] | None = None):
        self._calibrations: dict[str, LandmarkCalibration] = dict(calibrations or {})

    def add(self, calibration: LandmarkCalibration) -> None:
        """Register (or replace) the calibration of one landmark."""
        self._calibrations[calibration.landmark_id] = calibration

    def get(self, landmark_id: str) -> LandmarkCalibration | None:
        """Calibration of a landmark, or ``None`` when it has none."""
        return self._calibrations.get(landmark_id)

    def __contains__(self, landmark_id: str) -> bool:
        return landmark_id in self._calibrations

    def __len__(self) -> int:
        return len(self._calibrations)

    def landmark_ids(self) -> list[str]:
        """All calibrated landmark ids, sorted."""
        return sorted(self._calibrations)

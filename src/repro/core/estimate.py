"""Location estimates: the result object returned by a localization.

A :class:`LocationEstimate` bundles the estimated location region, the derived
point estimate, and diagnostics about the solve (how many constraints were
used, which were dropped, how long the solve took).  Evaluation helpers --
error against a known true position, containment of the true position in the
region -- live here so that both the Octant pipeline and the baselines return
directly comparable objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..geometry import GeoPoint, Region, km_to_miles

__all__ = ["LocationEstimate"]


@dataclass
class LocationEstimate:
    """The outcome of localizing one target."""

    target_id: str
    method: str
    point: GeoPoint | None
    region: Region | None = None
    constraints_used: int = 0
    constraints_dropped: int = 0
    solve_time_s: float = 0.0
    details: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Success / failure
    # ------------------------------------------------------------------ #
    @property
    def succeeded(self) -> bool:
        """True when the method produced a point estimate."""
        return self.point is not None

    def region_area_km2(self) -> float:
        """Area of the estimated region (0 when the method yields only a point)."""
        if self.region is None:
            return 0.0
        return self.region.area_km2()

    def region_area_square_miles(self) -> float:
        """Area of the estimated region in square miles."""
        if self.region is None:
            return 0.0
        return self.region.area_square_miles()

    # ------------------------------------------------------------------ #
    # Evaluation against ground truth
    # ------------------------------------------------------------------ #
    def error_km(self, true_location: GeoPoint) -> float:
        """Great-circle distance between the point estimate and the truth."""
        if self.point is None:
            return math.inf
        return self.point.distance_km(true_location)

    def error_miles(self, true_location: GeoPoint) -> float:
        """Localization error in statute miles, the unit the paper reports."""
        error = self.error_km(true_location)
        return math.inf if math.isinf(error) else km_to_miles(error)

    def contains_true_location(self, true_location: GeoPoint) -> bool:
        """True when the estimated region contains the target's true position.

        This is the success criterion of the paper's Figure 4.  Methods that
        produce only a point estimate (GeoPing, GeoTrack) never contain the
        truth under this definition, matching how the paper restricts that
        comparison to the region-based systems.
        """
        if self.region is None or self.region.is_empty():
            return False
        return self.region.contains_geopoint(true_location)

    def summary(self, true_location: GeoPoint | None = None) -> Mapping[str, object]:
        """A flat dictionary convenient for tabular reporting."""
        out: dict[str, object] = {
            "target": self.target_id,
            "method": self.method,
            "succeeded": self.succeeded,
            "region_area_sq_mi": round(self.region_area_square_miles(), 1),
            "constraints_used": self.constraints_used,
            "constraints_dropped": self.constraints_dropped,
            "solve_time_s": round(self.solve_time_s, 3),
        }
        if true_location is not None:
            out["error_miles"] = round(self.error_miles(true_location), 1)
            out["contains_truth"] = self.contains_true_location(true_location)
        return out

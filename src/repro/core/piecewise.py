"""Piecewise localization of routers on the path -- Section 2.3 of the paper.

Policy routing makes end-to-end paths longer than great circles, which loosens
the relation between end-to-end latency and distance.  Octant compensates by
localizing the *routers* on the landmark-to-target paths and using them as
secondary landmarks: the final path segment from a well-localized router near
the target to the target itself is short, largely free of indirect routing,
and therefore yields a much tighter constraint than the end-to-end
measurement.

Router positions come from two sources, mirroring the paper:

* reverse-DNS hints parsed with the undns-style rules
  (:class:`~repro.network.dns.UndnsParser`), and
* latency measurements from the landmarks to the router (extracted from
  traceroute hop timings), solved with the same calibrated disk constraints
  used for ordinary targets, but with a deliberately lightweight greedy
  intersection because hundreds of routers may need localizing.

The result of router localization is a :class:`RouterPosition` -- a centre, an
uncertainty radius and a confidence -- which
:func:`secondary_constraints_for_target` turns into additional positive
constraints for the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..geometry import (
    CircleCache,
    GeoPoint,
    Polygon,
    Region,
    clip_convex,
    disk_polygon,
    projection_for_points,
)
from ..network.dataset import MeasurementDataset
from ..network.dns import UndnsParser
from .calibration import CalibrationSet
from .config import OctantConfig
from .constraints import Constraint, DistanceConstraint, latency_weight
from .heights import HeightModel

__all__ = [
    "RouterPosition",
    "RouterLocalizer",
    "localize_routers_many",
    "secondary_constraints_for_target",
    "build_router_observation_index",
]


def build_router_observation_index(
    dataset: MeasurementDataset,
) -> dict[str, list[tuple[str, float]]]:
    """Group landmark-to-router latency observations by router, built once.

    Maps each router id to its ``(host_id, raw_min_rtt_ms)`` observations
    sorted by host id.  The batch engine computes this index once for the
    full cohort and shares it across every leave-one-out derivation; masking
    a host is then a membership filter instead of an O(landmarks x routers)
    re-scan of ``dataset.router_pings``.
    """
    index: dict[str, list[tuple[str, float]]] = {}
    for (host_id, router_id), rtt in dataset.router_pings.items():
        index.setdefault(router_id, []).append((host_id, rtt))
    for observations in index.values():
        observations.sort()
    return index


@dataclass(frozen=True)
class RouterPosition:
    """An estimated router location with its uncertainty."""

    router_id: str
    center: GeoPoint
    uncertainty_km: float
    confidence: float
    source: str

    DNS = "dns"
    LATENCY = "latency"


class RouterLocalizer:
    """Estimates positions for the routers observed on traceroute paths."""

    def __init__(
        self,
        dataset: MeasurementDataset,
        config: OctantConfig,
        calibrations: CalibrationSet,
        heights: HeightModel | None = None,
        parser: UndnsParser | None = None,
        dns_cache: dict[str, RouterPosition | None] | None = None,
        router_observations: Mapping[str, Sequence[tuple[str, float]]] | None = None,
        circle_cache: CircleCache | None = None,
    ):
        """``dns_cache`` and ``router_observations`` are optional shared state.

        A DNS-derived position depends only on the router's DNS record, never
        on the landmark set, so a cache shared across leave-one-out
        derivations returns identical positions without re-parsing.
        ``router_observations`` is the index from
        :func:`build_router_observation_index`; when present, latency
        observations are read from it (filtered to the current landmark set)
        instead of probing ``dataset.router_pings`` per landmark.
        """
        self.dataset = dataset
        self.config = config
        self.calibrations = calibrations
        self.heights = heights
        self.parser = parser or UndnsParser()
        self.dns_cache = dns_cache if dns_cache is not None else {}
        self.router_observations = router_observations
        self.circle_cache = circle_cache

    # ------------------------------------------------------------------ #
    # Router localization
    # ------------------------------------------------------------------ #
    def localize_routers(
        self, landmark_ids: Sequence[str]
    ) -> dict[str, RouterPosition]:
        """Estimate a position for every router measurable from the landmarks.

        Leave-one-out masking is expressed through ``landmark_ids`` itself
        (callers pass the already-masked roster): routers only measurable
        from a masked-out host are dropped, and its observations do not
        contribute to any latency-derived position.
        """
        landmarks = set(landmark_ids)
        positions: dict[str, RouterPosition] = {}
        for router_id in self._candidate_router_ids(landmarks):
            position = self._localize_router(router_id, landmark_ids, landmarks)
            if position is not None:
                positions[router_id] = position
        return positions

    def _candidate_router_ids(self, landmarks: set[str]) -> list[str]:
        """Routers with at least one observation from the landmark set."""
        if self.router_observations is not None:
            return sorted(
                router_id
                for router_id, observations in self.router_observations.items()
                if any(host in landmarks for host, _ in observations)
            )
        return sorted({r for (h, r) in self.dataset.router_pings if h in landmarks})

    def localize_router(
        self, router_id: str, landmark_ids: Sequence[str]
    ) -> RouterPosition | None:
        """Estimate one router's position from DNS hints and landmark latencies."""
        return self._localize_router(router_id, landmark_ids, set(landmark_ids))

    def _localize_router(
        self, router_id: str, landmark_ids: Sequence[str], landmark_set: set[str]
    ) -> RouterPosition | None:
        dns_position = self._dns_position(router_id)
        if dns_position is not None:
            return dns_position
        return self._latency_position(router_id, landmark_ids, landmark_set)

    def _dns_position(self, router_id: str) -> RouterPosition | None:
        cache = self.dns_cache
        if router_id in cache:
            return cache[router_id]
        position: RouterPosition | None = None
        record = self.dataset.routers.get(router_id)
        if record is not None:
            hint = self.parser.parse(record.dns_name)
            if hint is not None and hint.confidence >= self.config.router_hint_min_confidence:
                position = RouterPosition(
                    router_id=router_id,
                    center=hint.location,
                    uncertainty_km=self.config.router_hint_radius_km,
                    confidence=hint.confidence,
                    source=RouterPosition.DNS,
                )
        cache[router_id] = position
        return position

    def _latency_position(
        self,
        router_id: str,
        landmark_ids: Sequence[str],
        landmark_set: set[str] | None = None,
    ) -> RouterPosition | None:
        """Greedy intersection of the tightest calibrated disks around landmarks.

        The observation list is sorted by ``(rtt, landmark_id)`` before the
        top entries are kept, so the result only depends on the landmark
        *set*; reading observations from the shared index therefore yields
        positions identical to probing the dataset landmark by landmark.
        """
        observations = self._latency_observations(router_id, landmark_ids, landmark_set)
        if observations is None:
            return None
        centers, disks = self._observation_disks(observations)
        projection = projection_for_points(centers)
        return self._intersect_disks(router_id, disks, projection)

    def _latency_observations(
        self,
        router_id: str,
        landmark_ids: Sequence[str],
        landmark_set: set[str] | None = None,
    ) -> list[tuple[float, str]] | None:
        """Height-adjusted ``(rtt, landmark)`` observations, tightest five."""
        observations: list[tuple[float, str]] = []
        if self.router_observations is not None:
            members = landmark_set if landmark_set is not None else set(landmark_ids)
            for landmark_id, raw in self.router_observations.get(router_id, ()):
                if landmark_id not in members:
                    continue
                rtt = raw
                if self.heights is not None:
                    rtt = max(0.0, rtt - self.heights.height(landmark_id))
                observations.append((rtt, landmark_id))
        else:
            for landmark_id in landmark_ids:
                rtt = self.dataset.router_min_rtt_ms(landmark_id, router_id)
                if rtt is None:
                    continue
                if self.heights is not None:
                    rtt = max(0.0, rtt - self.heights.height(landmark_id))
                observations.append((rtt, landmark_id))
        if not observations:
            return None
        observations.sort()
        return observations[:5]

    def _observation_disks(
        self, observations: Sequence[tuple[float, str]]
    ) -> tuple[list[GeoPoint], list[tuple[GeoPoint, float]]]:
        """Calibrated disk (center, radius) per observation, plus the centers."""
        centers: list[GeoPoint] = []
        disks: list[tuple[GeoPoint, float]] = []
        for rtt, landmark_id in observations:
            calibration = self.calibrations.get(landmark_id)
            location = self.dataset.true_location(landmark_id)
            if calibration is not None and self.config.use_calibration:
                radius = calibration.max_distance_km(rtt)
            else:
                from ..geometry import rtt_ms_to_max_distance_km

                radius = rtt_ms_to_max_distance_km(rtt)
            centers.append(location)
            disks.append((location, radius))
        return centers, disks

    def _intersect_disks(
        self,
        router_id: str,
        disks: Sequence[tuple[GeoPoint, float]],
        projection,
    ) -> RouterPosition | None:
        """The scalar greedy disk intersection, shared by both pipelines."""
        region: Polygon | None = None
        for center, radius in disks:
            disk = disk_polygon(
                center,
                max(radius, 5.0),
                projection,
                segments=24,
                cache=self.circle_cache,
            )
            if region is None:
                region = disk
                continue
            clipped = clip_convex(region, disk)
            if clipped is not None:
                region = clipped
        if region is None:
            return None

        centroid = region.centroid()
        center_geo = projection.inverse(centroid)
        uncertainty = region.max_distance_to_point(centroid)
        return RouterPosition(
            router_id=router_id,
            center=center_geo,
            uncertainty_km=uncertainty,
            confidence=0.4,
            source=RouterPosition.LATENCY,
        )

    # ------------------------------------------------------------------ #
    # Region view (for callers that want a Region rather than a disk summary)
    # ------------------------------------------------------------------ #
    def router_region(self, position: RouterPosition) -> Region:
        """The router's location estimate as a single-disk region."""
        projection = projection_for_points([position.center])
        polygon = disk_polygon(
            position.center, max(position.uncertainty_km, 1.0), projection, segments=24
        )
        return Region.from_polygon(polygon, projection, weight=position.confidence)


def localize_routers_many(
    localizers: Sequence[RouterLocalizer],
    rosters: Sequence[Sequence[str]],
) -> list[dict[str, RouterPosition]]:
    """Cohort-axis :meth:`RouterLocalizer.localize_routers` over many rosters.

    Each localizer carries its own per-target heights and calibrations but the
    cohort shares the dataset, DNS cache, observation index, and circle cache.
    The batched pass runs the same stages as the scalar method — DNS hint,
    observation gather, disk radii, greedy intersection — but defers every
    disk realization until the full cohort's disk specs are known, then warms
    the shared :class:`~repro.geometry.circles.CircleCache` with one pooled
    boundary pass and one pooled projection pass per working plane.  The
    greedy intersection then runs the scalar fold against warm cache entries,
    so positions are bitwise identical to per-target calls (the cache's warm
    path is itself pinned to the scalar realization).
    """
    if len(localizers) != len(rosters):
        raise ValueError("localize_routers_many needs one roster per localizer")
    outputs: list[dict[str, RouterPosition]] = [{} for _ in localizers]
    pending: list[tuple[int, str, list[tuple[GeoPoint, float]], object]] = []
    boundary_jobs: dict[int, tuple[CircleCache, list]] = {}
    planar_jobs: dict[tuple[int, tuple], tuple[CircleCache, object, list]] = {}

    for t, (localizer, roster) in enumerate(zip(localizers, rosters)):
        roster = list(roster)
        landmarks = set(roster)
        cache = localizer.circle_cache
        for router_id in localizer._candidate_router_ids(landmarks):
            dns_position = localizer._dns_position(router_id)
            if dns_position is not None:
                outputs[t][router_id] = dns_position
                continue
            observations = localizer._latency_observations(router_id, roster, landmarks)
            if observations is None:
                continue
            centers, disks = localizer._observation_disks(observations)
            projection = projection_for_points(centers)
            pending.append((t, router_id, disks, projection))
            if cache is None:
                continue
            specs = [(center, max(radius, 5.0), 24) for center, radius in disks]
            boundary_jobs.setdefault(id(cache), (cache, []))[1].extend(specs)
            projection_key = projection.cache_key()
            if projection_key is not None:
                planar_jobs.setdefault(
                    (id(cache), projection_key), (cache, projection, [])
                )[2].extend(specs)

    for cache, specs in boundary_jobs.values():
        cache.warm_boundaries(specs)
    for cache, projection, specs in planar_jobs.values():
        cache.warm_planar_disks(projection, specs)

    for t, router_id, disks, projection in pending:
        position = localizers[t]._intersect_disks(router_id, disks, projection)
        if position is not None:
            outputs[t][router_id] = position
    return outputs


def secondary_constraints_for_target(
    target_id: str,
    landmark_ids: Sequence[str],
    dataset: MeasurementDataset,
    router_positions: Mapping[str, RouterPosition],
    calibrations: CalibrationSet,
    config: OctantConfig,
    heights: HeightModel | None = None,
    target_height_ms: float = 0.0,
    geometry_cache: CircleCache | None = None,
) -> list[Constraint]:
    """Constraints on the target from routers close to it on the measured paths.

    For every landmark with a traceroute to the target, the last localized
    router on the path acts as a secondary landmark: the latency from that
    router to the target is the end-to-end minimum RTT minus the
    landmark-to-router RTT, and the resulting distance bound is widened by the
    router's own positional uncertainty so the constraint stays sound.
    """
    # For every localized router on any path toward the target, keep the
    # *tightest* remaining-latency observation over all landmarks whose
    # traceroute passes through it; one constraint per router, at the best
    # bound available, follows the paper's "serial" refinement while avoiding
    # a pile of redundant, highly correlated constraints.
    best_per_router: dict[str, tuple[float, str]] = {}
    for landmark_id in landmark_ids:
        trace = dataset.traceroute(landmark_id, target_id)
        if trace is None:
            continue
        end_to_end = dataset.min_rtt_ms(landmark_id, target_id)
        if end_to_end is None:
            continue
        if heights is not None:
            end_to_end = max(
                0.0, end_to_end - heights.height(landmark_id) - target_height_ms
            )

        # Walk hops nearest the target first and use the first localized one.
        for hop in reversed(trace.router_hops()):
            position = router_positions.get(hop.node_id)
            if position is None:
                continue
            to_router = dataset.router_min_rtt_ms(landmark_id, hop.node_id)
            if to_router is None:
                to_router = hop.min_rtt_ms
            if heights is not None:
                to_router = max(0.0, to_router - heights.height(landmark_id))
            remaining = max(0.5, end_to_end - to_router)
            current = best_per_router.get(hop.node_id)
            if current is None or remaining < current[0]:
                best_per_router[hop.node_id] = (remaining, landmark_id)
            break

    constraints: list[Constraint] = []
    margin = config.height_margin_ms if config.use_heights else 0.0
    for router_id, (remaining, landmark_id) in best_per_router.items():
        position = router_positions[router_id]
        calibration = calibrations.get(landmark_id)
        if calibration is not None and config.use_calibration:
            bound = calibration.max_distance_km(remaining + margin)
        else:
            from ..geometry import rtt_ms_to_max_distance_km

            bound = rtt_ms_to_max_distance_km(remaining + margin)
        max_km = bound + position.uncertainty_km

        # Secondary constraints inherit the latency-based weight of the short
        # final segment; that makes well-localized routers near the target the
        # strongest evidence available, which is the point of piecewise
        # localization.  Routers localized only from latency (no DNS hint) are
        # discounted by their lower confidence.
        weight = 1.0
        if config.use_weights:
            weight = latency_weight(
                remaining, config.weight_decay_ms, config.min_constraint_weight
            )
            if position.source != RouterPosition.DNS:
                weight *= position.confidence
        constraints.append(
            DistanceConstraint(
                landmark_id=router_id,
                landmark_location=position.center,
                max_km=max(max_km, 10.0),
                min_km=0.0,
                weight=weight,
                label=f"piecewise:{landmark_id}->{router_id}",
                circle_segments=config.solver.circle_segments,
                geometry_cache=geometry_cache,
            )
        )

    constraints.sort(key=lambda c: c.weight, reverse=True)
    return constraints[: config.max_secondary_constraints]

"""Geographic and demographic constraints -- Section 2.5 of the paper.

Octant integrates any geographic knowledge into the same constraint system
used for latency measurements:

* **negative** constraints for oceans and large uninhabited areas (Internet
  hosts are not in the middle of the North Atlantic), and
* **positive** constraints from registration databases: the WHOIS record for
  the target's address block names a city/zipcode, which -- with low weight
  and a generous radius, because registrations are often at headquarters --
  narrows the estimate.

Because Octant regions may be non-convex and disconnected, these constraints
participate directly in the solve instead of needing the ad-hoc
post-processing step the paper criticizes in prior work.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..geometry import CircleCache
from ..network.dataset import MeasurementDataset
from ..network.geodata import (
    DETAILED_OCEAN_REGIONS,
    DETAILED_UNINHABITED_REGIONS,
    GeoRegion,
    OCEAN_REGIONS,
    UNINHABITED_REGIONS,
)
from .config import OctantConfig
from .constraints import Constraint, DiskConstraint, GeoRegionConstraint, Polarity

__all__ = [
    "ocean_constraints",
    "uninhabited_constraints",
    "geographic_constraints",
    "whois_constraint",
]

#: Weight given to the ocean / uninhabited negative constraints.  These are
#: essentially certain, so they carry a high weight; they are still subject to
#: the solver's conflict handling like everything else.
GEOGRAPHIC_CONSTRAINT_WEIGHT = 5.0


def _region_constraints(
    regions: Iterable[GeoRegion],
    weight: float,
    label_prefix: str,
    cache: "CircleCache | None" = None,
) -> list[Constraint]:
    return [
        GeoRegionConstraint(
            ring=region.ring,
            polarity=Polarity.NEGATIVE,
            weight=weight,
            label=f"{label_prefix}:{region.name}",
            geometry_cache=cache,
        )
        for region in regions
    ]


def _catalogue(detail: str) -> tuple[Sequence[GeoRegion], Sequence[GeoRegion]]:
    """The (ocean, uninhabited) region catalogue for a fidelity level."""
    if detail == "detailed":
        return DETAILED_OCEAN_REGIONS, DETAILED_UNINHABITED_REGIONS
    if detail != "coarse":
        raise ValueError(
            f"unknown geographic_detail {detail!r}; expected 'coarse' or 'detailed'"
        )
    return OCEAN_REGIONS, UNINHABITED_REGIONS


def ocean_constraints(
    regions: Sequence[GeoRegion] | None = None,
    weight: float = GEOGRAPHIC_CONSTRAINT_WEIGHT,
    cache: "CircleCache | None" = None,
    detail: str = "coarse",
) -> list[Constraint]:
    """Negative constraints excluding open-ocean regions.

    ``detail`` picks the catalogue when ``regions`` is not given:
    ``"coarse"`` (convex rings) or ``"detailed"`` (non-convex coastline
    rings, served by the solver's convex-mask exclusion path).
    """
    if regions is None:
        regions = _catalogue(detail)[0]
    return _region_constraints(regions, weight, "ocean", cache)


def uninhabited_constraints(
    regions: Sequence[GeoRegion] | None = None,
    weight: float = GEOGRAPHIC_CONSTRAINT_WEIGHT,
    cache: "CircleCache | None" = None,
    detail: str = "coarse",
) -> list[Constraint]:
    """Negative constraints excluding large uninhabited land areas."""
    if regions is None:
        regions = _catalogue(detail)[1]
    return _region_constraints(regions, weight, "uninhabited", cache)


def geographic_constraints(
    config: OctantConfig, cache: "CircleCache | None" = None
) -> list[Constraint]:
    """All geographic negative constraints enabled by ``config``.

    ``cache`` lets the constraints memoize their projected rings in the
    shared planar geometry cache (the rings are fixed data, so every
    localization under the same projection re-uses one projection pass).
    ``config.geographic_detail`` selects the coarse (convex) or detailed
    (non-convex coastline) region catalogue.
    """
    if not config.use_geographic_constraints:
        return []
    detail = getattr(config, "geographic_detail", "coarse")
    return ocean_constraints(cache=cache, detail=detail) + uninhabited_constraints(
        cache=cache, detail=detail
    )


def whois_constraint(
    dataset: MeasurementDataset,
    target_id: str,
    config: OctantConfig,
    cache: "CircleCache | None" = None,
) -> Constraint | None:
    """A weak positive constraint around the WHOIS-registered city, if enabled.

    The constraint radius is generous and the weight low: registrations are
    frequently made at an organization's headquarters rather than where the
    host actually sits, so this hint should be able to lose against latency
    evidence (Section 2.4's weighting handles exactly that).
    """
    if not config.use_whois:
        return None
    record = dataset.whois_lookup(target_id)
    if record is None:
        return None
    return DiskConstraint(
        center=record.location,
        radius_km=config.whois_radius_km,
        polarity=Polarity.POSITIVE,
        weight=config.whois_weight,
        label=f"whois:{record.prefix}",
        circle_segments=config.solver.circle_segments,
        geometry_cache=cache,
    )

"""Batch leave-one-out localization: shared state once, per-target views.

The paper's entire evaluation is leave-one-out: every host becomes the target
while all others serve as landmarks.  Driving that study through
:meth:`Octant.localize` re-runs ``prepare()`` -- O(n^2) height estimation,
per-landmark calibration, router localization -- for every target, because
each target sees a *different* landmark set.  A full accuracy study is then
effectively O(n^3) and caches one full :class:`PreparedLandmarks` per target.

:class:`BatchLocalizer` restructures the computation around what actually
changes between targets:

1. **Full-cohort shared state, computed once.**  The pairwise min-RTT and
   great-circle distance matrices (cached on the
   :class:`~repro.network.dataset.MeasurementDataset` itself), the per-host
   measured-pair degrees, the ground-truth location map, the DNS-derived
   router positions (which depend only on DNS records, never on the landmark
   set) and the router observation index.

2. **Incremental per-target derivation.**  Each target's leave-one-out
   :class:`PreparedLandmarks` is derived by *masking* the held-out host's
   samples out of the shared state and re-running only the mask-sensitive
   estimators (the height fix-point, pseudo-target heights, convex-hull
   calibration, latency-only router positions), feeding them the precomputed
   matrices.  The estimators are the same functions the sequential path
   calls, applied to bit-identical inputs, so every derived estimate is
   **identical** to ``Octant.localize(target)`` -- a property pinned by
   ``tests/core/test_batch.py``.

3. **Parallel fan-out.**  Independent targets are dispatched across a
   ``concurrent.futures`` executor (threads, or forked processes where
   available) and merged back in input order, so results are deterministic
   regardless of completion order.

Per-target failures (a target with fewer than 3 reachable landmarks, a host
without ground truth) are recorded as failed estimates -- ``point=None`` with
the reason under ``details["error"]`` -- instead of aborting the whole study.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .._lru import BoundedLRU
from ..geometry import CircleCache, GeoPoint
from ..network.dataset import MeasurementDataset
from ..network.dns import UndnsParser
from .calibration import CalibrationSet, build_calibration_set
from .config import OctantConfig
from .estimate import LocationEstimate
from .heights import HeightModel, estimate_landmark_heights
from .octant import Octant, PreparedLandmarks, pseudo_target_heights
from .piecewise import RouterLocalizer, RouterPosition, build_router_observation_index

__all__ = ["BatchLocalizer", "BatchSharedState", "failed_estimate", "localize_many"]


def failed_estimate(
    target_id: str,
    method: str,
    error: BaseException | str,
    traceback: str | None = None,
) -> LocationEstimate:
    """A recorded per-target failure: no point, no region, reason in details.

    ``details["error_type"]`` carries the exception class name so failure
    modes can be aggregated without parsing messages; ``traceback`` accepts a
    pre-formatted traceback string (the serving path captures it at the
    executor boundary) stored under ``details["traceback"]`` -- failures stay
    diagnosable from the estimate alone, without process logs.
    """
    details: dict[str, object] = {"error": str(error)}
    if isinstance(error, BaseException):
        details["error_type"] = type(error).__name__
    if traceback:
        details["traceback"] = traceback
    return LocationEstimate(
        target_id=target_id,
        method=method,
        point=None,
        region=None,
        details=details,
    )


@dataclass
class BatchSharedState:
    """Full-cohort state computed once and shared by every per-target view."""

    locations: dict[str, GeoPoint]
    #: Measured host pairs, keys ``(a, b)`` with ``a < b`` (dataset cache).
    rtt_matrix: Mapping[tuple[str, str], float]
    #: Number of measured pairs each host participates in.
    pair_degree: Mapping[str, int]
    #: DNS-derived router positions are landmark-set independent; one shared
    #: cache avoids re-parsing every router's DNS name per target.
    dns_cache: dict[str, RouterPosition | None] = field(default_factory=dict)
    #: Router id -> sorted ``(host_id, raw_rtt)`` observations.
    router_observations: dict[str, list[tuple[str, float]]] = field(default_factory=dict)
    #: Geodesic circle boundaries keyed ``(lat, lon, radius_km, segments)``:
    #: projection-independent, so one cohort-wide cache serves every target
    #: (each re-projects the cached arrays in one vectorized operation).
    #: Shared with the wrapped Octant so both engines warm the same entries;
    #: process-pool workers inherit whatever was cached before the fork.
    #: The planar layer additionally pre-realizes the convex mask cells of
    #: non-convex geographic rings on first projection (see
    #: ``CircleCache.planar_ring``), and because the planar polygons it
    #: hands out are identity-stable, the kernel's cross-solve
    #: constraint-geometry tables (``repro.geometry.kernel``) stay warm
    #: across every solve that shares this state -- including across
    #: snapshot rebuilds, whose unchanged constraints re-realize the very
    #: same polygon objects.
    circle_cache: CircleCache = field(default_factory=CircleCache)
    #: The :attr:`MeasurementDataset.version` this state was built from;
    #: :meth:`BatchLocalizer.shared_state` rebuilds when the live dataset
    #: has ingested measurements past it (the circle cache is carried over:
    #: its entries are content-addressed and never go stale).
    dataset_version: int = 0


# --------------------------------------------------------------------------- #
# Process-pool plumbing: the localizer is shipped to each worker once (via
# the initializer) instead of being pickled with every submitted task.
# --------------------------------------------------------------------------- #
_WORKER_LOCALIZER: "BatchLocalizer | None" = None


def _init_worker(localizer: "BatchLocalizer") -> None:
    global _WORKER_LOCALIZER
    _WORKER_LOCALIZER = localizer


def _worker_localize(target_id: str, landmark_pool: tuple[str, ...] | None) -> LocationEstimate:
    assert _WORKER_LOCALIZER is not None
    return _WORKER_LOCALIZER.localize_one(target_id, landmark_pool)


def _worker_solve_chunk(
    target_ids: tuple[str, ...], landmark_pool: tuple[str, ...] | None
) -> dict[str, LocationEstimate]:
    assert _WORKER_LOCALIZER is not None
    return _WORKER_LOCALIZER.solve_many(target_ids, landmark_pool)


class BatchLocalizer:
    """Leave-one-out localization of many targets with shared preparation.

    Wraps (or builds) an :class:`Octant` and reuses its constraint
    construction and solver end to end; only the per-target preparation is
    replaced by the incremental derivation.  Results are identical to calling
    ``octant.localize(target)`` per target.

    ``max_workers`` controls the fan-out: ``None`` or ``1`` runs inline (no
    executor), ``0`` or ``"auto"`` uses the CPU count, any other integer is
    used as given.  ``executor_kind`` selects ``"thread"`` or ``"process"``
    workers; ``"auto"`` picks processes when fork is available (the work is
    CPU-bound pure Python) and threads otherwise.

    ``prepared_cache_size`` (default 0: disabled) bounds an LRU of derived
    per-target :class:`PreparedLandmarks`, keyed by
    ``(dataset version, target, landmark pool)``.  Leave-one-out studies
    visit every target once and gain nothing from it; the online serving
    path hits the same targets repeatedly and skips re-derivation entirely
    on a warm hit.  The derivation is deterministic, so a cached object is
    the one a fresh call would return.
    """

    def __init__(
        self,
        source: Octant | MeasurementDataset,
        config: OctantConfig | None = None,
        parser: UndnsParser | None = None,
        max_workers: int | str | None = None,
        executor_kind: str = "auto",
        prepared_cache_size: int = 0,
    ):
        if isinstance(source, Octant):
            self.octant = source
        else:
            self.octant = Octant(source, config, parser)
        self.dataset = self.octant.dataset
        self.config = self.octant.config
        self.parser = self.octant.parser
        self.max_workers = max_workers
        self.executor_kind = executor_kind
        self.prepared_cache_size = prepared_cache_size
        self._shared: BatchSharedState | None = None
        self._shared_lock = threading.Lock()
        self._prepared_cache: BoundedLRU[PreparedLandmarks] = BoundedLRU(
            max(1, prepared_cache_size)
        )
        self._prepared_lock = threading.Lock()
        self.prepared_hits = 0
        self.prepared_misses = 0

    # ------------------------------------------------------------------ #
    # Shared state
    # ------------------------------------------------------------------ #
    def shared_state(self) -> BatchSharedState:
        """Build (once per dataset version) the full-cohort shared state.

        Thread-safe: the serving executor calls this concurrently from
        request workers.  After a measurement ingest the state is rebuilt
        against the new version; the circle cache is carried across rebuilds
        because its entries are content-addressed (a circle at given
        coordinates is the same circle whatever the measurements say).
        """
        version = self.dataset.version
        shared = self._shared
        if shared is not None and shared.dataset_version == version:
            return shared
        with self._shared_lock:
            shared = self._shared
            if shared is not None and shared.dataset_version == version:
                return shared
            dataset = self.dataset
            locations = {
                host_id: record.location
                for host_id, record in sorted(dataset.hosts.items())
                if record.location is not None
            }
            router_observations: dict[str, list[tuple[str, float]]] = {}
            if self.config.use_piecewise:
                router_observations = build_router_observation_index(dataset)
            self._shared = BatchSharedState(
                locations=locations,
                rtt_matrix=dataset.pairwise_min_rtt(),
                pair_degree=dataset.measured_pair_degree(),
                router_observations=router_observations,
                circle_cache=self.octant.circle_cache,
                dataset_version=version,
            )
        return self._shared

    # ------------------------------------------------------------------ #
    # Incremental per-target derivation
    # ------------------------------------------------------------------ #
    def prepare_for_target(
        self, target_id: str, landmark_pool: Sequence[str] | None = None
    ) -> PreparedLandmarks:
        """Derive the target's leave-one-out state by masking shared state.

        ``landmark_pool`` restricts the landmark population (the Figure 4
        sweep); by default every other host is a landmark, the paper's
        leave-one-out methodology.  Raises :class:`ValueError` when fewer
        than 3 landmarks remain.  With ``prepared_cache_size`` enabled,
        repeated requests for the same target at the same dataset version
        return the cached derivation (bit-identical: the derivation is a
        pure function of the masked shared state).
        """
        if self.prepared_cache_size <= 0:
            return self._derive_prepared(target_id, landmark_pool)
        key = (
            self.dataset.version,
            target_id,
            # Sorted, like the derivation itself: permuted pools are the
            # same landmark set and must share one cache entry.
            tuple(sorted(landmark_pool)) if landmark_pool is not None else None,
        )
        with self._prepared_lock:
            cached = self._prepared_cache.get(key)
            if cached is not None:
                self.prepared_hits += 1
                return cached
            self.prepared_misses += 1
        prepared = self._derive_prepared(target_id, landmark_pool)
        with self._prepared_lock:
            self._prepared_cache.put(key, prepared)
        return prepared

    def _derive_prepared(
        self, target_id: str, landmark_pool: Sequence[str] | None = None
    ) -> PreparedLandmarks:
        shared = self.shared_state()
        dataset = self.dataset
        pool = sorted(landmark_pool) if landmark_pool is not None else dataset.host_ids
        key = tuple(lid for lid in pool if lid != target_id)
        if len(key) < 3:
            raise ValueError("localization needs at least 3 landmarks")

        located = shared.locations
        try:
            locations = {lid: located[lid] for lid in key}
        except KeyError as exc:
            raise KeyError(f"no ground-truth location recorded for {exc.args[0]!r}")

        if landmark_pool is None:
            # Leave-one-out over the full cohort: pairs among the landmarks
            # are the total measured pairs minus the held-out host's degree.
            pair_count = len(shared.rtt_matrix) - shared.pair_degree.get(target_id, 0)
        else:
            members = set(key)
            pair_count = sum(
                1 for (a, b) in shared.rtt_matrix if a in members and b in members
            )

        heights: HeightModel | None = None
        if self.config.use_heights and pair_count >= len(key):
            # The full matrix plus the masked location map is the exclusion
            # mask: pairs touching the held-out host are filtered inside the
            # estimator (see heights._pairwise_excess_table).
            heights = estimate_landmark_heights(
                locations,
                shared.rtt_matrix,
                distance_km=dataset.cached_distance_km,
            )

        calibrations = CalibrationSet()
        if self.config.use_calibration:
            pseudo: dict[str, float] = {}
            if heights is not None:
                pseudo = pseudo_target_heights(
                    key, locations, heights, dataset.cached_min_rtt_ms
                )
            calibrations = build_calibration_set(
                key,
                locations,
                dataset.cached_min_rtt_ms,
                heights=heights,
                pseudo_heights=pseudo,
                distance_km=dataset.cached_distance_km,
                cutoff_percentile=self.config.calibration_cutoff_percentile,
                sentinel_ms=self.config.calibration_sentinel_ms,
                slack=self.config.calibration_slack,
            )

        router_positions: dict[str, RouterPosition] = {}
        if self.config.use_piecewise:
            localizer = RouterLocalizer(
                dataset,
                self.config,
                calibrations,
                heights,
                self.parser,
                dns_cache=shared.dns_cache,
                router_observations=shared.router_observations,
                circle_cache=shared.circle_cache,
            )
            router_positions = localizer.localize_routers(list(key))

        return PreparedLandmarks(
            landmark_ids=key,
            locations=locations,
            heights=heights,
            calibrations=calibrations,
            router_positions=router_positions,
        )

    # ------------------------------------------------------------------ #
    # Localization
    # ------------------------------------------------------------------ #
    def localize_one(
        self, target_id: str, landmark_pool: Sequence[str] | None = None
    ) -> LocationEstimate:
        """Localize one target via the incremental derivation, capturing failure.

        Only the preparation step is failure-captured (too few reachable
        landmarks, missing ground truth); an exception from the localization
        itself would be an internal invariant violation and must surface, not
        be recorded as an ordinary per-target failure.
        """
        try:
            prepared = self.prepare_for_target(target_id, landmark_pool)
        except (ValueError, KeyError) as exc:
            return failed_estimate(target_id, "octant", exc)
        return self.octant.localize(target_id, prepared=prepared)

    def solve_many(
        self,
        target_ids: Sequence[str],
        landmark_pool: Sequence[str] | None = None,
    ) -> dict[str, LocationEstimate]:
        """Localize a cohort of targets through one fused solve.

        Every target is presolved individually (leave-one-out derivation,
        constraint assembly, planarization -- failures captured per target
        exactly like :meth:`localize_one`), then the whole cohort's
        weighted-region systems run through
        :meth:`ConstraintPipeline.solve_many` in a single kernel invocation.
        Under ``engine="fused"`` that is one lockstep run whose batched clip
        passes span every target; other engines fall back to per-system
        solves -- either way the estimates are identical to calling
        :meth:`localize_one` per target.
        """
        targets = list(target_ids)
        pool = tuple(landmark_pool) if landmark_pool is not None else None
        estimates: dict[str, LocationEstimate] = {}
        presolved = []
        seen: set[str] = set()
        for target in targets:
            # Duplicates (a serving burst for one hot target) presolve once.
            if target in seen:
                continue
            seen.add(target)
            try:
                prepared = self.prepare_for_target(target, pool)
            except (ValueError, KeyError) as exc:
                # Only the preparation step is failure-captured, exactly
                # like localize_one: an exception from presolve (assembly /
                # planarization) is an internal invariant violation and
                # must surface, not become a quiet failed estimate.
                estimates[target] = failed_estimate(target, "octant", exc)
                continue
            presolved.append(self.octant.presolve(target, prepared=prepared))
        if presolved:
            solve_started = time.perf_counter()
            solved = self.octant.pipeline.solve_many(
                [(p.planar, p.projection) for p in presolved]
            )
            solve_share = (time.perf_counter() - solve_started) / len(presolved)
            self.octant.pipeline.stats.runs += len(presolved)
            for p, (region, diagnostics) in zip(presolved, solved):
                estimates[p.target_id] = self.octant.postsolve(
                    p, region, diagnostics, solve_share=solve_share
                )
        return {t: estimates[t] for t in targets}

    def localize_all(
        self,
        target_ids: Sequence[str] | None = None,
        landmark_pool: Sequence[str] | None = None,
    ) -> dict[str, LocationEstimate]:
        """Leave-one-out localization of every host (or the given targets).

        Fan-out across workers when configured; the merge is ordered by the
        input target list, so results are deterministic regardless of worker
        scheduling.  Under ``engine="fused"`` the cohort is cut into chunks
        of ``SolverConfig.fuse_width`` targets, each chunk solved in one
        fused kernel run (:meth:`solve_many`); the chunks -- not individual
        targets -- fan out across the executor.
        """
        targets = list(target_ids) if target_ids is not None else self.dataset.host_ids
        pool = tuple(landmark_pool) if landmark_pool is not None else None
        workers = self._resolve_workers(len(targets))
        solver_config = self.config.solver
        fused = (
            solver_config.engine == "fused" and not solver_config.exact_complements
        )
        if fused:
            width = max(1, solver_config.fuse_width)
            chunks = [
                tuple(targets[i : i + width]) for i in range(0, len(targets), width)
            ]
            if workers <= 1 or len(chunks) == 1:
                merged: dict[str, LocationEstimate] = {}
                for chunk in chunks:
                    merged.update(self.solve_many(chunk, pool))
                return {t: merged[t] for t in targets}
            self.shared_state()
            executor = self._make_executor(workers)
            try:
                futures = [
                    executor.submit(self._dispatch_chunk, chunk, pool)
                    for chunk in chunks
                ]
                merged = {}
                for future in futures:
                    merged.update(future.result())
            finally:
                executor.shutdown()
            return {t: merged[t] for t in targets}

        if workers <= 1:
            return {t: self.localize_one(t, pool) for t in targets}

        # Build the shared state before dispatch so every worker inherits it
        # instead of redundantly recomputing the matrices.
        self.shared_state()
        executor = self._make_executor(workers)
        try:
            futures = [
                executor.submit(self._dispatch, target, pool) for target in targets
            ]
            results = [future.result() for future in futures]
        finally:
            executor.shutdown()
        return dict(zip(targets, results))

    # ------------------------------------------------------------------ #
    # Executor plumbing
    # ------------------------------------------------------------------ #
    def _resolve_workers(self, task_count: int) -> int:
        workers = self.max_workers
        if workers in (None, 1):
            return 1
        if workers in (0, "auto"):
            workers = os.cpu_count() or 1
        return max(1, min(int(workers), task_count))

    def _make_executor(self, workers: int):
        kind = self.executor_kind
        if kind == "auto":
            kind = "process" if hasattr(os, "fork") else "thread"
        if kind == "process":
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                context = multiprocessing.get_context(
                    "fork" if hasattr(os, "fork") else None
                )
                self._dispatch = _worker_localize_proxy
                self._dispatch_chunk = _worker_solve_chunk_proxy
                return ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=(self,),
                )
            except (ImportError, OSError, ValueError):
                pass  # fall through to threads
        self._dispatch = self.localize_one
        self._dispatch_chunk = self.solve_many
        return ThreadPoolExecutor(max_workers=workers)

    # Default dispatch (inline/threads); replaced per-executor in _make_executor.
    def _dispatch(self, target_id, landmark_pool):  # pragma: no cover - rebound
        return self.localize_one(target_id, landmark_pool)

    def _dispatch_chunk(self, target_ids, landmark_pool):  # pragma: no cover - rebound
        return self.solve_many(target_ids, landmark_pool)

    def __getstate__(self):
        state = self.__dict__.copy()
        # Bound-method/dispatch state is executor-local, never shipped, and
        # locks are not picklable (workers recreate their own).
        state.pop("_dispatch", None)
        state.pop("_dispatch_chunk", None)
        state.pop("_shared_lock", None)
        state.pop("_prepared_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shared_lock = threading.Lock()
        self._prepared_lock = threading.Lock()


def _worker_localize_proxy(target_id: str, landmark_pool: tuple[str, ...] | None):
    return _worker_localize(target_id, landmark_pool)


def _worker_solve_chunk_proxy(
    target_ids: tuple[str, ...], landmark_pool: tuple[str, ...] | None
):
    return _worker_solve_chunk(target_ids, landmark_pool)


def localize_many(
    localizer: object,
    target_ids: Sequence[str],
    method: str = "unknown",
    max_workers: int | str | None = None,
) -> dict[str, LocationEstimate]:
    """Localize many targets with any method, capturing per-target failures.

    Octant localizers are routed through :class:`BatchLocalizer` (shared
    preparation, optional ``max_workers`` fan-out); baseline methods fall
    back to a plain loop.  Either way a target that cannot be localized
    yields a failed estimate instead of aborting the study.
    """
    if isinstance(localizer, Octant):
        return BatchLocalizer(localizer, max_workers=max_workers).localize_all(
            target_ids
        )
    results: dict[str, LocationEstimate] = {}
    for target in target_ids:
        try:
            results[target] = localizer.localize(target)  # type: ignore[attr-defined]
        except (ValueError, KeyError) as exc:
            results[target] = failed_estimate(target, method, exc)
    return results

"""Batch leave-one-out localization: shared state once, per-target views.

The paper's entire evaluation is leave-one-out: every host becomes the target
while all others serve as landmarks.  Driving that study through
:meth:`Octant.localize` re-runs ``prepare()`` -- O(n^2) height estimation,
per-landmark calibration, router localization -- for every target, because
each target sees a *different* landmark set.  A full accuracy study is then
effectively O(n^3) and caches one full :class:`PreparedLandmarks` per target.

:class:`BatchLocalizer` restructures the computation around what actually
changes between targets:

1. **Full-cohort shared state, computed once.**  The pairwise min-RTT and
   great-circle distance matrices (cached on the
   :class:`~repro.network.dataset.MeasurementDataset` itself), the per-host
   measured-pair degrees, the ground-truth location map, the DNS-derived
   router positions (which depend only on DNS records, never on the landmark
   set) and the router observation index.

2. **Incremental per-target derivation.**  Each target's leave-one-out
   :class:`PreparedLandmarks` is derived by *masking* the held-out host's
   samples out of the shared state and re-running only the mask-sensitive
   estimators (the height fix-point, pseudo-target heights, convex-hull
   calibration, latency-only router positions), feeding them the precomputed
   matrices.  The estimators are the same functions the sequential path
   calls, applied to bit-identical inputs, so every derived estimate is
   **identical** to ``Octant.localize(target)`` -- a property pinned by
   ``tests/core/test_batch.py``.

3. **Parallel fan-out.**  Independent targets are dispatched across a
   ``concurrent.futures`` executor (threads, or forked processes where
   available) and merged back in input order, so results are deterministic
   regardless of completion order.

Per-target failures (a target with fewer than 3 reachable landmarks, a host
without ground truth) are recorded as failed estimates -- ``point=None`` with
the reason under ``details["error"]`` -- instead of aborting the whole study.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .._lru import BoundedLRU
from ..geometry import CircleCache, GeoPoint
from ..network.dataset import IngestDelta, MeasurementDataset
from ..network.dns import UndnsParser
from ..resilience.deadline import checkpoint, resilience_scope
from ..resilience.errors import classify_error
from ..resilience.faults import FaultPlan
from .calibration import (
    CalibrationSet,
    build_calibration_set,
    build_calibration_sets_many,
)
from .config import OctantConfig
from .estimate import LocationEstimate
from .heights import (
    HeightModel,
    TargetHeightTables,
    estimate_landmark_heights,
    estimate_landmark_heights_many,
)
from .octant import (
    Octant,
    PreparedLandmarks,
    pseudo_target_heights,
    pseudo_target_heights_tabled,
)
from .piecewise import (
    RouterLocalizer,
    RouterPosition,
    build_router_observation_index,
    localize_routers_many,
)

__all__ = ["BatchLocalizer", "BatchSharedState", "failed_estimate", "localize_many"]


def failed_estimate(
    target_id: str,
    method: str,
    error: BaseException | str,
    traceback: str | None = None,
    stats: Mapping[str, float] | None = None,
    error_type: str | None = None,
) -> LocationEstimate:
    """A recorded per-target failure: no point, no region, reason in details.

    ``details["error_type"]`` carries the exception class name so failure
    modes can be aggregated without parsing messages (``error_type``
    overrides it for failures with no exception, e.g. ``"shutdown"``);
    ``details["error_class"]`` is the resilience taxonomy bucket
    (``retriable`` / ``fatal`` / ``deadline`` / ``cancelled`` / ``timeout``
    / ``shutdown``) so policy-level aggregation does not depend on concrete
    exception classes.  ``traceback`` accepts a pre-formatted traceback
    string (the serving path captures it at the executor boundary) stored
    under ``details["traceback"]`` -- failures stay diagnosable from the
    estimate alone, without process logs.  ``stats`` records the target's
    share of pooled pipeline-stage time under ``details["pipeline_stats"]``:
    a target that fails halfway through the batched derivation still
    consumed height/calibration work, and per-stage accounting would
    undercount without it.
    """
    details: dict[str, object] = {"error": str(error)}
    if error_type is not None:
        details["error_type"] = error_type
        details["error_class"] = error_type
    elif isinstance(error, BaseException):
        details["error_type"] = type(error).__name__
        details["error_class"] = classify_error(error)
    if traceback:
        details["traceback"] = traceback
    if stats:
        details["pipeline_stats"] = {k: float(v) for k, v in dict(stats).items()}
    return LocationEstimate(
        target_id=target_id,
        method=method,
        point=None,
        region=None,
        details=details,
    )


@dataclass
class _PrepareFailure:
    """A captured per-target preparation failure from the batched derivation.

    Carries the exception exactly as the scalar path would have raised it,
    plus the target's share of any pooled stage time it consumed before
    failing (fed to :func:`failed_estimate` as ``stats``).
    """

    error: Exception
    stats: dict[str, float] = field(default_factory=dict)


@dataclass
class BatchSharedState:
    """Full-cohort state computed once and shared by every per-target view."""

    locations: dict[str, GeoPoint]
    #: Measured host pairs, keys ``(a, b)`` with ``a < b`` (dataset cache).
    rtt_matrix: Mapping[tuple[str, str], float]
    #: Number of measured pairs each host participates in.
    pair_degree: Mapping[str, int]
    #: DNS-derived router positions are landmark-set independent; one shared
    #: cache avoids re-parsing every router's DNS name per target.
    dns_cache: dict[str, RouterPosition | None] = field(default_factory=dict)
    #: Router id -> sorted ``(host_id, raw_rtt)`` observations.
    router_observations: dict[str, list[tuple[str, float]]] = field(default_factory=dict)
    #: Geodesic circle boundaries keyed ``(lat, lon, radius_km, segments)``:
    #: projection-independent, so one cohort-wide cache serves every target
    #: (each re-projects the cached arrays in one vectorized operation).
    #: Shared with the wrapped Octant so both engines warm the same entries;
    #: process-pool workers inherit whatever was cached before the fork.
    #: The planar layer additionally pre-realizes the convex mask cells of
    #: non-convex geographic rings on first projection (see
    #: ``CircleCache.planar_ring``), and because the planar polygons it
    #: hands out are identity-stable, the kernel's cross-solve
    #: constraint-geometry tables (``repro.geometry.kernel``) stay warm
    #: across every solve that shares this state -- including across
    #: snapshot rebuilds, whose unchanged constraints re-realize the very
    #: same polygon objects.
    circle_cache: CircleCache = field(default_factory=CircleCache)
    #: The :attr:`MeasurementDataset.version` this state was built from;
    #: :meth:`BatchLocalizer.shared_state` rebuilds when the live dataset
    #: has ingested measurements past it (the circle cache is carried over:
    #: its entries are content-addressed and never go stale).
    dataset_version: int = 0


# --------------------------------------------------------------------------- #
# Process-pool plumbing: the localizer is shipped to each worker once (via
# the initializer) instead of being pickled with every submitted task.
# --------------------------------------------------------------------------- #
_WORKER_LOCALIZER: "BatchLocalizer | None" = None


def _init_worker(localizer: "BatchLocalizer") -> None:
    global _WORKER_LOCALIZER
    _WORKER_LOCALIZER = localizer


def _worker_localize(target_id: str, landmark_pool: tuple[str, ...] | None) -> LocationEstimate:
    assert _WORKER_LOCALIZER is not None
    return _WORKER_LOCALIZER.localize_one(target_id, landmark_pool)


def _worker_solve_chunk(
    target_ids: tuple[str, ...], landmark_pool: tuple[str, ...] | None
) -> dict[str, LocationEstimate]:
    assert _WORKER_LOCALIZER is not None
    return _WORKER_LOCALIZER.solve_many(target_ids, landmark_pool)


class BatchLocalizer:
    """Leave-one-out localization of many targets with shared preparation.

    Wraps (or builds) an :class:`Octant` and reuses its constraint
    construction and solver end to end; only the per-target preparation is
    replaced by the incremental derivation.  Results are identical to calling
    ``octant.localize(target)`` per target.

    ``max_workers`` controls the fan-out: ``None`` or ``1`` runs inline (no
    executor), ``0`` or ``"auto"`` uses the CPU count, any other integer is
    used as given.  ``executor_kind`` selects ``"thread"`` or ``"process"``
    workers; ``"auto"`` picks processes when fork is available (the work is
    CPU-bound pure Python) and threads otherwise.

    ``prepared_cache_size`` (default 0: disabled) bounds an LRU of derived
    per-target :class:`PreparedLandmarks`, keyed by
    ``(dataset version, target, landmark pool)``.  Leave-one-out studies
    visit every target once and gain nothing from it; the online serving
    path hits the same targets repeatedly and skips re-derivation entirely
    on a warm hit.  The derivation is deterministic, so a cached object is
    the one a fresh call would return.
    """

    def __init__(
        self,
        source: Octant | MeasurementDataset,
        config: OctantConfig | None = None,
        parser: UndnsParser | None = None,
        max_workers: int | str | None = None,
        executor_kind: str = "auto",
        prepared_cache_size: int = 0,
    ):
        if isinstance(source, Octant):
            self.octant = source
        else:
            self.octant = Octant(source, config, parser)
        self.dataset = self.octant.dataset
        self.config = self.octant.config
        self.parser = self.octant.parser
        self.max_workers = max_workers
        self.executor_kind = executor_kind
        self.prepared_cache_size = prepared_cache_size
        #: Optional fault-injection plan scoped to this localizer's work
        #: (chaos testing of batch studies without touching global state).
        #: Picklable, so it ships to process-pool workers with the rest of
        #: the localizer; each worker re-rolls the same deterministic
        #: schedule from the plan's seed.
        self.fault_plan: FaultPlan | None = None
        self._shared: BatchSharedState | None = None
        self._shared_lock = threading.Lock()
        self._prepared_cache: BoundedLRU[PreparedLandmarks] = BoundedLRU(
            max(1, prepared_cache_size)
        )
        self._prepared_lock = threading.Lock()
        self.prepared_hits = 0
        self.prepared_misses = 0
        # Cohort-shared target-height propagation tables, keyed by
        # (dataset version, located pool): every target of a solve_many
        # cohort estimates heights against the same landmark geometry, so
        # the per-pair propagation terms are computed once per cohort.
        self._tables_cache: BoundedLRU[TargetHeightTables] = BoundedLRU(4)
        self._tables_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Shared state
    # ------------------------------------------------------------------ #
    def shared_state(self) -> BatchSharedState:
        """Build (once per dataset version) the full-cohort shared state.

        Thread-safe: the serving executor calls this concurrently from
        request workers.  After a measurement ingest the state is rebuilt
        against the new version; the circle cache is carried across rebuilds
        because its entries are content-addressed (a circle at given
        coordinates is the same circle whatever the measurements say).
        """
        version = self.dataset.version
        shared = self._shared
        if shared is not None and shared.dataset_version == version:
            return shared
        with self._shared_lock:
            shared = self._shared
            if shared is not None and shared.dataset_version == version:
                return shared
            dataset = self.dataset
            locations = {
                host_id: record.location
                for host_id, record in sorted(dataset.hosts.items())
                if record.location is not None
            }
            router_observations: dict[str, list[tuple[str, float]]] = {}
            if self.config.use_piecewise:
                router_observations = build_router_observation_index(dataset)
            self._shared = BatchSharedState(
                locations=locations,
                rtt_matrix=dataset.pairwise_min_rtt(),
                pair_degree=dataset.measured_pair_degree(),
                router_observations=router_observations,
                circle_cache=self.octant.circle_cache,
                dataset_version=version,
            )
        return self._shared

    # ------------------------------------------------------------------ #
    # Incremental per-target derivation
    # ------------------------------------------------------------------ #
    def prepare_for_target(
        self, target_id: str, landmark_pool: Sequence[str] | None = None
    ) -> PreparedLandmarks:
        """Derive the target's leave-one-out state by masking shared state.

        ``landmark_pool`` restricts the landmark population (the Figure 4
        sweep); by default every other host is a landmark, the paper's
        leave-one-out methodology.  Raises :class:`ValueError` when fewer
        than 3 landmarks remain.  With ``prepared_cache_size`` enabled,
        repeated requests for the same target at the same dataset version
        return the cached derivation (bit-identical: the derivation is a
        pure function of the masked shared state).
        """
        checkpoint("prepare", target_id)
        if self.prepared_cache_size <= 0:
            return self._derive_prepared(target_id, landmark_pool)
        key = (
            self.dataset.version,
            target_id,
            # Sorted, like the derivation itself: permuted pools are the
            # same landmark set and must share one cache entry.
            tuple(sorted(landmark_pool)) if landmark_pool is not None else None,
        )
        with self._prepared_lock:
            cached = self._prepared_cache.get(key)
            if cached is not None:
                self.prepared_hits += 1
                return cached
            self.prepared_misses += 1
        prepared = self._derive_prepared(target_id, landmark_pool)
        with self._prepared_lock:
            self._prepared_cache.put(key, prepared)
        return prepared

    def _derive_prepared(
        self, target_id: str, landmark_pool: Sequence[str] | None = None
    ) -> PreparedLandmarks:
        shared = self.shared_state()
        dataset = self.dataset
        pool = sorted(landmark_pool) if landmark_pool is not None else dataset.host_ids
        key = tuple(lid for lid in pool if lid != target_id)
        if len(key) < 3:
            raise ValueError("localization needs at least 3 landmarks")

        located = shared.locations
        try:
            locations = {lid: located[lid] for lid in key}
        except KeyError as exc:
            raise KeyError(f"no ground-truth location recorded for {exc.args[0]!r}")

        if landmark_pool is None:
            # Leave-one-out over the full cohort: pairs among the landmarks
            # are the total measured pairs minus the held-out host's degree.
            pair_count = len(shared.rtt_matrix) - shared.pair_degree.get(target_id, 0)
        else:
            members = set(key)
            pair_count = sum(
                1 for (a, b) in shared.rtt_matrix if a in members and b in members
            )

        heights: HeightModel | None = None
        if self.config.use_heights and pair_count >= len(key):
            # The full matrix plus the masked location map is the exclusion
            # mask: pairs touching the held-out host are filtered inside the
            # estimator (see heights._pairwise_excess_table).
            heights = estimate_landmark_heights(
                locations,
                shared.rtt_matrix,
                distance_km=dataset.cached_distance_km,
            )

        calibrations = CalibrationSet()
        if self.config.use_calibration:
            pseudo: dict[str, float] = {}
            if heights is not None:
                pseudo = pseudo_target_heights(
                    key, locations, heights, dataset.cached_min_rtt_ms
                )
            calibrations = build_calibration_set(
                key,
                locations,
                dataset.cached_min_rtt_ms,
                heights=heights,
                pseudo_heights=pseudo,
                distance_km=dataset.cached_distance_km,
                cutoff_percentile=self.config.calibration_cutoff_percentile,
                sentinel_ms=self.config.calibration_sentinel_ms,
                slack=self.config.calibration_slack,
            )

        router_positions: dict[str, RouterPosition] = {}
        if self.config.use_piecewise:
            localizer = RouterLocalizer(
                dataset,
                self.config,
                calibrations,
                heights,
                self.parser,
                dns_cache=shared.dns_cache,
                router_observations=shared.router_observations,
                circle_cache=shared.circle_cache,
            )
            router_positions = localizer.localize_routers(list(key))

        return PreparedLandmarks(
            landmark_ids=key,
            locations=locations,
            heights=heights,
            calibrations=calibrations,
            router_positions=router_positions,
        )

    def _height_tables(
        self, shared: BatchSharedState, pool: Sequence[str]
    ) -> TargetHeightTables:
        """Cohort-shared target-height propagation tables for a landmark pool.

        Built over the located pool hosts (every roster a cohort target uses
        is a subset) and cached per ``(dataset version, located ids)``: the
        tables only depend on landmark coordinates, so all of a cohort's
        pseudo-height and target-height estimates share one table build.
        """
        ids = tuple(lid for lid in pool if lid in shared.locations)
        key = (shared.dataset_version, ids)
        with self._tables_lock:
            cached = self._tables_cache.get(key)
        if cached is not None:
            return cached
        tables = TargetHeightTables(ids, shared.locations)
        with self._tables_lock:
            self._tables_cache.put(key, tables)
        return tables

    def adopt_caches(
        self,
        previous: "BatchLocalizer",
        deltas: tuple[IngestDelta, ...] | None,
    ) -> dict[str, int | bool]:
        """Carry warm cache entries from a retired localizer across an ingest.

        ``previous`` is the localizer that served the prior dataset version;
        ``deltas`` is ``live.deltas_since(previous.dataset.version)``.  A
        prepared entry for ``(target, pool)`` is a pure function of its
        roster's measurements (the target's own RTTs are read live at
        assembly time), so it survives the ingest iff no delta's changed
        scope lands inside the roster (:meth:`IngestDelta.affects_roster`)
        -- and, for implicit leave-one-out entries, no new host joined the
        cohort (which changes the roster itself).  Survivors are re-keyed to
        this localizer's dataset version, bit-identical by construction: a
        fresh derivation would read exactly the inputs the delta proves
        unchanged.  ``deltas is None`` (the bounded delta log no longer
        covers the retired version, or router metadata was replaced) means
        full invalidation: nothing is carried.

        Height tables carry on the same argument scoped to locations, and
        the shared DNS-position cache (a pure function of router records,
        which selective deltas prove unreplaced) transfers wholesale.

        Returns counters for ``cache_stats()["ingest"]`` accounting.
        """
        stats: dict[str, int | bool] = {
            "full": deltas is None,
            "prepared_carried": 0,
            "prepared_evicted": 0,
            "tables_carried": 0,
            "dns_carried": 0,
        }
        if deltas is None:
            with previous._prepared_lock:
                stats["prepared_evicted"] = len(previous._prepared_cache)
            return stats
        prev_version = previous.dataset.version
        new_version = self.dataset.version
        new_hosts_any = any(d.new_hosts for d in deltas)
        if self.prepared_cache_size > 0:
            with previous._prepared_lock:
                entries = previous._prepared_cache.items()
            carried = evicted = 0
            for key, prepared in entries:
                version, target, pool_key = key
                if (
                    version != prev_version
                    or (pool_key is None and new_hosts_any)
                    or any(
                        d.affects_roster(frozenset(prepared.landmark_ids))
                        for d in deltas
                    )
                ):
                    evicted += 1
                    continue
                with self._prepared_lock:
                    self._prepared_cache.put((new_version, target, pool_key), prepared)
                carried += 1
            stats["prepared_carried"] = carried
            stats["prepared_evicted"] = evicted
        with previous._tables_lock:
            table_entries = previous._tables_cache.items()
        for key, tables in table_entries:
            version, ids = key
            members = frozenset(ids)
            if version != prev_version or any(
                not d.location_hosts.isdisjoint(members) for d in deltas
            ):
                continue
            with self._tables_lock:
                self._tables_cache.put((new_version, ids), tables)
            stats["tables_carried"] = int(stats["tables_carried"]) + 1
        prev_shared = previous._shared
        if prev_shared is not None and prev_shared.dns_cache:
            shared = self.shared_state()
            shared.dns_cache.update(prev_shared.dns_cache)
            stats["dns_carried"] = len(prev_shared.dns_cache)
        return stats

    def prepare_many(
        self, target_ids: Sequence[str], landmark_pool: Sequence[str] | None = None
    ) -> dict[str, "PreparedLandmarks | _PrepareFailure"]:
        """Derive many targets' leave-one-out state through batched stages.

        The cohort-axis counterpart of :meth:`prepare_for_target`: each
        mask-sensitive estimator runs once over the whole cohort -- masked
        tensor reductions for the height fix-point
        (:func:`estimate_landmark_heights_many`), table-driven pseudo-target
        heights, pooled calibration gathers
        (:func:`build_calibration_sets_many`) and cohort-pooled router disk
        realization (:func:`localize_routers_many`) -- instead of once per
        target.  Every batched stage is bit-identical to its scalar
        reference, so each returned :class:`PreparedLandmarks` equals what
        :meth:`prepare_for_target` would derive; stage wall times are
        recorded on the pipeline's :class:`PipelineStats`.

        A target the scalar path would fail with :class:`ValueError` /
        :class:`KeyError` is returned as a :class:`_PrepareFailure` carrying
        that exception plus the target's share of the pooled stage time it
        consumed before failing.
        """
        for target in dict.fromkeys(target_ids):
            checkpoint("prepare", target)
        shared = self.shared_state()
        dataset = self.dataset
        stats = self.octant.pipeline.stats
        pool = sorted(landmark_pool) if landmark_pool is not None else dataset.host_ids
        pool_key = tuple(pool) if landmark_pool is not None else None
        use_cache = self.prepared_cache_size > 0

        results: dict[str, PreparedLandmarks | _PrepareFailure] = {}
        pending: list[str] = []
        for target in dict.fromkeys(target_ids):
            if use_cache:
                cache_key = (dataset.version, target, pool_key)
                with self._prepared_lock:
                    cached = self._prepared_cache.get(cache_key)
                    if cached is not None:
                        self.prepared_hits += 1
                    else:
                        self.prepared_misses += 1
                if cached is not None:
                    results[target] = cached
                    continue
            pending.append(target)
        if not pending:
            return results

        # Per-target share of pooled stage time, accumulated as stages run;
        # a failing target hands its shares to the failed estimate.
        shares: dict[str, dict[str, float]] = {t: {} for t in pending}

        def credit(targets: Sequence[str], stage: str, per_target: float) -> None:
            for t in targets:
                bucket = shares[t]
                bucket[stage] = bucket.get(stage, 0.0) + per_target

        # -- Roster resolution (pure per-target bookkeeping) ------------- #
        located = shared.locations
        active: list[tuple[str, tuple[str, ...], dict[str, GeoPoint], int]] = []
        for target in pending:
            key = tuple(lid for lid in pool if lid != target)
            if len(key) < 3:
                results[target] = _PrepareFailure(
                    ValueError("localization needs at least 3 landmarks")
                )
                continue
            try:
                locations = {lid: located[lid] for lid in key}
            except KeyError as exc:
                results[target] = _PrepareFailure(
                    KeyError(f"no ground-truth location recorded for {exc.args[0]!r}")
                )
                continue
            if landmark_pool is None:
                pair_count = len(shared.rtt_matrix) - shared.pair_degree.get(target, 0)
            else:
                members = set(key)
                pair_count = sum(
                    1 for (a, b) in shared.rtt_matrix if a in members and b in members
                )
            active.append((target, key, locations, pair_count))

        # -- Heights: one masked tensor fix-point for the whole cohort --- #
        failed: set[str] = set()
        heights_map: dict[str, HeightModel | None] = {
            entry[0]: None for entry in active
        }
        height_cohort = [
            entry
            for entry in active
            if self.config.use_heights and entry[3] >= len(entry[1])
        ]
        if height_cohort:
            started = time.perf_counter()
            outcomes = estimate_landmark_heights_many(
                [entry[2] for entry in height_cohort],
                shared.rtt_matrix,
                distance_km=dataset.cached_distance_km,
            )
            elapsed = time.perf_counter() - started
            stats.heights_seconds += elapsed
            credit([entry[0] for entry in height_cohort], "heights_seconds",
                   elapsed / len(height_cohort))
            for entry, outcome in zip(height_cohort, outcomes):
                if isinstance(outcome, ValueError):
                    failed.add(entry[0])
                    results[entry[0]] = _PrepareFailure(outcome, shares[entry[0]])
                else:
                    heights_map[entry[0]] = outcome

        # -- Calibration: pseudo-target heights + pooled convex hulls ---- #
        survivors = [entry for entry in active if entry[0] not in failed]
        calibrations_map: dict[str, CalibrationSet] = {}
        if self.config.use_calibration and survivors:
            tables = (
                self._height_tables(shared, pool)
                if any(heights_map[entry[0]] is not None for entry in survivors)
                else None
            )
            started = time.perf_counter()
            pseudo_map: dict[str, dict[str, float]] = {}
            for target, key, locations, _ in survivors:
                heights = heights_map[target]
                if heights is None:
                    pseudo_map[target] = {}
                else:
                    pseudo_map[target] = pseudo_target_heights_tabled(
                        key, locations, heights, dataset.cached_min_rtt_ms, tables
                    )
            pseudo_elapsed = time.perf_counter() - started
            stats.heights_seconds += pseudo_elapsed
            credit([entry[0] for entry in survivors], "heights_seconds",
                   pseudo_elapsed / len(survivors))

            started = time.perf_counter()
            outcomes = build_calibration_sets_many(
                [entry[1] for entry in survivors],
                located,
                dataset.cached_min_rtt_ms,
                heights_list=[heights_map[entry[0]] for entry in survivors],
                pseudo_heights_list=[pseudo_map[entry[0]] for entry in survivors],
                distance_km=dataset.cached_distance_km,
                cutoff_percentile=self.config.calibration_cutoff_percentile,
                sentinel_ms=self.config.calibration_sentinel_ms,
                slack=self.config.calibration_slack,
            )
            elapsed = time.perf_counter() - started
            stats.calibration_seconds += elapsed
            credit([entry[0] for entry in survivors], "calibration_seconds",
                   elapsed / len(survivors))
            for entry, outcome in zip(survivors, outcomes):
                if isinstance(outcome, ValueError):
                    failed.add(entry[0])
                    results[entry[0]] = _PrepareFailure(outcome, shares[entry[0]])
                else:
                    calibrations_map[entry[0]] = outcome
            survivors = [entry for entry in survivors if entry[0] not in failed]

        # -- Piecewise: cohort-pooled router disk realization ------------ #
        router_maps: dict[str, dict[str, RouterPosition]] = {}
        if self.config.use_piecewise and survivors:
            started = time.perf_counter()
            localizers = [
                RouterLocalizer(
                    dataset,
                    self.config,
                    calibrations_map.get(entry[0], CalibrationSet()),
                    heights_map[entry[0]],
                    self.parser,
                    dns_cache=shared.dns_cache,
                    router_observations=shared.router_observations,
                    circle_cache=shared.circle_cache,
                )
                for entry in survivors
            ]
            rosters = [list(entry[1]) for entry in survivors]
            try:
                maps = localize_routers_many(localizers, rosters)
            except (ValueError, KeyError):
                # Mirror the scalar path's per-target failure capture: rerun
                # each roster through the scalar method so only the targets
                # that actually fail are recorded as failures.  The pooled
                # pass only warmed content-addressed caches, so the rerun is
                # unaffected by the aborted attempt.
                maps = []
                for localizer, roster, entry in zip(localizers, rosters, survivors):
                    try:
                        maps.append(localizer.localize_routers(roster))
                    except (ValueError, KeyError) as exc:
                        failed.add(entry[0])
                        results[entry[0]] = _PrepareFailure(exc, shares[entry[0]])
                        maps.append(None)
            elapsed = time.perf_counter() - started
            stats.piecewise_seconds += elapsed
            credit([entry[0] for entry in survivors], "piecewise_seconds",
                   elapsed / len(survivors))
            for entry, positions in zip(survivors, maps):
                if positions is not None:
                    router_maps[entry[0]] = positions
            survivors = [entry for entry in survivors if entry[0] not in failed]

        # -- Assembly and cache insertion -------------------------------- #
        for target, key, locations, _ in survivors:
            calibrations = calibrations_map.get(target)
            if calibrations is None:
                calibrations = CalibrationSet()
            prepared = PreparedLandmarks(
                landmark_ids=key,
                locations=locations,
                heights=heights_map[target],
                calibrations=calibrations,
                router_positions=router_maps.get(target, {}),
            )
            results[target] = prepared
            if use_cache:
                with self._prepared_lock:
                    self._prepared_cache.put(
                        (dataset.version, target, pool_key), prepared
                    )
        return results

    # ------------------------------------------------------------------ #
    # Localization
    # ------------------------------------------------------------------ #
    def _fault_scope(self):
        """Resilience scope activating :attr:`fault_plan`, if one is installed."""
        if self.fault_plan is None:
            return nullcontext()
        return resilience_scope(plan=self.fault_plan)

    def localize_one(
        self,
        target_id: str,
        landmark_pool: Sequence[str] | None = None,
        engine: str | None = None,
    ) -> LocationEstimate:
        """Localize one target via the incremental derivation, capturing failure.

        Only the preparation step is failure-captured (too few reachable
        landmarks, missing ground truth); an exception from the localization
        itself would be an internal invariant violation and must surface, not
        be recorded as an ordinary per-target failure.  ``engine`` overrides
        the configured solver engine for this call (degradation ladder).
        """
        with self._fault_scope():
            try:
                prepared = self.prepare_for_target(target_id, landmark_pool)
            except (ValueError, KeyError) as exc:
                return failed_estimate(target_id, "octant", exc)
            return self.octant.localize(target_id, prepared=prepared, engine=engine)

    def solve_many(
        self,
        target_ids: Sequence[str],
        landmark_pool: Sequence[str] | None = None,
        *,
        engine: str | None = None,
        _prepared: Mapping[str, "PreparedLandmarks | _PrepareFailure"] | None = None,
    ) -> dict[str, LocationEstimate]:
        """Localize a cohort of targets through whole-cohort batched stages.

        The cohort rides the batched pipeline end to end: one
        :meth:`prepare_many` pass derives every target's leave-one-out state
        through the cohort-axis estimators (failures captured per target
        exactly like :meth:`localize_one`), constraint assembly runs per
        target with the cohort-shared target-height tables, planarization is
        pooled through :meth:`ConstraintPipeline.planarize_many`, and the
        whole cohort's weighted-region systems run through
        :meth:`ConstraintPipeline.solve_many` in a single kernel invocation.
        Under ``engine="fused"`` that is one lockstep run whose batched clip
        passes span every target; other engines fall back to per-system
        solves -- either way the estimates are identical to calling
        :meth:`localize_one` per target.
        """
        with self._fault_scope():
            return self._solve_many_inner(
                target_ids, landmark_pool, engine=engine, _prepared=_prepared
            )

    def _solve_many_inner(
        self,
        target_ids: Sequence[str],
        landmark_pool: Sequence[str] | None = None,
        *,
        engine: str | None = None,
        _prepared: Mapping[str, "PreparedLandmarks | _PrepareFailure"] | None = None,
    ) -> dict[str, LocationEstimate]:
        targets = list(target_ids)
        pool = tuple(landmark_pool) if landmark_pool is not None else None
        estimates: dict[str, LocationEstimate] = {}
        # Duplicates (a serving burst for one hot target) presolve once.
        unique = list(dict.fromkeys(targets))
        if _prepared is not None:
            prepared_map = {t: _prepared[t] for t in unique}
        else:
            prepared_map = self.prepare_many(unique, pool)
        tables = None
        if self.config.use_heights:
            shared = self.shared_state()
            tables = self._height_tables(
                shared,
                sorted(pool) if pool is not None else self.dataset.host_ids,
            )
        presolved = []
        for target in unique:
            outcome = prepared_map[target]
            if isinstance(outcome, _PrepareFailure):
                # Only the preparation step is failure-captured, exactly
                # like localize_one: an exception from presolve (assembly /
                # planarization) is an internal invariant violation and
                # must surface, not become a quiet failed estimate.
                estimates[target] = failed_estimate(
                    target, "octant", outcome.error, stats=outcome.stats or None
                )
                continue
            presolved.append(
                self.octant.presolve(
                    target,
                    prepared=outcome,
                    height_tables=tables,
                    planarize=False,
                )
            )
        if presolved:
            planarize_started = time.perf_counter()
            planar_systems = self.octant.pipeline.planarize_many(
                [(p.constraints, p.projection) for p in presolved]
            )
            planarize_share = (time.perf_counter() - planarize_started) / len(
                presolved
            )
            for p, planar in zip(presolved, planar_systems):
                p.planar = planar
                p.presolve_seconds += planarize_share
            solve_started = time.perf_counter()
            solved = self.octant.pipeline.solve_many(
                [(p.planar, p.projection) for p in presolved],
                engine=engine,
                key=tuple(p.target_id for p in presolved),
            )
            solve_share = (time.perf_counter() - solve_started) / len(presolved)
            self.octant.pipeline.count_runs(len(presolved))
            for p, (region, diagnostics) in zip(presolved, solved):
                estimates[p.target_id] = self.octant.postsolve(
                    p, region, diagnostics, solve_share=solve_share
                )
        return {t: estimates[t] for t in targets}

    def localize_all(
        self,
        target_ids: Sequence[str] | None = None,
        landmark_pool: Sequence[str] | None = None,
    ) -> dict[str, LocationEstimate]:
        """Leave-one-out localization of every host (or the given targets).

        Fan-out across workers when configured; the merge is ordered by the
        input target list, so results are deterministic regardless of worker
        scheduling.  Under ``engine="fused"`` the cohort is cut into chunks
        of ``SolverConfig.fuse_width`` targets, each chunk solved in one
        fused kernel run (:meth:`solve_many`); the chunks -- not individual
        targets -- fan out across the executor.
        """
        targets = list(target_ids) if target_ids is not None else self.dataset.host_ids
        pool = tuple(landmark_pool) if landmark_pool is not None else None
        workers = self._resolve_workers(len(targets))
        solver_config = self.config.solver
        fused = (
            solver_config.engine == "fused" and not solver_config.exact_complements
        )
        if fused:
            width = max(1, solver_config.fuse_width)
            chunks = [
                tuple(targets[i : i + width]) for i in range(0, len(targets), width)
            ]
            if workers <= 1 or len(chunks) == 1:
                # One whole-cohort preparation pass: the batched stage
                # estimators pool across every target at once, and the
                # per-chunk kernel runs below reuse the prepared state
                # instead of re-deriving it fuse_width targets at a time.
                unique_all = list(dict.fromkeys(targets))
                prepared_all = self.prepare_many(unique_all, pool)
                merged: dict[str, LocationEstimate] = {}
                for chunk in chunks:
                    merged.update(self.solve_many(chunk, pool, _prepared=prepared_all))
                return {t: merged[t] for t in targets}
            self.shared_state()
            executor = self._make_executor(workers)
            try:
                if isinstance(executor, ThreadPoolExecutor):
                    # Threads share memory: one whole-cohort preparation
                    # pass feeds every chunk (the same pooling the serial
                    # path does), and the chunk kernels run over the shared
                    # warm caches.  With the compiled clip backend the
                    # batched passes release the GIL, so the chunks scale
                    # across cores without the process pool's pickling tax.
                    # Process pools re-derive per chunk instead of shipping
                    # the prepared state through pickling.
                    unique_all = list(dict.fromkeys(targets))
                    prepared_all = self.prepare_many(unique_all, pool)
                    futures = [
                        executor.submit(
                            self.solve_many, chunk, pool, _prepared=prepared_all
                        )
                        for chunk in chunks
                    ]
                else:
                    futures = [
                        executor.submit(self._dispatch_chunk, chunk, pool)
                        for chunk in chunks
                    ]
                merged = {}
                for future in futures:
                    merged.update(future.result())
            finally:
                executor.shutdown()
            return {t: merged[t] for t in targets}

        if workers <= 1:
            return {t: self.localize_one(t, pool) for t in targets}

        # Build the shared state before dispatch so every worker inherits it
        # instead of redundantly recomputing the matrices.
        self.shared_state()
        executor = self._make_executor(workers)
        try:
            futures = [
                executor.submit(self._dispatch, target, pool) for target in targets
            ]
            results = [future.result() for future in futures]
        finally:
            executor.shutdown()
        return dict(zip(targets, results))

    # ------------------------------------------------------------------ #
    # Executor plumbing
    # ------------------------------------------------------------------ #
    def _resolve_workers(self, task_count: int) -> int:
        workers = self.max_workers
        if workers in (None, 1):
            return 1
        if workers in (0, "auto"):
            workers = os.cpu_count() or 1
        return max(1, min(int(workers), task_count))

    def _make_executor(self, workers: int):
        kind = self.executor_kind
        if kind == "auto":
            from ..geometry.kernel_compiled import resolve_backend

            solver_config = self.config.solver
            if (
                solver_config.engine == "fused"
                and resolve_backend(
                    getattr(solver_config, "kernel_backend", "auto")
                ).use_compiled
            ):
                # The compiled clip kernels release the GIL, so fused
                # chunks scale across cores on threads -- over the shared
                # warm caches, with no process-pool pickling tax.  The
                # pure-NumPy backend holds the GIL through the Python-level
                # pass dispatch (measured 1.04x at 2 workers), so it keeps
                # the fork-based pool where available.
                kind = "thread"
            else:
                kind = "process" if hasattr(os, "fork") else "thread"
        if kind == "process":
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                context = multiprocessing.get_context(
                    "fork" if hasattr(os, "fork") else None
                )
                self._dispatch = _worker_localize_proxy
                self._dispatch_chunk = _worker_solve_chunk_proxy
                return ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=(self,),
                )
            except (ImportError, OSError, ValueError):
                pass  # fall through to threads
        self._dispatch = self.localize_one
        self._dispatch_chunk = self.solve_many
        return ThreadPoolExecutor(max_workers=workers)

    # Default dispatch (inline/threads); replaced per-executor in _make_executor.
    def _dispatch(self, target_id, landmark_pool):  # pragma: no cover - rebound
        return self.localize_one(target_id, landmark_pool)

    def _dispatch_chunk(self, target_ids, landmark_pool):  # pragma: no cover - rebound
        return self.solve_many(target_ids, landmark_pool)

    def __getstate__(self):
        state = self.__dict__.copy()
        # Bound-method/dispatch state is executor-local, never shipped, and
        # locks are not picklable (workers recreate their own).
        state.pop("_dispatch", None)
        state.pop("_dispatch_chunk", None)
        state.pop("_shared_lock", None)
        state.pop("_prepared_lock", None)
        state.pop("_tables_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shared_lock = threading.Lock()
        self._prepared_lock = threading.Lock()
        self._tables_lock = threading.Lock()


def _worker_localize_proxy(target_id: str, landmark_pool: tuple[str, ...] | None):
    return _worker_localize(target_id, landmark_pool)


def _worker_solve_chunk_proxy(
    target_ids: tuple[str, ...], landmark_pool: tuple[str, ...] | None
):
    return _worker_solve_chunk(target_ids, landmark_pool)


def localize_many(
    localizer: object,
    target_ids: Sequence[str],
    method: str = "unknown",
    max_workers: int | str | None = None,
) -> dict[str, LocationEstimate]:
    """Localize many targets with any method, capturing per-target failures.

    Octant localizers are routed through :class:`BatchLocalizer` (shared
    preparation, optional ``max_workers`` fan-out); baseline methods fall
    back to a plain loop.  Either way a target that cannot be localized
    yields a failed estimate instead of aborting the study.
    """
    if isinstance(localizer, Octant):
        return BatchLocalizer(localizer, max_workers=max_workers).localize_all(
            target_ids
        )
    results: dict[str, LocationEstimate] = {}
    for target in target_ids:
        try:
            results[target] = localizer.localize(target)  # type: ignore[attr-defined]
        except (ValueError, KeyError) as exc:
            results[target] = failed_estimate(target, method, exc)
    return results

"""Configuration of the Octant localization pipeline.

Every mechanism the paper describes can be switched on or off independently,
which is what the ablation benchmarks exercise: convex-hull calibration vs the
conservative speed-of-light bound, height correction, negative constraints,
piecewise router localization, geographic constraints, WHOIS hints and the
weighted (vs strict) solution strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..resilience.config import ResilienceConfig

__all__ = ["OctantConfig", "SolverConfig"]


@dataclass(frozen=True)
class SolverConfig:
    """Parameters of the weighted geometric solver.

    The solver maintains a set of weighted region pieces and refines it with
    one constraint at a time; these knobs bound the work it does and define
    how the final estimate region is selected from the weighted pieces.
    """

    #: Maximum number of weighted pieces kept after each constraint is applied.
    max_pieces: int = 16
    #: Pieces smaller than this (square km) are discarded as numerical slivers.
    min_piece_area_km2: float = 1.0
    #: The final estimate keeps the heaviest pieces until their combined area
    #: reaches this threshold (the paper's "desired size threshold").  The
    #: default is sized to the residual uncertainty of a calibrated latency
    #: constraint (roughly a 250 km radius), so that the reported region is an
    #: honest confidence area rather than just the deepest intersection.
    target_region_area_km2: float = 200000.0
    #: Number of vertices used when turning disks into polygons.
    circle_segments: int = 32
    #: Margin (km) added around the constraint extents when building the
    #: initial universe piece.
    universe_margin_km: float = 500.0
    #: When True the solver maintains exact, disjoint complements of every
    #: split (paper equation semantics, more expensive).  When False -- the
    #: default -- the unsatisfied side of a split keeps the original piece,
    #: which produces the same lattice of constraint intersections the paper
    #: describes while staying fast enough for the full evaluation.
    exact_complements: bool = False
    #: Which solver engine runs the weighted accumulation.  ``"vector"`` (the
    #: default) applies constraints through the NumPy flat-buffer kernel
    #: (:mod:`repro.geometry.kernel`): batched Sutherland-Hodgman passes over
    #: the whole piece population with a fully-inside/fully-outside prefilter.
    #: ``"fused"`` adds a *target* axis on top of it: cohort workloads (batch
    #: leave-one-out studies, micro-batched serving) advance every target's
    #: constraint sequence in lockstep and pool the batched clip passes of
    #: all targets into single NumPy calls, amortizing per-call dispatch
    #: across the cohort (single solves run as a cohort of one).
    #: ``"object"`` is the legacy per-``Polygon`` path.  All engines produce
    #: bit-identical estimates (pinned by ``tests/core/test_solver_engines``);
    #: ``exact_complements`` runs on the object path regardless, which is the
    #: only mode that needs general disjoint complements.
    engine: str = "vector"
    #: Cohort width of the fused engine: the batch evaluation engine chunks
    #: leave-one-out cohorts into fused solves of this many targets (chunks
    #: fan out across executor workers), and the serving layer coalesces up
    #: to this many queued requests into one fused solve per executor
    #: dispatch.  Ignored by the other engines.
    fuse_width: int = 16
    #: LRU capacity of the shared circle-geometry cache (applies to each of
    #: its layers: geodesic boundaries, and planar ``(projection, circle)``
    #: constraint polygons).  Bounds the memory an online service can pin in
    #: geometry across an unbounded request stream; batch studies rarely
    #: approach it.
    circle_cache_size: int = 4096
    #: How non-convex exclusions are subtracted.  ``"masks"`` (default)
    #: folds the pre-realized convex mask cells of the exclusion (ear-clip +
    #: convex-merge decomposition) through the vectorized convex machinery,
    #: falling back to the batched Greiner-Hormann row kernel for rings the
    #: decomposition cannot cover (self-intersecting projections).  ``"gh"``
    #: always uses the batched Greiner-Hormann row kernel (vectorized
    #: intersection classification, per-piece traversal).  ``"object"`` is
    #: the legacy per-piece scalar fallback, kept as the drift-gate baseline
    #: (``benchmarks/bench_solution_time.py::test_exclusion_mask_speedup``).
    #: Both solver engines honour the mode identically: ``"masks"`` is a
    #: shared semantics change (the mask fold fragments differently than
    #: general clipping), while ``"gh"`` and ``"object"`` are bit-identical
    #: to each other -- all pinned by the engine-equivalence suites.
    nonconvex_exclusion: str = "masks"
    #: Which implementation runs the row clip kernels (the batched
    #: Sutherland-Hodgman passes and the Greiner-Hormann intersection scan).
    #: ``"auto"`` (default) uses the compiled backend
    #: (:mod:`repro.geometry.kernel_compiled`, Numba ``@njit(nogil=True)``)
    #: when the compiler is importable and falls back to the pure-NumPy
    #: path otherwise; ``"compiled"`` requests it explicitly (still falling
    #: back, with the reason recorded in
    #: :func:`repro.geometry.kernel_compiled.kernel_runtime_stats`);
    #: ``"numpy"`` pins the NumPy path.  Both backends are bit-identical
    #: operand for operand (pinned by ``tests/core/test_kernel_backend``);
    #: the compiled passes additionally release the GIL, which is what lets
    #: :class:`repro.core.batch.BatchLocalizer`'s thread executor scale
    #: fused chunks across cores.
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.nonconvex_exclusion not in ("masks", "gh", "object"):
            raise ValueError(
                f"unknown nonconvex_exclusion {self.nonconvex_exclusion!r}; "
                "expected 'masks', 'gh' or 'object'"
            )
        if self.kernel_backend not in ("auto", "compiled", "numpy"):
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                "expected 'auto', 'compiled' or 'numpy'"
            )
    #: LRU capacity of the cross-solve constraint-geometry table cache
    #: (:func:`repro.geometry.kernel.geometry_for_constraint`): derived edge
    #: tables, keyhole rings, wedge coefficients and mask cells keyed by
    #: realized constraint identity, so repeated solves of the same realized
    #: system (the serving warm path, interleaved benchmark repetitions)
    #: skip rebuilding them.  ``0`` disables the cache.  Invalidation is
    #: structural: changed measurements realize *new* polygon objects, which
    #: miss and age stale entries out.
    geometry_table_cache_size: int = 512


@dataclass(frozen=True)
class OctantConfig:
    """Feature switches and tuning parameters for the full Octant pipeline."""

    # ---- constraint extraction (Section 2.1) -------------------------- #
    #: Use per-landmark convex-hull calibration.  When False, positive
    #: constraints fall back to the conservative 2/3-speed-of-light bound and
    #: no latency-derived negative constraints are produced.
    use_calibration: bool = True
    #: Percentile (0-100) of inter-landmark latencies used as the calibration
    #: cutoff rho; beyond it the bounds blend toward the speed-of-light limit.
    calibration_cutoff_percentile: float = 75.0
    #: Latency (ms) of the fictitious sentinel data point that anchors the
    #: transition from aggressive to conservative bounds past the cutoff.
    calibration_sentinel_ms: float = 400.0
    #: Safety margin added to calibrated upper bounds, as a fraction of the
    #: bound (0.05 = 5 % slack), absorbing measurement noise unseen during
    #: calibration.
    calibration_slack: float = 0.05

    # ---- latency-derived negative constraints -------------------------- #
    #: Derive "further than r_L(d)" negative constraints from the lower hull.
    use_negative_constraints: bool = True

    # ---- queuing delay compensation (Section 2.2) ----------------------- #
    #: Estimate per-node heights and subtract them from measurements.
    use_heights: bool = True
    #: Uncertainty margin (ms) on the height-adjusted latency: positive bounds
    #: are evaluated at ``adjusted + margin`` and negative bounds at
    #: ``adjusted - margin`` so that a small error in the estimated heights
    #: cannot turn a sound constraint into one that excludes the target.
    height_margin_ms: float = 1.0
    #: Positive bounds are never tightened below this distance; it reflects
    #: the floor on how precisely a single latency measurement can place a
    #: node regardless of calibration quality.
    min_positive_bound_km: float = 30.0

    # ---- indirect routes (Section 2.3) --------------------------------- #
    #: Localize routers on the landmark-to-target paths and use them as
    #: secondary landmarks.
    use_piecewise: bool = True
    #: Minimum DNS-hint confidence for a router hint to be used directly.
    router_hint_min_confidence: float = 0.6
    #: Radius (km) of the positive constraint placed around a DNS-hinted city.
    router_hint_radius_km: float = 60.0
    #: Maximum number of secondary-landmark constraints added per target.
    max_secondary_constraints: int = 20

    # ---- uncertainty handling (Section 2.4) ----------------------------- #
    #: Use the exponentially decaying latency weights.  When False every
    #: constraint gets weight 1 and the solver degenerates toward the strict
    #: intersection of prior work.
    use_weights: bool = True
    #: Latency scale (ms) of the exponential weight decay exp(-latency/scale).
    weight_decay_ms: float = 50.0
    #: Weight floor so distant landmarks still contribute a little.
    min_constraint_weight: float = 0.02

    # ---- geographic constraints (Section 2.5) --------------------------- #
    #: Subtract oceans and uninhabited areas from the estimate.
    use_geographic_constraints: bool = True
    #: Fidelity of the geographic region catalogue: ``"coarse"`` uses the
    #: original convex rings; ``"detailed"`` uses the higher-fidelity
    #: non-convex coastline rings (``repro.network.geodata``), which exclude
    #: strictly more open water/desert while staying sound, and ride the
    #: solver's vectorized convex-mask exclusion path.
    geographic_detail: str = "coarse"
    #: Add a weak positive constraint around the WHOIS-registered city.
    use_whois: bool = False
    #: Radius (km) of the WHOIS positive constraint.
    whois_radius_km: float = 300.0
    #: Weight of the WHOIS positive constraint.
    whois_weight: float = 0.3

    # ---- measurement handling ------------------------------------------ #
    #: Number of probes whose minimum is used per pair (the dataset may hold
    #: more; extra probes are ignored).
    probes_per_measurement: int = 10
    #: Maximum number of prepared landmark sets an :class:`Octant` retains
    #: (LRU).  Bounds memory during leave-one-out studies, where every target
    #: has a distinct landmark set; whole-cohort studies should use the batch
    #: engine, which shares state instead of caching per-set results.
    prepared_cache_size: int = 8

    # ---- solver ---------------------------------------------------------- #
    solver: SolverConfig = field(default_factory=SolverConfig)

    # ---- serving resilience --------------------------------------------- #
    #: Deadlines, retries, circuit breakers and the graceful-degradation
    #: ladder of the serving tier (:mod:`repro.serving`).  Batch studies and
    #: direct pipeline use ignore it; defaults keep zero-fault serving runs
    #: bit-identical to the plain engine output.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    # ------------------------------------------------------------------ #
    # Convenience constructors for the ablation study
    # ------------------------------------------------------------------ #
    def with_overrides(self, **kwargs: object) -> "OctantConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def conservative(cls) -> "OctantConfig":
        """Speed-of-light bounds only: the sound-but-loose baseline configuration."""
        return cls(
            use_calibration=False,
            use_negative_constraints=False,
            use_heights=False,
            use_piecewise=False,
            use_geographic_constraints=False,
            use_whois=False,
        )

    @classmethod
    def latency_only(cls) -> "OctantConfig":
        """Calibrated latency constraints only, no auxiliary data sources."""
        return cls(
            use_piecewise=False,
            use_geographic_constraints=False,
            use_whois=False,
        )

    @classmethod
    def full(cls) -> "OctantConfig":
        """Everything the paper describes switched on (including WHOIS)."""
        return cls(use_whois=True)

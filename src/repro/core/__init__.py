"""Core Octant algorithms: constraints, calibration, heights, solver, facade."""

from .batch import BatchLocalizer, BatchSharedState, failed_estimate, localize_many
from .calibration import (
    CalibrationSample,
    CalibrationSet,
    LandmarkCalibration,
    build_calibration_set,
    calibrate_landmark,
)
from .config import OctantConfig, SolverConfig
from .constraints import (
    Constraint,
    ConstraintSet,
    DiskConstraint,
    DistanceConstraint,
    GeoRegionConstraint,
    PlanarConstraint,
    Polarity,
    latency_weight,
)
from .estimate import LocationEstimate
from .geo_constraints import (
    geographic_constraints,
    ocean_constraints,
    uninhabited_constraints,
    whois_constraint,
)
from .heights import (
    HeightModel,
    estimate_landmark_heights,
    estimate_target_height,
    pairwise_excess_ms,
)
from .octant import Octant, PreparedLandmarks
from .pipeline import ConstraintPipeline, PipelineStats
from .piecewise import (
    RouterLocalizer,
    RouterPosition,
    secondary_constraints_for_target,
)
from .solver import (
    SolverDiagnostics,
    WeightedRegionSolver,
    solve_systems,
    strict_intersection,
)

__all__ = [
    "OctantConfig",
    "SolverConfig",
    "Polarity",
    "PlanarConstraint",
    "Constraint",
    "DistanceConstraint",
    "DiskConstraint",
    "GeoRegionConstraint",
    "ConstraintSet",
    "latency_weight",
    "CalibrationSample",
    "LandmarkCalibration",
    "CalibrationSet",
    "calibrate_landmark",
    "build_calibration_set",
    "BatchLocalizer",
    "BatchSharedState",
    "failed_estimate",
    "localize_many",
    "HeightModel",
    "estimate_landmark_heights",
    "estimate_target_height",
    "pairwise_excess_ms",
    "geographic_constraints",
    "ocean_constraints",
    "uninhabited_constraints",
    "whois_constraint",
    "RouterPosition",
    "RouterLocalizer",
    "secondary_constraints_for_target",
    "SolverDiagnostics",
    "WeightedRegionSolver",
    "solve_systems",
    "strict_intersection",
    "LocationEstimate",
    "Octant",
    "PreparedLandmarks",
    "ConstraintPipeline",
    "PipelineStats",
]

"""The weighted geometric constraint solver -- Sections 2 and 2.4 of the paper.

The solver receives a set of planar constraints (inclusion and/or exclusion
polygons with weights) and produces the estimated location region: a weighted,
possibly disconnected set of polygon pieces.

The strict formulation -- intersect all positive regions, subtract all
negative ones -- is brittle: one erroneous constraint collapses the solution
to the empty set.  Octant instead *accumulates weight*.  The solver maintains
a collection of weighted pieces (initially a single "universe" piece of weight
zero covering the extent of all constraints).  Each constraint splits every
piece into the part that satisfies it (which gains the constraint's weight)
and the part that does not (which keeps its weight).  After all constraints
are applied, pieces are ranked by weight and the heaviest pieces are unioned
until the configured size threshold is reached -- precisely the paper's
"union of all regions, sorted by weight, such that they exceed a desired size
threshold".

Setting every weight to 1 and the selection threshold to "maximum weight only"
recovers the strict intersection semantics, which is how the ablation compares
weighted and unweighted solving.

Two engines implement the accumulation (``SolverConfig.engine``):

* ``"vector"`` (default) -- the NumPy flat-buffer kernel in
  :mod:`repro.geometry.kernel`: the piece population lives in packed
  coordinate arrays and every constraint is applied in batched vectorized
  passes with a fully-inside/fully-outside prefilter.
* ``"object"`` -- the original one-``Polygon``-at-a-time path, kept as the
  executable specification the kernel is pinned against.

Both engines produce bit-identical results on every estimate metric (point,
area, piece count, weights); ``exact_complements`` mode always runs on the
object path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..geometry import (
    BoundingBox,
    Polygon,
    Projection,
    Region,
    RegionPiece,
    intersect_polygons,
    subtract_polygons,
)
from ..geometry.kernel import FusedSolverKernel, VectorSolverKernel, subtract_cautious
from .config import SolverConfig
from .constraints import PlanarConstraint

__all__ = [
    "SolverDiagnostics",
    "WeightedRegionSolver",
    "solve_systems",
    "strict_intersection",
    "universe_polygon",
]


@dataclass
class SolverDiagnostics:
    """Book-keeping about one solver run, useful for tests and reporting."""

    constraints_applied: int = 0
    constraints_skipped: int = 0
    max_pieces_seen: int = 0
    final_piece_count: int = 0
    max_weight: float = 0.0
    selected_weight: float = 0.0
    dropped_constraints: list[str] = field(default_factory=list)

    # ---- engine / kernel instrumentation ------------------------------- #
    #: Which engine ran the solve (``"vector"`` or ``"object"``).
    engine: str = "object"
    #: Which clip-kernel backend the engine's row passes ran on
    #: (``"compiled"`` or ``"numpy"``; stays ``"numpy"`` on the object path).
    kernel_backend: str = "numpy"
    #: Total wall time of the solve call.
    solve_seconds: float = 0.0
    #: Pieces resolved by the bounding-box rejection alone (no clipping).
    prefilter_bbox: int = 0
    #: Pieces classified fully-inside a constraint (clip skipped; includes
    #: centre-distance hits, side-matrix hits and keyhole containments).
    prefilter_inside: int = 0
    #: Pieces classified fully-outside / fully-excluded (clip skipped).
    prefilter_outside: int = 0
    #: Pieces that actually went through batched clipping passes.
    pieces_clipped: int = 0
    #: Total vertex lanes processed by the batched clipper.
    vertices_clipped: int = 0
    #: Pieces that left the vectorized framework for a per-piece object
    #: boolean (Greiner-Hormann territory: non-convex inclusions, exclusion
    #: rings the convex-mask decomposition cannot cover), and their total
    #: vertex count -- the residual the mask path exists to shrink.
    fallback_pieces: int = 0
    fallback_vertices: int = 0
    #: Convex mask cells applied while folding non-convex exclusions.
    mask_cells_clipped: int = 0
    #: Cross-solve constraint-geometry table cache hits/misses (this solve).
    geometry_table_hits: int = 0
    geometry_table_misses: int = 0
    #: Wall time per kernel phase; the phases (``inclusion``, ``exclusion``,
    #: ``assemble``, ``select``) are disjoint, so their sum approximates the
    #: solve time.  The fused engine books its shared lockstep spans under
    #: the same phase names (an equal share per active cohort member per
    #: step; geometry-table lookup and the pooled rebuild land in
    #: ``assemble``), so backend regressions stay attributable per phase
    #: across engines.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    # ---- fused cohort instrumentation ---------------------------------- #
    #: How many targets shared the fused cohort this solve ran in (0 when
    #: the solve did not run fused).
    fused_cohort_targets: int = 0
    #: Pooled batched clip passes the cohort executed (cohort-level: every
    #: member of one cohort reports the same number).
    fused_pass_count: int = 0
    #: Total rows (piece instances, summed over passes) the pooled passes
    #: processed -- ``fused_rows_clipped / fused_pass_count`` is the
    #: amortization operators watch (rows per pass).
    fused_rows_clipped: int = 0
    #: Mean number of targets active per lockstep step.
    fused_targets_per_pass: float = 0.0

    def kernel_summary(self) -> dict[str, object]:
        """Compact counters for ``EstimateResult.details`` reporting."""
        from ..geometry.kernel_compiled import kernel_runtime_stats

        runtime = kernel_runtime_stats(self.kernel_backend)
        return {
            "engine": self.engine,
            "kernel_backend": self.kernel_backend,
            "prefilter_bbox": self.prefilter_bbox,
            "prefilter_inside": self.prefilter_inside,
            "prefilter_outside": self.prefilter_outside,
            "pieces_clipped": self.pieces_clipped,
            "vertices_clipped": self.vertices_clipped,
            "fallback_pieces": self.fallback_pieces,
            "fallback_vertices": self.fallback_vertices,
            "mask_cells_clipped": self.mask_cells_clipped,
            "geometry_table_hits": self.geometry_table_hits,
            "geometry_table_misses": self.geometry_table_misses,
            "fused_cohort_targets": self.fused_cohort_targets,
            "fused_pass_count": self.fused_pass_count,
            "fused_rows_clipped": self.fused_rows_clipped,
            "fused_rows_per_pass": round(
                self.fused_rows_clipped / self.fused_pass_count, 3
            )
            if self.fused_pass_count
            else 0.0,
            "fused_targets_per_pass": round(self.fused_targets_per_pass, 3),
            "phase_seconds": {k: round(v, 6) for k, v in self.phase_seconds.items()},
            # Process-wide compiled-backend runtime: JIT compile cost
            # (first call vs warm) per kernel and nogil pass counts.
            "kernel_runtime": {
                "jit": runtime["jit"],
                "fallback_reason": runtime["fallback_reason"],
                "nogil_passes": runtime["nogil_passes"],
                "kernels": runtime["kernels"],
            },
        }


def universe_polygon(
    constraints: Sequence[PlanarConstraint], margin_km: float
) -> Polygon | None:
    """The initial zero-weight universe piece: the constraint extents plus margin.

    Module-level so that both solver engines and :func:`strict_intersection`
    share one implementation instead of reaching into solver internals.
    """
    boxes: list[BoundingBox] = []
    for constraint in constraints:
        if constraint.inclusion is not None:
            boxes.append(constraint.inclusion.bounding_box())
        elif constraint.exclusion is not None:
            boxes.append(constraint.exclusion.bounding_box())
    if not boxes:
        return None
    box = boxes[0]
    for other in boxes[1:]:
        box = box.union(other)
    return Polygon.rectangle(box.expanded(margin_km))


class WeightedRegionSolver:
    """Applies weighted planar constraints and extracts the estimate region."""

    def __init__(self, config: SolverConfig | None = None):
        self.config = config or SolverConfig()
        self.diagnostics = SolverDiagnostics()

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def solve(
        self,
        constraints: Sequence[PlanarConstraint],
        projection: Projection,
        universe: Polygon | None = None,
    ) -> Region:
        """Run the weighted accumulation and return the estimated region.

        ``universe`` bounds the search; when omitted it is the bounding box of
        all constraint geometry expanded by the configured margin.
        """
        started = time.perf_counter()
        self.diagnostics = SolverDiagnostics()
        if self.config.engine == "fused" and not self.config.exact_complements:
            # A single solve is a cohort of one; results are bit-identical
            # to ``engine="vector"`` (the fused kernel drives the very same
            # per-target machinery), so the engine can be flipped globally.
            ((region, diagnostics),) = solve_systems(
                self.config, [(constraints, projection, universe)]
            )
            self.diagnostics = diagnostics
            return region
        usable = [c for c in constraints if c is not None]
        if not usable:
            return Region.empty(projection)

        base = universe or universe_polygon(usable, self.config.universe_margin_km)
        if base is None:
            return Region.empty(projection)

        # Exact-complement mode needs general disjoint complements, which only
        # the object path implements; everything else runs on the kernel.
        use_vector = self.config.engine == "vector" and not self.config.exact_complements
        if use_vector:
            self.diagnostics.engine = "vector"
            kernel = VectorSolverKernel(self.config, self.diagnostics)
            region = kernel.solve(usable, projection, base)
            self.diagnostics.solve_seconds = time.perf_counter() - started
            return region

        self.diagnostics.engine = "object"
        region = self._solve_object(usable, projection, base)
        self.diagnostics.solve_seconds = time.perf_counter() - started
        return region

    # ------------------------------------------------------------------ #
    # Object engine (the executable specification)
    # ------------------------------------------------------------------ #
    def _solve_object(
        self,
        usable: list[PlanarConstraint],
        projection: Projection,
        base: Polygon,
    ) -> Region:
        pieces: list[RegionPiece] = [RegionPiece(base, 0.0)]
        ordered = sorted(usable, key=lambda c: c.weight, reverse=True)

        for constraint in ordered:
            new_pieces = self._apply_constraint(pieces, constraint)
            if not new_pieces:
                # The constraint wiped out everything; skip it rather than
                # collapsing the solution (it is inconsistent with the
                # accumulated evidence, which outweighs it).
                self.diagnostics.constraints_skipped += 1
                self.diagnostics.dropped_constraints.append(constraint.label)
                continue
            pieces = self._prune(new_pieces)
            self.diagnostics.constraints_applied += 1
            self.diagnostics.max_pieces_seen = max(
                self.diagnostics.max_pieces_seen, len(pieces)
            )

        selected = self._select(pieces)
        self.diagnostics.final_piece_count = len(selected)
        self.diagnostics.max_weight = max((p.weight for p in pieces), default=0.0)
        self.diagnostics.selected_weight = max((p.weight for p in selected), default=0.0)
        return Region(selected, projection)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _universe_polygon(self, constraints: Sequence[PlanarConstraint]) -> Polygon | None:
        """Back-compat shim over :func:`universe_polygon`."""
        return universe_polygon(constraints, self.config.universe_margin_km)

    def _apply_constraint(
        self, pieces: Sequence[RegionPiece], constraint: PlanarConstraint
    ) -> list[RegionPiece]:
        """Split every piece by the constraint, assigning weight to the satisfied part."""
        result: list[RegionPiece] = []
        for piece in pieces:
            satisfied, unsatisfied = self._split_piece(piece.polygon, constraint)
            for polygon in satisfied:
                result.append(RegionPiece(polygon, piece.weight + constraint.weight))
            for polygon in unsatisfied:
                result.append(RegionPiece(polygon, piece.weight))
        return [p for p in result if p.area_km2() >= self.config.min_piece_area_km2]

    def _split_piece(
        self, polygon: Polygon, constraint: PlanarConstraint
    ) -> tuple[list[Polygon], list[Polygon]]:
        """Partition ``polygon`` into (satisfies constraint, does not satisfy).

        In the default (non-exact) mode the unsatisfied side is simply the
        original piece: the solver then carries the full lattice of constraint
        intersections ("all possible resulting regions via intersections", as
        the paper puts it) with overlapping lower-weight fallbacks, rather
        than maintaining disjoint complements.
        """
        inclusion = constraint.inclusion
        exclusion = constraint.exclusion
        exact = self.config.exact_complements

        if inclusion is not None:
            inside = intersect_polygons(polygon, inclusion)
            outside = subtract_polygons(polygon, inclusion) if exact else [polygon]
        else:
            inside = [polygon]
            outside = []

        if exclusion is None:
            return inside, outside

        satisfied: list[Polygon] = []
        unsatisfied: list[Polygon] = list(outside)
        use_masks = self.config.nonconvex_exclusion == "masks"
        for piece in inside:
            kept = subtract_cautious(piece, exclusion, use_masks)
            satisfied.extend(kept)
            if exact:
                unsatisfied.extend(intersect_polygons(piece, exclusion))
            elif not outside:
                unsatisfied.append(piece)
        return satisfied, unsatisfied

    @staticmethod
    def _subtract_cautious(piece: Polygon, exclusion: Polygon) -> list[Polygon]:
        """Back-compat shim over :func:`repro.geometry.kernel.subtract_cautious`."""
        return subtract_cautious(piece, exclusion)

    def _prune(self, pieces: list[RegionPiece]) -> list[RegionPiece]:
        """Bound the piece population: drop slivers, keep the heaviest pieces."""
        viable = [p for p in pieces if p.area_km2() >= self.config.min_piece_area_km2]
        if len(viable) <= self.config.max_pieces:
            return viable
        ranked = sorted(viable, key=lambda p: (p.weight, p.area_km2()), reverse=True)
        return ranked[: self.config.max_pieces]

    def _select(self, pieces: Sequence[RegionPiece]) -> list[RegionPiece]:
        """Pick the heaviest pieces until the target region size is reached."""
        if not pieces:
            return []
        ranked = sorted(pieces, key=lambda p: (p.weight, -p.area_km2()), reverse=True)
        selected: list[RegionPiece] = []
        accumulated = 0.0
        top_weight = ranked[0].weight
        for piece in ranked:
            if selected and accumulated >= self.config.target_region_area_km2:
                break
            if selected and piece.weight < top_weight and accumulated > 0:
                # Once the area threshold logic moves past the top weight
                # class, only add lighter pieces while the region is still
                # too small to be meaningful.
                if accumulated >= self.config.target_region_area_km2 / 4.0:
                    break
            selected.append(piece)
            accumulated += piece.area_km2()
        return selected


def solve_systems(
    config: SolverConfig | None,
    systems: Sequence[tuple],
) -> list[tuple[Region, SolverDiagnostics]]:
    """Solve many constraint systems, fused into one cohort when configured.

    ``systems`` holds ``(constraints, projection)`` or
    ``(constraints, projection, universe)`` per target.  With
    ``engine="fused"`` (and not ``exact_complements``) every non-degenerate
    system advances through one :class:`FusedSolverKernel` lockstep run --
    the k-th constraint of every target applied in shared batched passes;
    any other engine solves each system independently.  Returns one
    ``(region, diagnostics)`` pair per system, in input order; results are
    bit-identical to solving each system alone.
    """
    config = config or SolverConfig()
    results: list[tuple[Region, SolverDiagnostics] | None] = [None] * len(systems)
    use_fused = config.engine == "fused" and not config.exact_complements
    fused_jobs: list[tuple[int, list, object, Polygon, SolverDiagnostics, float]] = []
    for i, system in enumerate(systems):
        constraints, projection = system[0], system[1]
        universe = system[2] if len(system) > 2 else None
        if not use_fused:
            solver = WeightedRegionSolver(config)
            region = solver.solve(constraints, projection, universe)
            results[i] = (region, solver.diagnostics)
            continue
        started = time.perf_counter()
        diagnostics = SolverDiagnostics(engine="fused")
        usable = [c for c in constraints if c is not None]
        base = (
            universe or universe_polygon(usable, config.universe_margin_km)
            if usable
            else None
        )
        if base is None:
            diagnostics.solve_seconds = time.perf_counter() - started
            results[i] = (Region.empty(projection), diagnostics)
            continue
        fused_jobs.append((i, usable, projection, base, diagnostics, started))

    if fused_jobs:
        kernel = FusedSolverKernel(config)
        regions = kernel.solve_many(
            [(usable, projection, base, diagnostics)
             for (_i, usable, projection, base, diagnostics, _t) in fused_jobs]
        )
        finished = time.perf_counter()
        for (i, _u, _p, _b, diagnostics, started), region in zip(fused_jobs, regions):
            # The cohort solve is one shared span; each member records the
            # full wall time (amortized cost is what the benchmarks divide
            # back out).
            diagnostics.solve_seconds = finished - started
            results[i] = (region, diagnostics)
    return results  # type: ignore[return-value]


def strict_intersection(
    constraints: Iterable[PlanarConstraint],
    projection: Projection,
    universe: Polygon | None = None,
    min_piece_area_km2: float = 1.0,
) -> Region:
    """The brittle textbook solution: intersect positives, subtract negatives.

    Provided both as the degenerate mode the ablation study compares against
    and as the behaviour of prior region-based work (GeoLim) inside the Octant
    machinery.  Returns an empty region as soon as the constraints conflict.
    """
    usable = [c for c in constraints if c is not None]
    if not usable:
        return Region.empty(projection)

    base = universe or universe_polygon(
        usable, SolverConfig().universe_margin_km
    )
    if base is None:
        return Region.empty(projection)

    current: list[Polygon] = [base]
    for constraint in usable:
        next_pieces: list[Polygon] = []
        for piece in current:
            parts = [piece]
            if constraint.inclusion is not None:
                parts = [
                    p
                    for part in parts
                    for p in intersect_polygons(part, constraint.inclusion)
                ]
            if constraint.exclusion is not None:
                parts = [
                    p
                    for part in parts
                    for p in subtract_polygons(part, constraint.exclusion)
                ]
            next_pieces.extend(parts)
        # Filter slivers in km^2, the same unit the weighted solver's
        # _apply_constraint/_prune use, so the two solution strategies apply
        # one consistent physical threshold.
        current = [p for p in next_pieces if p.area_km2() >= min_piece_area_km2]
        if not current:
            return Region.empty(projection)
    return Region([RegionPiece(p, 1.0) for p in current], projection)

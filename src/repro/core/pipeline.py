"""The staged constraint pipeline: assembly -> planarization -> solve.

:class:`Octant.localize` used to run one monolithic flow; this module factors
it into three explicit, independently reusable stages so the batch engine and
the online serving front-end (:mod:`repro.serving`) drive exactly the same
machinery:

1. **Assembly** (:meth:`ConstraintPipeline.assemble`) -- turn the target's
   measurements plus the prepared landmark state into a
   :class:`~repro.core.constraints.ConstraintSet`.  The stage caches the
   target-independent geographic constraints (they depend only on the
   configuration).
2. **Planarization** (:meth:`ConstraintPipeline.planarize`) -- realize every
   constraint as planar polygons under the localization's projection.  The
   expensive geometry (geodesic circle boundaries, projected disk and ring
   polygons) is memoized in the shared
   :class:`~repro.geometry.circles.CircleCache` keyed
   ``(projection_key, circle_key)``, so a repeated-target request under the
   same projection re-uses the clipped planar geometry instead of
   re-projecting it.  Cache hits return the very polygons a miss would have
   constructed, keeping cached and uncached runs bit-identical (pinned by
   ``tests/core/test_solver_engines.py``).
3. **Solve** (:meth:`ConstraintPipeline.solve`) -- the weighted accumulation
   through :class:`~repro.core.solver.WeightedRegionSolver` (vector kernel by
   default).

Each stage records its wall time in :class:`PipelineStats`; the serving layer
surfaces those together with the geometry-cache hit/miss counters as its
warm/cold statistics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from .._lru import BoundedLRU
from ..resilience.deadline import checkpoint
from ..geometry import CircleCache, Projection, Region, rtt_ms_to_max_distance_km
from ..network.dataset import MeasurementDataset
from ..network.dns import UndnsParser
from .config import OctantConfig
from .constraints import (
    Constraint,
    ConstraintSet,
    DiskConstraint,
    DistanceConstraint,
    GeoRegionConstraint,
    PlanarConstraint,
    latency_weight,
)
from .geo_constraints import geographic_constraints, whois_constraint
from .piecewise import secondary_constraints_for_target
from .solver import SolverDiagnostics, WeightedRegionSolver, solve_systems

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .octant import PreparedLandmarks

__all__ = ["ConstraintPipeline", "PipelineStats"]


@dataclass
class PipelineStats:
    """Accumulated per-stage wall time and run counts for one pipeline."""

    runs: int = 0
    assemble_seconds: float = 0.0
    planarize_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Pre-solve derivation stages driven by the batch engine; the scalar
    #: facade leaves them at zero (its derivations happen inside prepare()).
    heights_seconds: float = 0.0
    calibration_seconds: float = 0.0
    piecewise_seconds: float = 0.0
    constraints_assembled: int = 0
    constraints_planarized: int = 0
    planar_memo_hits: int = 0
    planar_memo_misses: int = 0
    #: Cross-solve constraint-geometry table cache traffic of this
    #: pipeline's solves (see ``repro.geometry.kernel``); repeated-target
    #: serving should be hit-dominated once warm.
    geometry_table_hits: int = 0
    geometry_table_misses: int = 0

    def merge(self, other: "PipelineStats") -> None:
        """Fold another pipeline's accumulated counters into this one.

        The serving layer retires one pipeline per dataset snapshot; merging
        keeps lifetime totals across swaps.
        """
        self.runs += other.runs
        self.assemble_seconds += other.assemble_seconds
        self.planarize_seconds += other.planarize_seconds
        self.solve_seconds += other.solve_seconds
        self.heights_seconds += other.heights_seconds
        self.calibration_seconds += other.calibration_seconds
        self.piecewise_seconds += other.piecewise_seconds
        self.constraints_assembled += other.constraints_assembled
        self.constraints_planarized += other.constraints_planarized
        self.planar_memo_hits += other.planar_memo_hits
        self.planar_memo_misses += other.planar_memo_misses
        self.geometry_table_hits += other.geometry_table_hits
        self.geometry_table_misses += other.geometry_table_misses

    def snapshot(self) -> dict[str, float]:
        """A flat dict view for reporting (serving stats, benchmarks)."""
        return {
            "runs": self.runs,
            "assemble_seconds": round(self.assemble_seconds, 6),
            "planarize_seconds": round(self.planarize_seconds, 6),
            "solve_seconds": round(self.solve_seconds, 6),
            "heights_seconds": round(self.heights_seconds, 6),
            "calibration_seconds": round(self.calibration_seconds, 6),
            "piecewise_seconds": round(self.piecewise_seconds, 6),
            "constraints_assembled": self.constraints_assembled,
            "constraints_planarized": self.constraints_planarized,
            "planar_memo_hits": self.planar_memo_hits,
            "planar_memo_misses": self.planar_memo_misses,
            "geometry_table_hits": self.geometry_table_hits,
            "geometry_table_misses": self.geometry_table_misses,
        }


class ConstraintPipeline:
    """Reusable staged localization pipeline over one dataset + configuration.

    The pipeline is deliberately free of per-target state: everything a stage
    needs arrives as arguments, and everything it caches
    (:attr:`circle_cache`, the geographic constraint list) is either
    content-addressed or target-independent.  One instance can therefore be
    shared by the sequential facade, the batch engine's thread workers and
    the serving executor concurrently.
    """

    def __init__(
        self,
        dataset: MeasurementDataset,
        config: OctantConfig | None = None,
        parser: UndnsParser | None = None,
        circle_cache: CircleCache | None = None,
        planar_memo: BoundedLRU[list[PlanarConstraint]] | None = None,
    ):
        self.dataset = dataset
        self.config = config or OctantConfig()
        self.parser = parser or UndnsParser()
        # Geodesic boundaries and planar (projection, circle) polygons are
        # projection/content addressed, so one cache serves every target this
        # pipeline localizes; the batch engine and the serving layer share it
        # across the whole cohort (see BatchSharedState / LocalizationService).
        self.circle_cache = (
            circle_cache
            if circle_cache is not None
            else CircleCache(capacity=self.config.solver.circle_cache_size)
        )
        self._geo_constraints: list[Constraint] | None = None
        # Stage-2 memo: the fully realized planar constraint list keyed by
        # (projection key, the ordered constraint descriptions themselves).
        # Constraints are frozen dataclasses, so equal measurement state
        # yields equal keys; a repeated-target request at the same dataset
        # version therefore skips every to_planar call, not just the circle
        # geometry underneath them.  Content addressing also makes the memo
        # safe to share across pipelines over *different* dataset versions
        # (changed measurements produce different constraints, hence
        # different keys), so the serving layer passes one service-lifetime
        # ``planar_memo`` through every post-ingest rebuild, like the circle
        # cache above.
        self._planar_memo: BoundedLRU[list[PlanarConstraint]] = (
            planar_memo if planar_memo is not None else BoundedLRU(256)
        )
        self.stats = PipelineStats()
        # Counter accumulation is read-modify-write; the batch engine's
        # scaled thread executor drives one shared pipeline from many
        # threads concurrently (the compiled clip backend releases the GIL,
        # so chunk solves genuinely overlap), and unlocked ``+=`` would
        # quietly lose updates.  Every stats mutation takes this lock; the
        # stage caches themselves are lock-free by design (BoundedLRU
        # tolerates races, CircleCache is content-addressed).
        self._stats_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_stats_lock", None)  # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Stage 1: constraint assembly
    # ------------------------------------------------------------------ #
    def assemble(
        self,
        target_id: str,
        prepared: "PreparedLandmarks",
        target_height_ms: float = 0.0,
    ) -> ConstraintSet:
        """Assemble every constraint for one target under the configuration."""
        checkpoint("assemble", target_id)
        started = time.perf_counter()
        cfg = self.config
        constraints = ConstraintSet()

        margin = cfg.height_margin_ms if cfg.use_heights else 0.0
        for landmark_id in prepared.landmark_ids:
            rtt = self.dataset.min_rtt_ms(landmark_id, target_id)
            if rtt is None:
                continue
            adjusted = rtt
            if prepared.heights is not None:
                adjusted = max(
                    0.5, rtt - prepared.heights.height(landmark_id) - target_height_ms
                )

            calibration = prepared.calibrations.get(landmark_id)
            if cfg.use_calibration and calibration is not None:
                # Evaluate the positive bound a margin above and the negative
                # bound a margin below the adjusted latency, so errors in the
                # height estimates cannot turn a sound constraint unsound.
                max_km = calibration.max_distance_km(adjusted + margin)
                min_km = calibration.min_distance_km(max(0.0, adjusted - margin))
                if not cfg.use_negative_constraints:
                    min_km = 0.0
            else:
                max_km = rtt_ms_to_max_distance_km(adjusted + margin)
                min_km = 0.0

            weight = 1.0
            if cfg.use_weights:
                weight = latency_weight(
                    adjusted, cfg.weight_decay_ms, cfg.min_constraint_weight
                )
            max_km = max(max_km, cfg.min_positive_bound_km)
            constraints.add(
                DistanceConstraint(
                    landmark_id=landmark_id,
                    landmark_location=prepared.locations[landmark_id],
                    max_km=max_km,
                    min_km=max(0.0, min(min_km, max_km * 0.98)),
                    weight=weight,
                    circle_segments=cfg.solver.circle_segments,
                    geometry_cache=self.circle_cache,
                )
            )

        if self._geo_constraints is None:
            # Geographic constraints depend only on the configuration, never
            # on the target; build them once per pipeline instance.
            self._geo_constraints = list(
                geographic_constraints(cfg, cache=self.circle_cache)
            )
        constraints.extend(self._geo_constraints)
        constraints.add(
            whois_constraint(self.dataset, target_id, cfg, cache=self.circle_cache)
        )

        if cfg.use_piecewise and prepared.router_positions:
            constraints.extend(
                secondary_constraints_for_target(
                    target_id,
                    list(prepared.landmark_ids),
                    self.dataset,
                    prepared.router_positions,
                    prepared.calibrations,
                    cfg,
                    prepared.heights,
                    target_height_ms,
                    geometry_cache=self.circle_cache,
                )
            )
        with self._stats_lock:
            self.stats.assemble_seconds += time.perf_counter() - started
            self.stats.constraints_assembled += len(constraints)
        return constraints

    def assemble_many(
        self,
        items: Sequence[tuple[str, "PreparedLandmarks", float]],
    ) -> list[ConstraintSet]:
        """Assemble constraint sets for a cohort of targets, in input order.

        Assembly is measurement gathering plus constraint-object construction;
        the shared work (the geographic constraint list) is already memoized
        per pipeline, so the cohort form is a straight loop kept for stage
        symmetry — timings accumulate per call into :attr:`stats`.
        """
        return [
            self.assemble(target_id, prepared, target_height_ms)
            for target_id, prepared, target_height_ms in items
        ]

    # ------------------------------------------------------------------ #
    # Stage 2: projection planarization
    # ------------------------------------------------------------------ #
    def planarize(
        self,
        constraints: ConstraintSet,
        projection: Projection,
        key: object = None,
    ) -> list[PlanarConstraint]:
        """Realize the constraints as planar geometry, heaviest first.

        Constraints that degenerate to nothing under the projection (an
        erosion that comes out empty) are dropped, matching what the solver
        would otherwise skip.  A memo hit returns the realized list built by
        an earlier identical request (same projection, equal constraint
        descriptions); the planar constraints are immutable, so the hit is
        bit-identical to re-realizing them.  ``key`` labels the resilience
        checkpoint with the unit of work (typically the target id).
        """
        checkpoint("planarize", key)
        started = time.perf_counter()
        ordered = constraints.sorted_by_weight()
        key = self._memo_key(ordered, projection)
        if key is not None:
            cached = self._planar_memo.get(key)
            if cached is not None:
                with self._stats_lock:
                    self.stats.planar_memo_hits += 1
                    self.stats.planarize_seconds += time.perf_counter() - started
                return list(cached)
            with self._stats_lock:
                self.stats.planar_memo_misses += 1
        planar = [p for c in ordered if (p := c.to_planar(projection)) is not None]
        if key is not None:
            self._planar_memo.put(key, list(planar))
        with self._stats_lock:
            self.stats.planarize_seconds += time.perf_counter() - started
            self.stats.constraints_planarized += len(planar)
        return planar

    def planarize_many(
        self,
        systems: Sequence[tuple[ConstraintSet, Projection]],
    ) -> list[list[PlanarConstraint]]:
        """Planarize a cohort of constraint systems with pooled geometry.

        Before realizing anything, every system that will miss the planar
        memo contributes its disk and ring realizations to one pooled
        :class:`~repro.geometry.circles.CircleCache` warm pass (a single
        batched boundary computation plus one projection pass per working
        plane, instead of per-disk scalar loops).  Each system is then
        planarized by the scalar :meth:`planarize`, which finds every circle
        already cached — results are bitwise identical to per-target calls
        because the warm path realizes exactly the scalar geometry.
        """
        started = time.perf_counter()
        boundary_jobs: dict[int, tuple[CircleCache, list]] = {}
        planar_jobs: dict[tuple[int, tuple], tuple[CircleCache, Projection, list]] = {}
        ring_jobs: dict[tuple[int, tuple, tuple], tuple[CircleCache, Projection, tuple]] = {}
        for constraints, projection in systems:
            ordered = constraints.sorted_by_weight()
            key = self._memo_key(ordered, projection)
            if key is not None and self._planar_memo.get(key) is not None:
                continue  # planarize() will take the memo hit
            projection_key = projection.cache_key()
            for constraint in ordered:
                cache = getattr(constraint, "geometry_cache", None)
                if cache is None:
                    continue
                specs = []
                if isinstance(constraint, DistanceConstraint):
                    specs.append(
                        (constraint.landmark_location, constraint.max_km, constraint.circle_segments)
                    )
                    if constraint.min_km > 0:
                        specs.append(
                            (constraint.landmark_location, constraint.min_km, constraint.circle_segments)
                        )
                elif isinstance(constraint, DiskConstraint):
                    specs.append(
                        (constraint.center, constraint.radius_km, constraint.circle_segments)
                    )
                elif isinstance(constraint, GeoRegionConstraint) and projection_key is not None:
                    ring = tuple(constraint.ring)
                    ring_jobs.setdefault(
                        (id(cache), projection_key, ring), (cache, projection, ring)
                    )
                    continue
                if not specs:
                    continue
                boundary_jobs.setdefault(id(cache), (cache, []))[1].extend(specs)
                if projection_key is not None:
                    planar_jobs.setdefault(
                        (id(cache), projection_key), (cache, projection, [])
                    )[2].extend(specs)
        for cache, specs in boundary_jobs.values():
            cache.warm_boundaries(specs)
        for cache, projection, specs in planar_jobs.values():
            cache.warm_planar_disks(projection, specs)
        for cache, projection, ring in ring_jobs.values():
            cache.planar_ring(ring, projection)
        with self._stats_lock:
            self.stats.planarize_seconds += time.perf_counter() - started

        return [
            self.planarize(constraints, projection)
            for constraints, projection in systems
        ]

    @staticmethod
    def _memo_key(
        ordered: Sequence[Constraint], projection: Projection
    ) -> tuple | None:
        """Memo key for a realized constraint system, or ``None`` if unkeyable."""
        projection_key = projection.cache_key()
        if projection_key is None:
            return None
        key = (projection_key, tuple(ordered))
        try:
            hash(key)  # tuple() never raises; hashing the elements can
        except TypeError:  # a custom unhashable constraint type
            return None
        return key

    # ------------------------------------------------------------------ #
    # Stage 3: kernel solve
    # ------------------------------------------------------------------ #
    def solve(
        self,
        planar: Sequence[PlanarConstraint],
        projection: Projection,
        engine: str | None = None,
        key: object = None,
    ) -> tuple[Region, SolverDiagnostics]:
        """Run the weighted accumulation and return region + diagnostics.

        Dispatches on ``SolverConfig.engine`` (a ``"fused"`` engine solves a
        single system as a cohort of one); cohort callers should prefer
        :meth:`solve_many`, which amortizes the fused kernel's batched
        passes across every system of the cohort.  ``engine`` overrides the
        configured engine for this solve only -- the degradation ladder uses
        it to retry a failed solve on a lower rung without rebuilding the
        pipeline (all engines are bit-identical, so a fallback answer equals
        the primary one).
        """
        checkpoint("solve", key)
        started = time.perf_counter()
        config = self.config.solver
        if engine is not None and engine != config.engine:
            config = replace(config, engine=engine)
        solver = WeightedRegionSolver(config)
        region = solver.solve(planar, projection)
        with self._stats_lock:
            self.stats.solve_seconds += time.perf_counter() - started
            self.stats.geometry_table_hits += solver.diagnostics.geometry_table_hits
            self.stats.geometry_table_misses += (
                solver.diagnostics.geometry_table_misses
            )
        return region, solver.diagnostics

    def solve_many(
        self,
        systems: Sequence[tuple[Sequence[PlanarConstraint], Projection]],
        engine: str | None = None,
        key: object = None,
    ) -> list[tuple[Region, SolverDiagnostics]]:
        """Solve a cohort of realized constraint systems.

        Under ``engine="fused"`` the whole cohort advances in lockstep
        through one :class:`~repro.geometry.kernel.FusedSolverKernel` run
        (single NumPy passes clip every target's pieces at once); other
        engines solve each system independently.  Results are bit-identical
        to calling :meth:`solve` per system, in input order.  ``engine``
        overrides the configured engine for this cohort only (degradation
        ladder); ``key`` labels the resilience checkpoint.
        """
        checkpoint("solve", key)
        started = time.perf_counter()
        config = self.config.solver
        if engine is not None and engine != config.engine:
            config = replace(config, engine=engine)
        results = solve_systems(config, list(systems))
        with self._stats_lock:
            self.stats.solve_seconds += time.perf_counter() - started
            for _region, diagnostics in results:
                self.stats.geometry_table_hits += diagnostics.geometry_table_hits
                self.stats.geometry_table_misses += diagnostics.geometry_table_misses
        return results

    # ------------------------------------------------------------------ #
    # Full pipeline
    # ------------------------------------------------------------------ #
    def run(
        self,
        target_id: str,
        prepared: "PreparedLandmarks",
        target_height_ms: float,
        projection: Projection,
        engine: str | None = None,
    ) -> tuple[Region, SolverDiagnostics]:
        """Assemble, planarize and solve one target's constraint system."""
        constraints = self.assemble(target_id, prepared, target_height_ms)
        planar = self.planarize(constraints, projection, key=target_id)
        region, diagnostics = self.solve(planar, projection, engine=engine, key=target_id)
        self.count_runs(1)
        return region, diagnostics

    def count_runs(self, n: int) -> None:
        """Thread-safe run-counter bump (batch chunk solves share one pipeline)."""
        with self._stats_lock:
            self.stats.runs += n

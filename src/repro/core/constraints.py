"""Constraint model: regions where the target can or cannot be.

A constraint pairs a region on the globe with a weight expressing how much
the system believes it (Section 2 and 2.4 of the paper).  Constraints come in
two polarities:

* **positive** -- the target lies inside the region,
* **negative** -- the target lies outside the region.

Concrete constraint types cover the sources the paper uses:

* :class:`DistanceConstraint` -- an annulus ``r <= distance(L, target) <= R``
  around a landmark whose own position is either a point (primary landmark)
  or a region (secondary landmark).
* :class:`GeoRegionConstraint` -- an arbitrary geographic polygon, used for
  oceans and uninhabited areas (negative) or zipcode neighbourhoods
  (positive).
* :class:`DiskConstraint` -- a plain disk around a point, used for DNS-hinted
  router positions and WHOIS-registered cities.

Constraints are *descriptions*; they are turned into planar polygons only at
solve time, under the projection chosen for the particular localization, via
:meth:`Constraint.to_planar`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..geometry import (
    CircleCache,
    GeoPoint,
    Polygon,
    Projection,
    Region,
    dilate_polygon,
    disk_polygon,
    erode_polygon,
    polygon_from_geopoints,
)

__all__ = [
    "Polarity",
    "PlanarConstraint",
    "Constraint",
    "DistanceConstraint",
    "DiskConstraint",
    "GeoRegionConstraint",
    "ConstraintSet",
    "latency_weight",
]


class Polarity(enum.Enum):
    """Whether a constraint asserts presence inside or absence from its region."""

    POSITIVE = "positive"
    NEGATIVE = "negative"


@dataclass(frozen=True)
class PlanarConstraint:
    """A constraint realized as planar geometry under a specific projection.

    ``inclusion`` is the polygon the target should be inside (``None`` for a
    purely negative constraint), ``exclusion`` the polygon it should be
    outside (``None`` when there is no negative component).  A calibrated
    latency measurement produces both at once: the outer disk as inclusion and
    the inner disk as exclusion.
    """

    inclusion: Polygon | None
    exclusion: Polygon | None
    weight: float
    label: str

    def __post_init__(self) -> None:
        if self.inclusion is None and self.exclusion is None:
            raise ValueError("a planar constraint needs an inclusion or an exclusion")
        if self.weight < 0:
            raise ValueError(f"constraint weight must be non-negative, got {self.weight!r}")


class Constraint:
    """Base class for location constraints."""

    #: Human-readable label identifying the source of the constraint.
    label: str
    #: Strength of the belief in this constraint (Section 2.4).
    weight: float

    def to_planar(self, projection: Projection) -> PlanarConstraint | None:
        """Realize the constraint as planar polygons under ``projection``.

        Returns ``None`` when the constraint degenerates to nothing under the
        given configuration (for example an erosion that comes out empty).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class DistanceConstraint(Constraint):
    """Distance bounds from a landmark: ``min_km <= dist(landmark, target) <= max_km``.

    For a primary landmark ``landmark_region`` is ``None`` and the bounds are
    measured from ``landmark_location``.  For a secondary landmark the
    landmark's own position is uncertain: ``landmark_region`` holds its
    estimated location region (in the *same projection* the constraint will be
    realized under), and the bounds are dilated/eroded accordingly so the
    resulting constraint stays sound (Section 2 of the paper).
    """

    landmark_id: str
    landmark_location: GeoPoint
    max_km: float
    min_km: float = 0.0
    weight: float = 1.0
    label: str = ""
    landmark_region: Region | None = None
    circle_segments: int = 48
    #: Optional shared cache of geodesic circle boundaries (see
    #: :class:`~repro.geometry.circles.CircleCache`); excluded from equality
    #: because it is plumbing, not part of the constraint's meaning.
    geometry_cache: CircleCache | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_km <= 0:
            raise ValueError(f"max_km must be positive, got {self.max_km!r}")
        if self.min_km < 0:
            raise ValueError(f"min_km must be non-negative, got {self.min_km!r}")
        if self.min_km >= self.max_km:
            raise ValueError(
                f"min_km must be smaller than max_km, got {self.min_km!r} >= {self.max_km!r}"
            )
        if not self.label:
            object.__setattr__(self, "label", f"latency:{self.landmark_id}")

    def to_planar(self, projection: Projection) -> PlanarConstraint | None:
        outer = disk_polygon(
            self.landmark_location,
            self.max_km,
            projection,
            self.circle_segments,
            cache=self.geometry_cache,
        )
        inner: Polygon | None = None
        if self.min_km > 0:
            inner = disk_polygon(
                self.landmark_location,
                self.min_km,
                projection,
                self.circle_segments,
                cache=self.geometry_cache,
            )

        if self.landmark_region is not None and not self.landmark_region.is_empty():
            # Secondary landmark: the positive bound grows by the landmark's
            # own positional uncertainty (Minkowski dilation) and the negative
            # bound shrinks by it (erosion), keeping both sides sound.
            pieces = self.landmark_region.pieces
            base = max(pieces, key=lambda p: p.weighted_area()).polygon
            uncertainty = base.max_distance_to_point(base.centroid())
            outer = dilate_polygon(base, self.max_km, segments=self.circle_segments // 2)
            if inner is not None:
                shrunk_km = self.min_km - uncertainty
                if shrunk_km <= 0:
                    inner = None
                else:
                    inner = erode_polygon(
                        disk_polygon(
                            self.landmark_location,
                            self.min_km,
                            projection,
                            self.circle_segments,
                            cache=self.geometry_cache,
                        ),
                        uncertainty,
                    )
        return PlanarConstraint(
            inclusion=outer, exclusion=inner, weight=self.weight, label=self.label
        )


@dataclass(frozen=True)
class DiskConstraint(Constraint):
    """A plain disk around a geographic point, positive or negative."""

    center: GeoPoint
    radius_km: float
    polarity: Polarity = Polarity.POSITIVE
    weight: float = 1.0
    label: str = "disk"
    circle_segments: int = 48
    geometry_cache: CircleCache | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise ValueError(f"radius_km must be positive, got {self.radius_km!r}")

    def to_planar(self, projection: Projection) -> PlanarConstraint | None:
        disk = disk_polygon(
            self.center,
            self.radius_km,
            projection,
            self.circle_segments,
            cache=self.geometry_cache,
        )
        if self.polarity is Polarity.POSITIVE:
            return PlanarConstraint(disk, None, self.weight, self.label)
        return PlanarConstraint(None, disk, self.weight, self.label)


@dataclass(frozen=True)
class GeoRegionConstraint(Constraint):
    """An arbitrary geographic polygon used as a constraint region."""

    ring: tuple[GeoPoint, ...]
    polarity: Polarity = Polarity.NEGATIVE
    weight: float = 1.0
    label: str = "region"
    geometry_cache: CircleCache | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.ring) < 3:
            raise ValueError("a region constraint needs at least 3 boundary points")

    def to_planar(self, projection: Projection) -> PlanarConstraint | None:
        polygon = polygon_from_geopoints(
            list(self.ring), projection, cache=self.geometry_cache
        ).ensure_ccw()
        if self.polarity is Polarity.POSITIVE:
            return PlanarConstraint(polygon, None, self.weight, self.label)
        return PlanarConstraint(None, polygon, self.weight, self.label)


class ConstraintSet:
    """An ordered collection of constraints feeding one localization."""

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self._constraints: list[Constraint] = list(constraints)

    def add(self, constraint: Constraint | None) -> None:
        """Append a constraint; ``None`` is ignored to simplify call sites."""
        if constraint is not None:
            self._constraints.append(constraint)

    def extend(self, constraints: Iterable[Constraint]) -> None:
        """Append several constraints."""
        for constraint in constraints:
            self.add(constraint)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    @property
    def constraints(self) -> list[Constraint]:
        """The constraints in insertion order (copy)."""
        return list(self._constraints)

    def sorted_by_weight(self) -> list[Constraint]:
        """Constraints sorted by decreasing weight (the solver's processing order)."""
        return sorted(self._constraints, key=lambda c: c.weight, reverse=True)

    def total_weight(self) -> float:
        """Sum of all constraint weights."""
        return sum(c.weight for c in self._constraints)

    def distance_constraints(self) -> list["DistanceConstraint"]:
        """Only the latency-derived distance constraints."""
        return [c for c in self._constraints if isinstance(c, DistanceConstraint)]

    def geographic_constraints(self) -> list[Constraint]:
        """Only the non-latency constraints (geographic, WHOIS, DNS hints)."""
        return [c for c in self._constraints if not isinstance(c, DistanceConstraint)]


def latency_weight(
    latency_ms: float,
    decay_ms: float = 50.0,
    floor: float = 0.02,
) -> float:
    """The paper's exponentially decaying confidence weight for a latency.

    Constraints from nearby (low-latency) landmarks are more trustworthy than
    those from distant ones; the weight decays as ``exp(-latency / decay)``
    and is clamped below by ``floor`` so distant landmarks still contribute.
    """
    if latency_ms < 0:
        raise ValueError(f"latency must be non-negative, got {latency_ms!r}")
    if decay_ms <= 0:
        raise ValueError(f"decay_ms must be positive, got {decay_ms!r}")
    return max(floor, math.exp(-latency_ms / decay_ms))

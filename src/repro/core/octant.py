"""The Octant facade: end-to-end localization of a target host.

:class:`Octant` wires together every mechanism of the framework --
calibration, height estimation, latency constraints (positive and negative),
geographic constraints, WHOIS hints, piecewise router localization and the
weighted geometric solver -- behind two calls::

    octant = Octant(dataset)                  # measurement data in, nothing probed
    estimate = octant.localize("host-sea")    # estimated region + point estimate

The landmark set defaults to every host in the dataset except the target, the
leave-one-out methodology of the paper's evaluation.  All per-landmark state
(heights, calibrations, router positions) is computed from that landmark set
only, so information about the target never leaks into its own localization.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..geometry import (
    CircleCache,
    GeoPoint,
    Projection,
    projection_for_points,
    rtt_ms_to_max_distance_km,
)
from ..network.dataset import MeasurementDataset
from ..network.dns import UndnsParser
from .calibration import CalibrationSet, build_calibration_set
from .config import OctantConfig
from .constraints import Constraint, ConstraintSet, DistanceConstraint, latency_weight
from .estimate import LocationEstimate
from .geo_constraints import geographic_constraints, whois_constraint
from .heights import HeightModel, estimate_landmark_heights, estimate_target_height
from .piecewise import RouterLocalizer, RouterPosition, secondary_constraints_for_target
from .solver import WeightedRegionSolver

__all__ = ["Octant", "PreparedLandmarks", "pseudo_target_heights"]


def pseudo_target_heights(
    landmark_ids: Sequence[str],
    locations: Mapping[str, GeoPoint],
    heights: HeightModel,
    rtt_ms: Callable[[str, str], float | None],
) -> dict[str, float]:
    """Estimate every landmark's height *as if it were a target*.

    Calibration samples must be adjusted exactly the way target measurements
    will be adjusted at localization time, otherwise the calibrated envelope
    is systematically offset from the points it is later evaluated on.  A
    target's height is estimated from its measurements alone (Section 2.2),
    so for calibration each peer landmark is put through the same estimator,
    ignoring its known position.

    ``rtt_ms`` is a measurement lookup (live dataset accessor or the cached
    full-cohort matrix); the batch engine applies its leave-one-out mask by
    passing an already-masked ``landmark_ids`` roster.
    """
    pseudo: dict[str, float] = {}
    for peer in landmark_ids:
        rtts = {
            lid: rtt
            for lid in landmark_ids
            if lid != peer and (rtt := rtt_ms(lid, peer)) is not None
        }
        if len(rtts) < 3:
            pseudo[peer] = heights.height(peer)
            continue
        height, _ = estimate_target_height(rtts, locations, heights)
        pseudo[peer] = height
    return pseudo


@dataclass
class PreparedLandmarks:
    """Per-landmark state derived from inter-landmark measurements only."""

    landmark_ids: tuple[str, ...]
    locations: dict[str, GeoPoint]
    heights: HeightModel | None
    calibrations: CalibrationSet
    router_positions: dict[str, RouterPosition]


class Octant:
    """Localizes targets from a :class:`~repro.network.dataset.MeasurementDataset`."""

    def __init__(
        self,
        dataset: MeasurementDataset,
        config: OctantConfig | None = None,
        parser: UndnsParser | None = None,
    ):
        self.dataset = dataset
        self.config = config or OctantConfig()
        self.parser = parser or UndnsParser()
        # LRU over landmark sets: leave-one-out evaluation visits n distinct
        # sets, and an unbounded mapping would retain one full
        # PreparedLandmarks (heights, calibrations, router positions) per
        # target.  Use repro.core.batch.BatchLocalizer for whole-cohort
        # studies; this cache only amortizes repeated localizations against
        # the same few landmark sets.
        self._prepared: OrderedDict[tuple[str, ...], PreparedLandmarks] = OrderedDict()
        self._geo_constraints: list[Constraint] | None = None
        # Geodesic circle boundaries are projection-independent, so one
        # cache serves every target this instance localizes; the batch
        # engine shares it across the whole cohort (see BatchSharedState).
        self.circle_cache = CircleCache()

    # ------------------------------------------------------------------ #
    # Preparation: heights, calibration, router localization
    # ------------------------------------------------------------------ #
    def prepare(self, landmark_ids: Sequence[str]) -> PreparedLandmarks:
        """Compute (and cache, bounded LRU) per-landmark state for a landmark set."""
        key = tuple(sorted(landmark_ids))
        cached = self._prepared.get(key)
        if cached is not None:
            self._prepared.move_to_end(key)
            return cached

        locations = {lid: self.dataset.true_location(lid) for lid in key}
        heights = self._estimate_heights(key, locations) if self.config.use_heights else None
        calibrations = self._calibrate(key, locations, heights)

        router_positions: dict[str, RouterPosition] = {}
        if self.config.use_piecewise:
            localizer = RouterLocalizer(
                self.dataset,
                self.config,
                calibrations,
                heights,
                self.parser,
                circle_cache=self.circle_cache,
            )
            router_positions = localizer.localize_routers(list(key))

        prepared = PreparedLandmarks(
            landmark_ids=key,
            locations=locations,
            heights=heights,
            calibrations=calibrations,
            router_positions=router_positions,
        )
        self._prepared[key] = prepared
        limit = max(1, self.config.prepared_cache_size)
        while len(self._prepared) > limit:
            self._prepared.popitem(last=False)
        return prepared

    def _estimate_heights(
        self, landmark_ids: Sequence[str], locations: Mapping[str, GeoPoint]
    ) -> HeightModel | None:
        pairwise: dict[tuple[str, str], float] = {}
        for i, a in enumerate(landmark_ids):
            for b in landmark_ids[i + 1 :]:
                rtt = self.dataset.min_rtt_ms(a, b)
                if rtt is not None:
                    pairwise[(a, b)] = rtt
        if len(pairwise) < len(landmark_ids):
            return None
        return estimate_landmark_heights(locations, pairwise)

    def _pseudo_target_heights(
        self,
        landmark_ids: Sequence[str],
        locations: Mapping[str, GeoPoint],
        heights: HeightModel,
    ) -> dict[str, float]:
        """Per-landmark pseudo-target heights (see :func:`pseudo_target_heights`)."""
        return pseudo_target_heights(
            landmark_ids, locations, heights, self.dataset.min_rtt_ms
        )

    def _calibrate(
        self,
        landmark_ids: Sequence[str],
        locations: Mapping[str, GeoPoint],
        heights: HeightModel | None,
    ) -> CalibrationSet:
        if not self.config.use_calibration:
            return CalibrationSet()
        pseudo_heights: dict[str, float] = {}
        if heights is not None:
            pseudo_heights = self._pseudo_target_heights(landmark_ids, locations, heights)
        return build_calibration_set(
            landmark_ids,
            locations,
            self.dataset.min_rtt_ms,
            heights=heights,
            pseudo_heights=pseudo_heights,
            cutoff_percentile=self.config.calibration_cutoff_percentile,
            sentinel_ms=self.config.calibration_sentinel_ms,
            slack=self.config.calibration_slack,
        )

    # ------------------------------------------------------------------ #
    # Constraint construction
    # ------------------------------------------------------------------ #
    def build_constraints(
        self,
        target_id: str,
        prepared: PreparedLandmarks,
        target_height_ms: float = 0.0,
    ) -> ConstraintSet:
        """Assemble every constraint for one target under the configuration."""
        cfg = self.config
        constraints = ConstraintSet()

        margin = cfg.height_margin_ms if cfg.use_heights else 0.0
        for landmark_id in prepared.landmark_ids:
            rtt = self.dataset.min_rtt_ms(landmark_id, target_id)
            if rtt is None:
                continue
            adjusted = rtt
            if prepared.heights is not None:
                adjusted = max(
                    0.5, rtt - prepared.heights.height(landmark_id) - target_height_ms
                )

            calibration = prepared.calibrations.get(landmark_id)
            if cfg.use_calibration and calibration is not None:
                # Evaluate the positive bound a margin above and the negative
                # bound a margin below the adjusted latency, so errors in the
                # height estimates cannot turn a sound constraint unsound.
                max_km = calibration.max_distance_km(adjusted + margin)
                min_km = calibration.min_distance_km(max(0.0, adjusted - margin))
                if not cfg.use_negative_constraints:
                    min_km = 0.0
            else:
                max_km = rtt_ms_to_max_distance_km(adjusted + margin)
                min_km = 0.0

            weight = 1.0
            if cfg.use_weights:
                weight = latency_weight(
                    adjusted, cfg.weight_decay_ms, cfg.min_constraint_weight
                )
            max_km = max(max_km, cfg.min_positive_bound_km)
            constraints.add(
                DistanceConstraint(
                    landmark_id=landmark_id,
                    landmark_location=prepared.locations[landmark_id],
                    max_km=max_km,
                    min_km=max(0.0, min(min_km, max_km * 0.98)),
                    weight=weight,
                    circle_segments=cfg.solver.circle_segments,
                    geometry_cache=self.circle_cache,
                )
            )

        if self._geo_constraints is None:
            # Geographic constraints depend only on the configuration, never
            # on the target; build them once per Octant instance.
            self._geo_constraints = list(geographic_constraints(cfg))
        constraints.extend(self._geo_constraints)
        constraints.add(
            whois_constraint(self.dataset, target_id, cfg, cache=self.circle_cache)
        )

        if cfg.use_piecewise and prepared.router_positions:
            constraints.extend(
                secondary_constraints_for_target(
                    target_id,
                    list(prepared.landmark_ids),
                    self.dataset,
                    prepared.router_positions,
                    prepared.calibrations,
                    cfg,
                    prepared.heights,
                    target_height_ms,
                    geometry_cache=self.circle_cache,
                )
            )
        return constraints

    # ------------------------------------------------------------------ #
    # Localization
    # ------------------------------------------------------------------ #
    def localize(
        self,
        target_id: str,
        landmark_ids: Sequence[str] | None = None,
        prepared: PreparedLandmarks | None = None,
    ) -> LocationEstimate:
        """Localize one target and return its estimate.

        ``prepared`` optionally injects per-landmark state derived elsewhere
        (the batch engine's incremental leave-one-out derivation); it must
        have been computed from a landmark set that excludes the target.
        """
        started = time.perf_counter()
        if prepared is not None:
            landmarks = [lid for lid in prepared.landmark_ids if lid != target_id]
            if len(landmarks) < 3:
                raise ValueError("localization needs at least 3 landmarks")
        else:
            landmarks = (
                list(landmark_ids)
                if landmark_ids is not None
                else self.dataset.landmark_ids_excluding(target_id)
            )
            landmarks = [lid for lid in landmarks if lid != target_id]
            if len(landmarks) < 3:
                raise ValueError("localization needs at least 3 landmarks")
            prepared = self.prepare(landmarks)

        target_height = 0.0
        if self.config.use_heights and prepared.heights is not None:
            target_rtts = {
                lid: rtt
                for lid in landmarks
                if (rtt := self.dataset.min_rtt_ms(lid, target_id)) is not None
            }
            if len(target_rtts) >= 3:
                target_height, _rough_position = estimate_target_height(
                    target_rtts, prepared.locations, prepared.heights
                )

        constraints = self.build_constraints(target_id, prepared, target_height)
        projection = self._projection_for(prepared, target_id)
        planar = [
            c.to_planar(projection)
            for c in constraints.sorted_by_weight()
        ]
        planar = [p for p in planar if p is not None]

        solver = WeightedRegionSolver(self.config.solver)
        region = solver.solve(planar, projection)

        point = region.point_estimate() if not region.is_empty() else None
        if point is None:
            point = self._fallback_point(target_id, landmarks, prepared)

        elapsed = time.perf_counter() - started
        return LocationEstimate(
            target_id=target_id,
            method="octant",
            point=point,
            region=region if not region.is_empty() else None,
            constraints_used=solver.diagnostics.constraints_applied,
            constraints_dropped=solver.diagnostics.constraints_skipped,
            solve_time_s=elapsed,
            details={
                "target_height_ms": target_height,
                "landmark_count": len(landmarks),
                "dropped_constraints": list(solver.diagnostics.dropped_constraints),
                "max_weight": solver.diagnostics.max_weight,
                "solver_engine": solver.diagnostics.engine,
                "solver_seconds": solver.diagnostics.solve_seconds,
                "kernel": solver.diagnostics.kernel_summary(),
            },
        )

    def localize_all(
        self,
        target_ids: Sequence[str] | None = None,
        max_workers: int | str | None = None,
        executor_kind: str = "auto",
    ) -> dict[str, LocationEstimate]:
        """Leave-one-out localization of every host (or the given targets).

        Runs through the batch engine: full-cohort shared state is computed
        once, each target's leave-one-out view is derived incrementally, and
        targets optionally fan out across workers (``max_workers``).  A
        target that cannot be localized (fewer than 3 reachable landmarks,
        missing ground truth) is recorded as a failed estimate --
        ``point=None`` with the reason under ``details["error"]`` -- instead
        of aborting the whole study.
        """
        from .batch import BatchLocalizer  # deferred: batch imports this module

        localizer = BatchLocalizer(
            self, max_workers=max_workers, executor_kind=executor_kind
        )
        return localizer.localize_all(target_ids)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _projection_for(
        self, prepared: PreparedLandmarks, target_id: str
    ) -> Projection:
        """Projection centred on the landmarks weighted toward the target.

        The target's position is unknown, so the projection is centred on the
        locations of the landmarks with the lowest latency to the target --
        they bracket the target and keep projection distortion small where the
        constraints are tight.
        """
        rtts: list[tuple[float, str]] = []
        for lid in prepared.landmark_ids:
            rtt = self.dataset.min_rtt_ms(lid, target_id)
            if rtt is not None:
                rtts.append((rtt, lid))
        rtts.sort()
        nearest = [prepared.locations[lid] for _, lid in rtts[:8]]
        if not nearest:
            nearest = list(prepared.locations.values())
        return projection_for_points(nearest)

    def _fallback_point(
        self,
        target_id: str,
        landmarks: Sequence[str],
        prepared: PreparedLandmarks,
    ) -> GeoPoint | None:
        """Last-resort point estimate: the lowest-latency landmark's location."""
        best: tuple[float, str] | None = None
        for lid in landmarks:
            rtt = self.dataset.min_rtt_ms(lid, target_id)
            if rtt is None:
                continue
            if best is None or rtt < best[0]:
                best = (rtt, lid)
        if best is None:
            return None
        return prepared.locations[best[1]]

"""The Octant facade: end-to-end localization of a target host.

:class:`Octant` wires together every mechanism of the framework --
calibration, height estimation, latency constraints (positive and negative),
geographic constraints, WHOIS hints, piecewise router localization and the
weighted geometric solver -- behind two calls::

    octant = Octant(dataset)                  # measurement data in, nothing probed
    estimate = octant.localize("host-sea")    # estimated region + point estimate

The landmark set defaults to every host in the dataset except the target, the
leave-one-out methodology of the paper's evaluation.  All per-landmark state
(heights, calibrations, router positions) is computed from that landmark set
only, so information about the target never leaks into its own localization.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .._lru import BoundedLRU
from ..geometry import (
    CircleCache,
    GeoPoint,
    Projection,
    projection_for_points,
)
from ..network.dataset import MeasurementDataset
from ..network.dns import UndnsParser
from ..resilience.deadline import checkpoint
from .calibration import CalibrationSet, build_calibration_set
from .config import OctantConfig
from .constraints import ConstraintSet
from .estimate import LocationEstimate
from .heights import (
    HeightModel,
    TargetHeightTables,
    estimate_landmark_heights,
    estimate_target_height,
    estimate_target_height_tabled,
)
from .piecewise import RouterLocalizer, RouterPosition
from .pipeline import ConstraintPipeline

__all__ = [
    "Octant",
    "PreparedLandmarks",
    "PresolvedTarget",
    "pseudo_target_heights",
    "pseudo_target_heights_tabled",
]


def pseudo_target_heights(
    landmark_ids: Sequence[str],
    locations: Mapping[str, GeoPoint],
    heights: HeightModel,
    rtt_ms: Callable[[str, str], float | None],
) -> dict[str, float]:
    """Estimate every landmark's height *as if it were a target*.

    Calibration samples must be adjusted exactly the way target measurements
    will be adjusted at localization time, otherwise the calibrated envelope
    is systematically offset from the points it is later evaluated on.  A
    target's height is estimated from its measurements alone (Section 2.2),
    so for calibration each peer landmark is put through the same estimator,
    ignoring its known position.

    ``rtt_ms`` is a measurement lookup (live dataset accessor or the cached
    full-cohort matrix); the batch engine applies its leave-one-out mask by
    passing an already-masked ``landmark_ids`` roster.
    """
    pseudo: dict[str, float] = {}
    for peer in landmark_ids:
        rtts = {
            lid: rtt
            for lid in landmark_ids
            if lid != peer and (rtt := rtt_ms(lid, peer)) is not None
        }
        if len(rtts) < 3:
            pseudo[peer] = heights.height(peer)
            continue
        height, _ = estimate_target_height(rtts, locations, heights)
        pseudo[peer] = height
    return pseudo


def pseudo_target_heights_tabled(
    landmark_ids: Sequence[str],
    locations: Mapping[str, GeoPoint],
    heights: HeightModel,
    rtt_ms: Callable[[str, str], float | None],
    tables: TargetHeightTables,
) -> dict[str, float]:
    """:func:`pseudo_target_heights` against precomputed propagation tables.

    Bit-identical to the scalar function; the per-pair propagation terms of
    the candidate scan come from ``tables`` (shared across a cohort by the
    batch engine) instead of being recomputed for every peer.
    """
    pseudo: dict[str, float] = {}
    for peer in landmark_ids:
        rtts = {
            lid: rtt
            for lid in landmark_ids
            if lid != peer and (rtt := rtt_ms(lid, peer)) is not None
        }
        if len(rtts) < 3:
            pseudo[peer] = heights.height(peer)
            continue
        height, _ = estimate_target_height_tabled(rtts, locations, heights, tables)
        pseudo[peer] = height
    return pseudo


@dataclass
class PreparedLandmarks:
    """Per-landmark state derived from inter-landmark measurements only."""

    landmark_ids: tuple[str, ...]
    locations: dict[str, GeoPoint]
    heights: HeightModel | None
    calibrations: CalibrationSet
    router_positions: dict[str, RouterPosition]


@dataclass
class PresolvedTarget:
    """Everything one target needs *before* the weighted-region solve.

    :meth:`Octant.presolve` produces it (landmark resolution, target height,
    projection, constraint assembly and planarization);
    :meth:`Octant.postsolve` turns a solved region back into a
    :class:`LocationEstimate`.  Splitting the solve out lets cohort drivers
    (the batch engine's fused chunks, the serving micro-batches) presolve
    many targets and run one fused solve over all of them.
    """

    target_id: str
    landmarks: list[str]
    prepared: PreparedLandmarks
    target_height_ms: float
    projection: Projection
    #: ``None`` only while planarization is deferred to a cohort-level
    #: :meth:`ConstraintPipeline.planarize_many` pass.
    planar: list | None
    started: float
    #: Wall time the presolve itself took; cohort drivers combine it with
    #: each target's amortized solve share for an honest per-target timing.
    presolve_seconds: float = 0.0
    #: Assembled constraint system; retained so deferred planarization can
    #: run after the fact.
    constraints: ConstraintSet | None = None


class Octant:
    """Localizes targets from a :class:`~repro.network.dataset.MeasurementDataset`."""

    def __init__(
        self,
        dataset: MeasurementDataset,
        config: OctantConfig | None = None,
        parser: UndnsParser | None = None,
        circle_cache: CircleCache | None = None,
        planar_memo: "BoundedLRU | None" = None,
    ):
        self.dataset = dataset
        self.config = config or OctantConfig()
        self.parser = parser or UndnsParser()
        # LRU over landmark sets: leave-one-out evaluation visits n distinct
        # sets, and an unbounded mapping would retain one full
        # PreparedLandmarks (heights, calibrations, router positions) per
        # target.  Use repro.core.batch.BatchLocalizer for whole-cohort
        # studies; this cache only amortizes repeated localizations against
        # the same few landmark sets.
        self._prepared: OrderedDict[tuple[str, ...], PreparedLandmarks] = OrderedDict()
        self._dataset_version = dataset.version
        # The staged pipeline owns the shared geometry cache and the
        # target-independent constraint state; ``circle_cache`` lets callers
        # (the serving layer, batch studies over dataset snapshots) keep one
        # warm cache across many Octant instances.
        self.pipeline = ConstraintPipeline(
            dataset, self.config, self.parser, circle_cache, planar_memo
        )
        self.circle_cache = self.pipeline.circle_cache

    # ------------------------------------------------------------------ #
    # Preparation: heights, calibration, router localization
    # ------------------------------------------------------------------ #
    def _sync_dataset_version(self) -> None:
        """Drop prepared entries invalidated by measurement ingest.

        Ingest touches a known set of hosts; a cached
        :class:`PreparedLandmarks` only depends on measurements among its
        own landmark set, so entries disjoint from the touched hosts stay
        valid and are kept warm.  When the touched set is unknown (the
        mutation log was truncated) everything is dropped.
        """
        version = self.dataset.version
        if version == self._dataset_version:
            return
        touched = self.dataset.touched_since(self._dataset_version)
        if touched is None:
            self._prepared.clear()
        else:
            for key in [k for k in self._prepared if not touched.isdisjoint(k)]:
                del self._prepared[key]
        self._dataset_version = version

    def prepare(self, landmark_ids: Sequence[str]) -> PreparedLandmarks:
        """Compute (and cache, bounded LRU) per-landmark state for a landmark set."""
        self._sync_dataset_version()
        key = tuple(sorted(landmark_ids))
        cached = self._prepared.get(key)
        if cached is not None:
            self._prepared.move_to_end(key)
            return cached

        locations = {lid: self.dataset.true_location(lid) for lid in key}
        heights = self._estimate_heights(key, locations) if self.config.use_heights else None
        calibrations = self._calibrate(key, locations, heights)

        router_positions: dict[str, RouterPosition] = {}
        if self.config.use_piecewise:
            localizer = RouterLocalizer(
                self.dataset,
                self.config,
                calibrations,
                heights,
                self.parser,
                circle_cache=self.circle_cache,
            )
            router_positions = localizer.localize_routers(list(key))

        prepared = PreparedLandmarks(
            landmark_ids=key,
            locations=locations,
            heights=heights,
            calibrations=calibrations,
            router_positions=router_positions,
        )
        self._prepared[key] = prepared
        limit = max(1, self.config.prepared_cache_size)
        while len(self._prepared) > limit:
            self._prepared.popitem(last=False)
        return prepared

    def _estimate_heights(
        self, landmark_ids: Sequence[str], locations: Mapping[str, GeoPoint]
    ) -> HeightModel | None:
        pairwise: dict[tuple[str, str], float] = {}
        for i, a in enumerate(landmark_ids):
            for b in landmark_ids[i + 1 :]:
                rtt = self.dataset.min_rtt_ms(a, b)
                if rtt is not None:
                    pairwise[(a, b)] = rtt
        if len(pairwise) < len(landmark_ids):
            return None
        return estimate_landmark_heights(locations, pairwise)

    def _pseudo_target_heights(
        self,
        landmark_ids: Sequence[str],
        locations: Mapping[str, GeoPoint],
        heights: HeightModel,
    ) -> dict[str, float]:
        """Per-landmark pseudo-target heights (see :func:`pseudo_target_heights`)."""
        return pseudo_target_heights(
            landmark_ids, locations, heights, self.dataset.min_rtt_ms
        )

    def _calibrate(
        self,
        landmark_ids: Sequence[str],
        locations: Mapping[str, GeoPoint],
        heights: HeightModel | None,
    ) -> CalibrationSet:
        if not self.config.use_calibration:
            return CalibrationSet()
        pseudo_heights: dict[str, float] = {}
        if heights is not None:
            pseudo_heights = self._pseudo_target_heights(landmark_ids, locations, heights)
        return build_calibration_set(
            landmark_ids,
            locations,
            self.dataset.min_rtt_ms,
            heights=heights,
            pseudo_heights=pseudo_heights,
            cutoff_percentile=self.config.calibration_cutoff_percentile,
            sentinel_ms=self.config.calibration_sentinel_ms,
            slack=self.config.calibration_slack,
        )

    # ------------------------------------------------------------------ #
    # Constraint construction
    # ------------------------------------------------------------------ #
    def build_constraints(
        self,
        target_id: str,
        prepared: PreparedLandmarks,
        target_height_ms: float = 0.0,
    ) -> ConstraintSet:
        """Assemble every constraint for one target under the configuration.

        Delegates to the pipeline's assembly stage (kept as a method for
        callers that drive the stages separately, such as the solver
        benchmarks).
        """
        return self.pipeline.assemble(target_id, prepared, target_height_ms)

    # ------------------------------------------------------------------ #
    # Localization
    # ------------------------------------------------------------------ #
    def localize(
        self,
        target_id: str,
        landmark_ids: Sequence[str] | None = None,
        prepared: PreparedLandmarks | None = None,
        engine: str | None = None,
    ) -> LocationEstimate:
        """Localize one target and return its estimate.

        ``prepared`` optionally injects per-landmark state derived elsewhere
        (the batch engine's incremental leave-one-out derivation); it must
        have been computed from a landmark set that excludes the target.
        ``engine`` overrides the configured solver engine for this call only
        (the serving degradation ladder's fallback rungs).
        """
        presolved = self.presolve(target_id, landmark_ids, prepared)
        region, diagnostics = self.pipeline.solve(
            presolved.planar, presolved.projection, engine=engine, key=target_id
        )
        self.pipeline.stats.runs += 1
        return self.postsolve(presolved, region, diagnostics)

    def presolve(
        self,
        target_id: str,
        landmark_ids: Sequence[str] | None = None,
        prepared: PreparedLandmarks | None = None,
        *,
        height_tables: TargetHeightTables | None = None,
        planarize: bool = True,
    ) -> PresolvedTarget:
        """Everything before the weighted-region solve for one target.

        Landmark resolution/preparation, target height estimation,
        projection choice, constraint assembly and planarization -- the
        stages that are inherently per-target.  The returned
        :class:`PresolvedTarget` feeds :meth:`ConstraintPipeline.solve` (or
        a cohort-level ``solve_many``) and then :meth:`postsolve`.

        ``height_tables`` routes the target-height estimate through the
        cohort-shared propagation tables (bit-identical to the scalar
        estimator); ``planarize=False`` defers planarization so a cohort
        driver can pool it across targets via
        :meth:`ConstraintPipeline.planarize_many`.
        """
        checkpoint("prepare", target_id)
        started = time.perf_counter()
        if prepared is not None:
            landmarks = [lid for lid in prepared.landmark_ids if lid != target_id]
            if len(landmarks) < 3:
                raise ValueError("localization needs at least 3 landmarks")
        else:
            landmarks = (
                list(landmark_ids)
                if landmark_ids is not None
                else self.dataset.landmark_ids_excluding(target_id)
            )
            landmarks = [lid for lid in landmarks if lid != target_id]
            if len(landmarks) < 3:
                raise ValueError("localization needs at least 3 landmarks")
            prepared = self.prepare(landmarks)

        target_height = 0.0
        if self.config.use_heights and prepared.heights is not None:
            target_rtts = {
                lid: rtt
                for lid in landmarks
                if (rtt := self.dataset.min_rtt_ms(lid, target_id)) is not None
            }
            if len(target_rtts) >= 3:
                if height_tables is not None:
                    target_height, _rough_position = estimate_target_height_tabled(
                        target_rtts, prepared.locations, prepared.heights, height_tables
                    )
                else:
                    target_height, _rough_position = estimate_target_height(
                        target_rtts, prepared.locations, prepared.heights
                    )

        projection = self._projection_for(prepared, target_id)
        constraints = self.pipeline.assemble(target_id, prepared, target_height)
        planar = (
            self.pipeline.planarize(constraints, projection, key=target_id)
            if planarize
            else None
        )
        return PresolvedTarget(
            target_id=target_id,
            landmarks=landmarks,
            prepared=prepared,
            target_height_ms=target_height,
            projection=projection,
            planar=planar,
            started=started,
            presolve_seconds=time.perf_counter() - started,
            constraints=constraints,
        )

    def postsolve(
        self,
        presolved: PresolvedTarget,
        region,
        diagnostics,
        solve_share: float | None = None,
    ) -> LocationEstimate:
        """Wrap a solved region into the estimate :meth:`localize` returns.

        ``solve_share`` is the cohort driver's amortized per-target solve
        time: in a fused chunk the wall span since ``presolved.started``
        covers every groupmate's presolve plus the pooled solve, so the
        honest per-target figure is this target's own presolve time plus
        its share of the pooled solve.  Without it (the sequential path)
        the wall span is the per-target truth.
        """
        point = region.point_estimate() if not region.is_empty() else None
        if point is None:
            point = self._fallback_point(
                presolved.target_id, presolved.landmarks, presolved.prepared
            )

        if solve_share is not None:
            elapsed = presolved.presolve_seconds + solve_share
        else:
            elapsed = time.perf_counter() - presolved.started
        return LocationEstimate(
            target_id=presolved.target_id,
            method="octant",
            point=point,
            region=region if not region.is_empty() else None,
            constraints_used=diagnostics.constraints_applied,
            constraints_dropped=diagnostics.constraints_skipped,
            solve_time_s=elapsed,
            details={
                "target_height_ms": presolved.target_height_ms,
                "landmark_count": len(presolved.landmarks),
                "dropped_constraints": list(diagnostics.dropped_constraints),
                "max_weight": diagnostics.max_weight,
                "solver_engine": diagnostics.engine,
                "solver_seconds": diagnostics.solve_seconds,
                "kernel": diagnostics.kernel_summary(),
            },
        )

    def localize_all(
        self,
        target_ids: Sequence[str] | None = None,
        max_workers: int | str | None = None,
        executor_kind: str = "auto",
    ) -> dict[str, LocationEstimate]:
        """Leave-one-out localization of every host (or the given targets).

        Runs through the batch engine: full-cohort shared state is computed
        once, each target's leave-one-out view is derived incrementally, and
        targets optionally fan out across workers (``max_workers``).  A
        target that cannot be localized (fewer than 3 reachable landmarks,
        missing ground truth) is recorded as a failed estimate --
        ``point=None`` with the reason under ``details["error"]`` -- instead
        of aborting the whole study.
        """
        from .batch import BatchLocalizer  # deferred: batch imports this module

        localizer = BatchLocalizer(
            self, max_workers=max_workers, executor_kind=executor_kind
        )
        return localizer.localize_all(target_ids)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _projection_for(
        self, prepared: PreparedLandmarks, target_id: str
    ) -> Projection:
        """Projection centred on the landmarks weighted toward the target.

        The target's position is unknown, so the projection is centred on the
        locations of the landmarks with the lowest latency to the target --
        they bracket the target and keep projection distortion small where the
        constraints are tight.
        """
        rtts: list[tuple[float, str]] = []
        for lid in prepared.landmark_ids:
            rtt = self.dataset.min_rtt_ms(lid, target_id)
            if rtt is not None:
                rtts.append((rtt, lid))
        rtts.sort()
        nearest = [prepared.locations[lid] for _, lid in rtts[:8]]
        if not nearest:
            nearest = list(prepared.locations.values())
        return projection_for_points(nearest)

    def _fallback_point(
        self,
        target_id: str,
        landmarks: Sequence[str],
        prepared: PreparedLandmarks,
    ) -> GeoPoint | None:
        """Last-resort point estimate: the lowest-latency landmark's location."""
        best: tuple[float, str] | None = None
        for lid in landmarks:
            rtt = self.dataset.min_rtt_ms(lid, target_id)
            if rtt is None:
                continue
            if best is None or rtt < best[0]:
                best = (rtt, lid)
        if best is None:
            return None
        return prepared.locations[best[1]]

"""Shortest-ping and speed-of-light baselines.

Two simple reference methods that bracket the design space:

* :class:`ShortestPing` -- place the target at the landmark with the lowest
  RTT.  Trivial, surprisingly competitive when landmarks are dense, and the
  standard sanity baseline in the geolocation literature.
* :class:`SpeedOfLight` -- the fully conservative region method: intersect
  the 2/3-speed-of-light disks implied by every measurement.  Always sound
  (the target is guaranteed to be inside the region) but very imprecise; this
  is the "constraints so loose that they lead to very low precision" strawman
  of Section 2.1 and the natural ablation anchor.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..core.estimate import LocationEstimate
from ..geometry import (
    Polygon,
    Region,
    RegionPiece,
    clip_convex,
    disk_polygon,
    projection_for_points,
    rtt_ms_to_max_distance_km,
)
from ..network.dataset import MeasurementDataset
from .base import default_landmarks

__all__ = ["ShortestPing", "SpeedOfLight"]


class ShortestPing:
    """Locate the target at its lowest-latency landmark."""

    name = "shortest-ping"

    def __init__(self, dataset: MeasurementDataset):
        self.dataset = dataset

    def localize(
        self, target_id: str, landmark_ids: Sequence[str] | None = None
    ) -> LocationEstimate:
        """Return the location of the landmark with the smallest RTT to the target."""
        started = time.perf_counter()
        landmarks = default_landmarks(self.dataset, target_id, landmark_ids)
        best: tuple[float, str] | None = None
        for landmark in landmarks:
            rtt = self.dataset.min_rtt_ms(landmark, target_id)
            if rtt is None:
                continue
            if best is None or rtt < best[0]:
                best = (rtt, landmark)
        elapsed = time.perf_counter() - started
        if best is None:
            return LocationEstimate(target_id, self.name, None, solve_time_s=elapsed)
        return LocationEstimate(
            target_id,
            self.name,
            self.dataset.true_location(best[1]),
            constraints_used=len(landmarks),
            solve_time_s=elapsed,
            details={"matched_landmark": best[1], "min_rtt_ms": best[0]},
        )


class SpeedOfLight:
    """Intersect the conservative 2/3-c disks from every landmark."""

    name = "speed-of-light"

    def __init__(self, dataset: MeasurementDataset, circle_segments: int = 32):
        self.dataset = dataset
        self.circle_segments = circle_segments

    def localize(
        self, target_id: str, landmark_ids: Sequence[str] | None = None
    ) -> LocationEstimate:
        """Return the intersection of speed-of-light disks and its centroid."""
        started = time.perf_counter()
        landmarks = default_landmarks(self.dataset, target_id, landmark_ids)

        disks = []
        for landmark in landmarks:
            rtt = self.dataset.min_rtt_ms(landmark, target_id)
            if rtt is None:
                continue
            disks.append(
                (self.dataset.true_location(landmark), rtt_ms_to_max_distance_km(rtt))
            )
        if not disks:
            return LocationEstimate(target_id, self.name, None)

        projection = projection_for_points([loc for loc, _ in disks])
        disks.sort(key=lambda item: item[1])
        region_polygon: Polygon | None = None
        for center, radius in disks:
            disk = disk_polygon(center, max(radius, 1.0), projection, self.circle_segments)
            if region_polygon is None:
                region_polygon = disk
                continue
            clipped = clip_convex(region_polygon, disk)
            if clipped is None:
                # Physically impossible with sound bounds; keep the last
                # consistent region rather than failing.
                break
            region_polygon = clipped

        elapsed = time.perf_counter() - started
        if region_polygon is None:
            return LocationEstimate(target_id, self.name, None, solve_time_s=elapsed)
        region = Region([RegionPiece(region_polygon, 1.0)], projection)
        return LocationEstimate(
            target_id,
            self.name,
            projection.inverse(region_polygon.centroid()),
            region=region,
            constraints_used=len(disks),
            solve_time_s=elapsed,
        )

"""Baseline geolocalization methods the paper compares Octant against."""

from .base import Geolocalizer, default_landmarks
from .geolim import Bestline, GeoLim, fit_bestline
from .geoping import GeoPing
from .geotrack import GeoTrack
from .shortest_ping import ShortestPing, SpeedOfLight

__all__ = [
    "Geolocalizer",
    "default_landmarks",
    "GeoLim",
    "Bestline",
    "fit_bestline",
    "GeoPing",
    "GeoTrack",
    "ShortestPing",
    "SpeedOfLight",
]

"""Common interface for geolocalization methods.

Octant and every baseline implement the same small interface so the
evaluation harness can treat them interchangeably: construct with a
:class:`~repro.network.dataset.MeasurementDataset`, call
:meth:`Geolocalizer.localize` with a target id and an optional landmark list,
and get back a :class:`~repro.core.estimate.LocationEstimate`.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..core.estimate import LocationEstimate
from ..network.dataset import MeasurementDataset

__all__ = ["Geolocalizer", "default_landmarks"]


@runtime_checkable
class Geolocalizer(Protocol):
    """Anything that can place a target host on the globe."""

    #: Short method name used in reports and plots ("octant", "geolim", ...).
    name: str

    def localize(
        self, target_id: str, landmark_ids: Sequence[str] | None = None
    ) -> LocationEstimate:
        """Localize one target using the given landmarks (all others by default)."""
        ...


def default_landmarks(
    dataset: MeasurementDataset, target_id: str, landmark_ids: Sequence[str] | None
) -> list[str]:
    """Resolve the landmark list, excluding the target (leave-one-out)."""
    if landmark_ids is None:
        landmarks = dataset.landmark_ids_excluding(target_id)
    else:
        landmarks = [lid for lid in landmark_ids if lid != target_id]
    if len(landmarks) < 1:
        raise ValueError("at least one landmark is required")
    return landmarks

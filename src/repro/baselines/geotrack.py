"""GeoTrack: DNS names along the traceroute path (IP2Geo, SIGCOMM 2001).

GeoTrack performs a traceroute toward the target, extracts geographic hints
from the DNS names of the routers on the path, and localizes the target to
the *last* router on the path whose location could be determined.  Its
accuracy therefore depends entirely on how close to the target the last
recognizable router sits -- excellent when the target's access provider names
its routers helpfully, and very poor (the paper reports a 2709-mile worst
case) when the tail of the path is opaque.

The original system traces from a single measurement host; with a whole
landmark set available this implementation traces from the landmark with the
lowest latency to the target, which is the most favourable choice for the
baseline and keeps the comparison conservative.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..core.estimate import LocationEstimate
from ..network.dataset import MeasurementDataset
from ..network.dns import UndnsParser
from .base import default_landmarks

__all__ = ["GeoTrack"]


class GeoTrack:
    """The GeoTrack baseline."""

    name = "geotrack"

    def __init__(self, dataset: MeasurementDataset, parser: UndnsParser | None = None):
        self.dataset = dataset
        self.parser = parser or UndnsParser()

    def _vantage_order(self, target_id: str, landmarks: Sequence[str]) -> list[str]:
        """Landmarks ordered by increasing latency to the target."""
        with_rtt = []
        without_rtt = []
        for landmark in landmarks:
            rtt = self.dataset.min_rtt_ms(landmark, target_id)
            if rtt is None:
                without_rtt.append(landmark)
            else:
                with_rtt.append((rtt, landmark))
        with_rtt.sort()
        return [lid for _, lid in with_rtt] + without_rtt

    def localize(
        self, target_id: str, landmark_ids: Sequence[str] | None = None
    ) -> LocationEstimate:
        """Localize the target to the last resolvable router on the traced path."""
        started = time.perf_counter()
        landmarks = default_landmarks(self.dataset, target_id, landmark_ids)

        # GeoTrack uses a single traceroute toward the target (the original
        # system traces from one measurement host).  The lowest-latency
        # landmark is the most favourable choice of vantage point, which keeps
        # the comparison conservative without granting GeoTrack the unrealistic
        # ability to scan every landmark's path for a usable name.
        order = self._vantage_order(target_id, landmarks)
        for vantage in order[:1]:
            trace = self.dataset.traceroute(vantage, target_id)
            if trace is None or not trace.hops:
                continue
            # Walk from the hop nearest the target back toward the vantage and
            # stop at the first router whose DNS name yields a location.
            for hop in reversed(trace.router_hops()):
                hint = self.parser.parse(hop.dns_name)
                if hint is None:
                    continue
                elapsed = time.perf_counter() - started
                return LocationEstimate(
                    target_id,
                    self.name,
                    hint.location,
                    region=None,
                    constraints_used=trace.hop_count,
                    solve_time_s=elapsed,
                    details={
                        "vantage": vantage,
                        "router": hop.node_id,
                        "dns_name": hop.dns_name,
                        "hint_city": hint.city.name,
                    },
                )

        # The traced path produced no hint: fall back to the vantage point
        # itself (the original system would report a failure; using the
        # nearest landmark keeps every method comparable on every target).
        elapsed = time.perf_counter() - started
        point = self.dataset.true_location(order[0]) if order else None
        return LocationEstimate(
            target_id,
            self.name,
            point,
            region=None,
            constraints_used=0,
            solve_time_s=elapsed,
            details={"fallback": True},
        )

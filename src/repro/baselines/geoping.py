"""GeoPing: nearest latency signature (Padmanabhan & Subramanian, SIGCOMM 2001).

GeoPing places the target at the location of the landmark whose *latency
vector* (its delays to all probing hosts) most resembles the target's.  The
similarity metric follows the RADAR work the original paper cites: Euclidean
distance between delay vectors over the probes both nodes share.

GeoPing produces only a point estimate -- one of the landmark positions -- so
its error is bounded below by the distance from the target to the nearest
landmark, which is why its error tail in the paper's Figure 3 is long.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

from ..core.estimate import LocationEstimate
from ..network.dataset import MeasurementDataset
from .base import default_landmarks

__all__ = ["GeoPing"]


class GeoPing:
    """The GeoPing baseline."""

    name = "geoping"

    def __init__(self, dataset: MeasurementDataset):
        self.dataset = dataset

    def _latency_vector(
        self, node_id: str, probe_ids: Sequence[str]
    ) -> dict[str, float]:
        """Minimum RTT from every probe host to ``node_id`` (missing pairs skipped)."""
        vector: dict[str, float] = {}
        for probe in probe_ids:
            if probe == node_id:
                continue
            rtt = self.dataset.min_rtt_ms(probe, node_id)
            if rtt is not None:
                vector[probe] = rtt
        return vector

    @staticmethod
    def _signature_distance(a: dict[str, float], b: dict[str, float]) -> float:
        """Euclidean distance between two delay vectors over their shared probes."""
        shared = sorted(set(a) & set(b))
        if not shared:
            return math.inf
        return math.sqrt(sum((a[p] - b[p]) ** 2 for p in shared) / len(shared))

    def localize(
        self, target_id: str, landmark_ids: Sequence[str] | None = None
    ) -> LocationEstimate:
        """Map the target onto the landmark with the most similar delay vector."""
        started = time.perf_counter()
        landmarks = default_landmarks(self.dataset, target_id, landmark_ids)

        target_vector = self._latency_vector(target_id, landmarks)
        if not target_vector:
            return LocationEstimate(target_id, self.name, None)

        best_landmark: str | None = None
        best_distance = math.inf
        for landmark in landmarks:
            vector = self._latency_vector(landmark, landmarks)
            distance = self._signature_distance(target_vector, vector)
            if distance < best_distance:
                best_distance = distance
                best_landmark = landmark

        elapsed = time.perf_counter() - started
        if best_landmark is None:
            return LocationEstimate(target_id, self.name, None, solve_time_s=elapsed)
        return LocationEstimate(
            target_id,
            self.name,
            self.dataset.true_location(best_landmark),
            region=None,
            constraints_used=len(landmarks),
            solve_time_s=elapsed,
            details={"matched_landmark": best_landmark, "signature_distance": best_distance},
        )

"""GeoLim: constraint-based geolocation (Gueye et al., IMC 2004).

GeoLim (called CBG, Constraint-Based Geolocation, in the original paper)
derives one distance *upper bound* per landmark from the latency to the
target, and locates the target in the intersection of the resulting disks.
The distance bound comes from each landmark's "bestline": the line in
(distance, delay) space that lies below every inter-landmark observation
while being as close to them as possible -- it converts a measured delay into
the largest distance consistent with that landmark's historical behaviour.

GeoLim uses *only positive information* and the *strict intersection* of the
disks: it has no weights and no negative constraints.  As the paper's Figure 4
shows, this makes it brittle -- a single over-aggressive bestline can make the
intersection miss the target (or be empty outright), and the probability of
that grows with the number of landmarks.  This implementation reproduces that
behaviour faithfully, including returning an empty region when the
constraints conflict (the point estimate then falls back to the intersection
built from the subset of disks that still agree).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..core.estimate import LocationEstimate
from ..geometry import (
    GeoPoint,
    Polygon,
    Region,
    RegionPiece,
    clip_convex,
    disk_polygon,
    projection_for_points,
    rtt_ms_to_max_distance_km,
)
from ..network.dataset import MeasurementDataset
from .base import default_landmarks

__all__ = ["Bestline", "GeoLim", "fit_bestline"]


@dataclass(frozen=True)
class Bestline:
    """The per-landmark delay-to-distance conversion line ``delay = m * distance + b``.

    Given a measured delay ``d`` to the target, the implied distance bound is
    ``(d - b) / m``.  The slope is never allowed to fall below the physical
    2/3-speed-of-light slope, and the intercept is non-negative (it captures
    the landmark's fixed overhead).
    """

    slope_ms_per_km: float
    intercept_ms: float

    def distance_bound_km(self, delay_ms: float) -> float:
        """Upper bound on the distance implied by a delay measurement."""
        if self.slope_ms_per_km <= 0:
            return rtt_ms_to_max_distance_km(delay_ms)
        bound = (delay_ms - self.intercept_ms) / self.slope_ms_per_km
        return max(bound, 1.0)


#: The physical lower bound on the slope: RTT milliseconds per km at 2/3 c.
_SOL_SLOPE_MS_PER_KM = 1.0 / rtt_ms_to_max_distance_km(1.0)


def fit_bestline(samples: Sequence[tuple[float, float]]) -> Bestline:
    """Fit the CBG bestline to ``(distance_km, delay_ms)`` samples.

    The bestline lies below every sample (so that converting a delay gives an
    *over*-estimate of distance), has slope at least the speed-of-light slope
    and non-negative intercept, and among the feasible candidate lines picks
    the one minimizing the total vertical distance to the samples.  Candidate
    lines pass through pairs of samples on the lower-left of the cloud, the
    standard CBG construction.
    """
    points = [(d, y) for d, y in samples if d >= 0 and y >= 0]
    if len(points) < 2:
        raise ValueError("bestline fitting needs at least 2 samples")

    def feasible(m: float, b: float) -> bool:
        if m < _SOL_SLOPE_MS_PER_KM or b < 0:
            return False
        return all(y >= m * x + b - 1e-9 for x, y in points)

    def cost(m: float, b: float) -> float:
        return sum(y - (m * x + b) for x, y in points)

    best: tuple[float, float] | None = None
    best_cost = float("inf")

    # Candidate 1: speed-of-light slope pushed up to touch the lowest point.
    b0 = min(y - _SOL_SLOPE_MS_PER_KM * x for x, y in points)
    if b0 >= 0 and feasible(_SOL_SLOPE_MS_PER_KM, b0):
        best = (_SOL_SLOPE_MS_PER_KM, b0)
        best_cost = cost(*best)

    # Candidate 2: lines through every pair of points.
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            x1, y1 = points[i]
            x2, y2 = points[j]
            if abs(x2 - x1) < 1e-9:
                continue
            m = (y2 - y1) / (x2 - x1)
            b = y1 - m * x1
            if not feasible(m, b):
                continue
            c = cost(m, b)
            if c < best_cost:
                best = (m, b)
                best_cost = c

    if best is None:
        # Degenerate cloud (e.g. all points share a distance): fall back to
        # the physical bound with zero intercept, which is always sound.
        return Bestline(_SOL_SLOPE_MS_PER_KM, 0.0)
    return Bestline(best[0], max(0.0, best[1]))


class GeoLim:
    """The GeoLim / CBG baseline."""

    name = "geolim"

    def __init__(self, dataset: MeasurementDataset, circle_segments: int = 32):
        self.dataset = dataset
        self.circle_segments = circle_segments
        self._bestlines: dict[tuple[str, ...], dict[str, Bestline]] = {}

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #
    def bestlines_for(self, landmark_ids: Sequence[str]) -> dict[str, Bestline]:
        """Fit (and cache) the bestline of every landmark in the set."""
        key = tuple(sorted(landmark_ids))
        cached = self._bestlines.get(key)
        if cached is not None:
            return cached
        lines: dict[str, Bestline] = {}
        for landmark in key:
            samples: list[tuple[float, float]] = []
            loc = self.dataset.true_location(landmark)
            for peer in key:
                if peer == landmark:
                    continue
                rtt = self.dataset.min_rtt_ms(landmark, peer)
                if rtt is None:
                    continue
                samples.append((loc.distance_km(self.dataset.true_location(peer)), rtt))
            if len(samples) >= 2:
                lines[landmark] = fit_bestline(samples)
        self._bestlines[key] = lines
        return lines

    # ------------------------------------------------------------------ #
    # Localization
    # ------------------------------------------------------------------ #
    def localize(
        self, target_id: str, landmark_ids: Sequence[str] | None = None
    ) -> LocationEstimate:
        """Intersect the per-landmark disks and return the region and centroid."""
        started = time.perf_counter()
        landmarks = default_landmarks(self.dataset, target_id, landmark_ids)
        bestlines = self.bestlines_for(landmarks)

        disks: list[tuple[str, GeoPoint, float]] = []
        for landmark in landmarks:
            rtt = self.dataset.min_rtt_ms(landmark, target_id)
            if rtt is None:
                continue
            line = bestlines.get(landmark)
            radius = (
                line.distance_bound_km(rtt)
                if line is not None
                else rtt_ms_to_max_distance_km(rtt)
            )
            disks.append((landmark, self.dataset.true_location(landmark), radius))

        if not disks:
            return LocationEstimate(target_id, self.name, None)

        projection = projection_for_points([loc for _, loc, _ in disks])
        # Intersect the disks strictly, tightest bounds first (the order does
        # not change the final intersection but lets the fallback point come
        # from the most informative prefix when the intersection empties).
        disks.sort(key=lambda item: item[2])
        region_polygon: Polygon | None = None
        last_non_empty: Polygon | None = None
        empty = False
        for _, center, radius in disks:
            disk = disk_polygon(center, max(radius, 1.0), projection, self.circle_segments)
            if region_polygon is None:
                region_polygon = disk
            else:
                clipped = clip_convex(region_polygon, disk)
                if clipped is None:
                    empty = True
                    break
                region_polygon = clipped
            last_non_empty = region_polygon

        elapsed = time.perf_counter() - started
        if empty or region_polygon is None:
            # Overconstrained: no region contains all bounds.  GeoLim reports
            # a failure for the region; the point estimate uses the last
            # consistent prefix so a comparison point still exists.
            point = None
            if last_non_empty is not None:
                point = projection.inverse(last_non_empty.centroid())
            return LocationEstimate(
                target_id,
                self.name,
                point,
                region=None,
                constraints_used=len(disks),
                solve_time_s=elapsed,
                details={"overconstrained": True},
            )

        region = Region([RegionPiece(region_polygon, 1.0)], projection)
        return LocationEstimate(
            target_id,
            self.name,
            projection.inverse(region_polygon.centroid()),
            region=region,
            constraints_used=len(disks),
            solve_time_s=elapsed,
            details={"overconstrained": False},
        )

"""Configuration of the serving tier's resilience behavior.

Attached to :class:`~repro.core.config.OctantConfig` as ``resilience`` so a
service inherits it with the rest of the pipeline configuration; the
:class:`~repro.serving.LocalizationService` constructor can override it per
instance.  All defaults are chosen so that a zero-fault run is bit-identical
to the pre-resilience serving path: no default deadline, retries and the
degradation ladder only engage on failures that the old code would have
recorded as failed estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .breaker import BreakerConfig
from .retry import RetryPolicy

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Deadlines, retries, breakers and degradation for the serving tier."""

    #: Default per-request deadline (seconds); ``None`` disables deadlines
    #: unless the caller passes an explicit ``timeout``.
    deadline_s: float | None = None
    #: Per-rung retry budget for retriable stage faults.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-``stage:engine`` circuit breakers consulted before each ladder rung.
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Enable the graceful-degradation ladder (fused -> vector -> object
    #: engines).  Off: a failed primary attempt is recorded as a failed
    #: estimate, the pre-resilience behavior.
    degradation: bool = True
    #: Allow the final ladder rung: a coarse ``repro.baselines`` estimate
    #: (shortest-ping) when every engine rung failed or the deadline leaves
    #: no time for another solve.  Every such answer carries
    #: ``details["degraded"]`` provenance.
    baseline_fallback: bool = True
    #: Shed queued requests whose deadline already expired at dequeue time
    #: instead of burning an executor slot on an answer nobody awaits.
    shed_expired: bool = True

"""Resilience layer: fault injection, deadlines, retries, breakers, degradation.

This package is deliberately free of imports from :mod:`repro.core` so the
core configuration can embed :class:`ResilienceConfig` without a cycle.  The
serving tier (:mod:`repro.serving`) composes the pieces:

* :mod:`~repro.resilience.faults` -- deterministic, seedable fault injection
  at named stage boundaries (``OCTANT_FAULT_PLAN`` for codeless chaos runs).
* :mod:`~repro.resilience.deadline` -- per-request deadlines, cooperative
  cancellation tokens, and the :func:`checkpoint` hook the pipeline calls at
  every stage boundary.
* :mod:`~repro.resilience.retry` -- jittered exponential backoff policy.
* :mod:`~repro.resilience.breaker` -- per-stage circuit breakers.
* :mod:`~repro.resilience.errors` -- the typed error taxonomy
  (:class:`RetriableError` / :class:`FatalError` / :class:`DeadlineExceeded`
  / :class:`OperationCancelled`).
* :mod:`~repro.resilience.config` -- :class:`ResilienceConfig`, the knob set
  attached to :class:`repro.core.config.OctantConfig`.
"""

from .breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from .config import ResilienceConfig
from .deadline import (
    CancelToken,
    Deadline,
    checkpoint,
    current_scope,
    resilience_scope,
)
from .errors import (
    DeadlineExceeded,
    FatalError,
    OperationCancelled,
    ReplyDropped,
    ResilienceError,
    RetriableError,
    classify_error,
)
from .faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    clear_fault_plan,
    install_fault_plan,
    stable_uniform,
)
from .retry import RetryPolicy

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CancelToken",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FAULT_PLAN_ENV",
    "FatalError",
    "FaultPlan",
    "FaultSpec",
    "OperationCancelled",
    "ReplyDropped",
    "ResilienceConfig",
    "ResilienceError",
    "RetriableError",
    "RetryPolicy",
    "active_fault_plan",
    "checkpoint",
    "classify_error",
    "clear_fault_plan",
    "current_scope",
    "install_fault_plan",
    "resilience_scope",
    "stable_uniform",
]

"""The typed failure taxonomy of the serving tier.

Octant's measurement plane is noisy and partially failing by design (the
paper's premise); the serving tier therefore needs to *reason* about
failures, not just record their class names.  Every failure a request can
encounter is classified into one of a small set of kinds, each implying a
policy:

``retriable``
    Transient: a retry (same engine, same inputs) may succeed.  Backoff and
    retry up to the :class:`~repro.resilience.retry.RetryPolicy` budget,
    then step down the degradation ladder.
``fatal``
    Deterministic for these inputs: retrying the same attempt cannot help.
    Step straight down the degradation ladder (a different engine or the
    coarse baseline may still answer).
``deadline``
    The request's deadline expired mid-flight.  No time for another full
    attempt; jump directly to the (near-instant) baseline fallback, or fail
    terminally when degradation is disabled.
``cancelled`` / ``timeout`` / ``shutdown``
    The caller (or the service lifecycle) withdrew the request; resolve it
    with a terminal failed estimate and do no further work.

The classification is carried on estimates as ``details["error_class"]``
(alongside the pre-existing ``details["error_type"]`` exception class name,
which is kept for compatibility with stored results and older tooling).
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "RetriableError",
    "FatalError",
    "DeadlineExceeded",
    "OperationCancelled",
    "ReplyDropped",
    "classify_error",
]


class ResilienceError(Exception):
    """Base class of the typed failure taxonomy.

    ``stage`` names the pipeline stage boundary the failure surfaced at
    (``prepare``/``assemble``/``planarize``/``solve``/``ingest``/
    ``dispatch``), when known; circuit breakers key on it.
    """

    #: The taxonomy kind; subclasses override.
    kind = "fatal"

    def __init__(self, message: str, stage: str | None = None):
        super().__init__(message)
        self.stage = stage


class RetriableError(ResilienceError):
    """A transient failure: the same attempt may succeed if retried."""

    kind = "retriable"


class FatalError(ResilienceError):
    """A deterministic failure: retrying the same attempt cannot help."""

    kind = "fatal"


class DeadlineExceeded(ResilienceError):
    """The request's deadline expired before the attempt completed."""

    kind = "deadline"


class OperationCancelled(ResilienceError):
    """The request was withdrawn (caller timeout or service shutdown).

    ``reason`` distinguishes who withdrew it: ``"timeout"`` (the awaiting
    caller gave up), ``"shutdown"`` (the service is stopping) or the generic
    ``"cancelled"``.
    """

    kind = "cancelled"

    def __init__(
        self, message: str, stage: str | None = None, reason: str = "cancelled"
    ):
        super().__init__(message, stage)
        self.reason = reason


class ReplyDropped(ResilienceError):
    """An injected process-level fault: compute the answer, send no reply.

    Raised by a ``drop_reply`` fault rule at the worker's ``reply`` stage
    boundary (see :mod:`repro.serving.worker`): the worker swallows it and
    skips the reply frame, modelling a reply lost on the wire.  The
    orchestrator observes only silence -- its per-attempt timeout fires and
    the request fails over to a peer shard.  Classified ``retriable``
    because the work itself succeeded; only the delivery was lost.
    """

    kind = "retriable"


def classify_error(error: BaseException | str) -> str:
    """Map any failure to its taxonomy kind.

    Typed errors carry their own kind; exceptions the pre-resilience code
    already raised are mapped conservatively -- ``KeyError``/``ValueError``
    are data refusals (deterministic, hence ``fatal``), timeouts are
    ``deadline``, anything unknown is ``fatal`` (an unknown failure must not
    be retried blindly against a live dataset).
    """
    if isinstance(error, OperationCancelled):
        return error.reason
    if isinstance(error, ResilienceError):
        return error.kind
    if isinstance(error, (TimeoutError,)):
        return "deadline"
    return "fatal"

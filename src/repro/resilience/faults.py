"""Deterministic, seedable fault injection at named stage boundaries.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules, each bound to a
pipeline stage (``prepare``/``assemble``/``planarize``/``solve``/``ingest``/
``dispatch`` or ``*``).  When the pipeline passes a stage boundary it calls
:func:`repro.resilience.deadline.checkpoint`, which asks the active plan to
:meth:`~FaultPlan.fire`; the plan then injects a latency spike, a typed
exception, or both, with the configured probability.

Determinism is the whole point: chaos runs must be reproducible, and the
availability benchmark gates on a *fixed* fault schedule.  Every draw is a
pure function of ``(seed, rule index, stage, key, nth-draw-for-that-tuple)``
through a stable hash -- no global RNG state, no dependence on thread
interleaving when call sites pass a per-target ``key``, and identical
schedules across processes and Python hash randomization.

Plans activate three ways, strongest first:

1. **Scoped** -- :func:`repro.resilience.deadline.resilience_scope`
   installs a plan for the current thread (the serving executor wraps every
   request this way, so a service-owned plan never leaks into unrelated
   work).
2. **Globally** -- :func:`install_fault_plan` / :func:`clear_fault_plan`.
3. **Environment** -- ``OCTANT_FAULT_PLAN`` holds a spec string (see
   :meth:`FaultPlan.from_spec`); it is parsed once, lazily, so chaos runs
   need no code edits: ``OCTANT_FAULT_PLAN="seed=7;*:p=0.05,latency_ms=1,error=none"
   python -m pytest`` runs the whole suite under latency chaos.

Spec string grammar (clauses separated by ``;``)::

    seed=7; solve:p=0.3,error=fatal,limit=2; *:p=0.05,latency_ms=1,error=none

Each clause is ``stage:key=value,...`` with keys ``p`` (probability,
default 1), ``error`` (``retriable``/``fatal``/``deadline``/``none``,
default ``retriable``), ``latency_ms`` (sleep before the error, default 0)
and ``limit`` (stop after N injections, default unlimited).

**Process-level fault kinds** (the sharded serving tier's chaos vocabulary;
see ``DESIGN_SERVING.md`` "Sharded tier"):

* ``kill`` -- hard-crash the current process with ``SIGKILL`` (no cleanup,
  no exit handlers): the supervisor must detect the death and restart the
  worker.  On platforms without ``SIGKILL`` the process exits hard via
  ``os._exit``.
* ``hang`` -- sleep effectively forever at the checkpoint.  Heartbeats from
  a single-threaded worker loop stop, so the supervisor's liveness deadline
  reaps the worker exactly as it would a livelocked one.
* ``drop_reply`` -- raise :class:`~repro.resilience.errors.ReplyDropped`;
  the worker loop computes the answer but never sends the reply frame (the
  orchestrator's attempt timeout + failover path is exercised).

These kinds are meant to fire inside worker processes (a plan carrying them
is threaded through the worker bootstrap); firing ``kill`` in the
orchestrator process kills the orchestrator, which is occasionally the
chaos test you want -- but rarely by accident, so keep the spec's stages
narrow.  Counters are per-process: a restarted worker re-rolls its schedule
from the seed with fresh draw counters (deterministic given a deterministic
kill schedule, since the incarnation's draws depend only on the plan).
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass

from .errors import DeadlineExceeded, FatalError, ReplyDropped, RetriableError

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "clear_fault_plan",
    "install_fault_plan",
    "stable_uniform",
    "FAULT_PLAN_ENV",
]

#: Environment variable holding a spec string for codeless chaos runs.
FAULT_PLAN_ENV = "OCTANT_FAULT_PLAN"

#: Stage names the pipeline fires checkpoints for (``*`` matches all).
#: ``reply`` is the sharded worker's outbound-frame boundary (the only place
#: ``drop_reply`` is meaningful).
STAGES = ("prepare", "assemble", "planarize", "solve", "ingest", "dispatch", "reply")

_ERROR_KINDS = ("retriable", "fatal", "deadline", "none")

#: Process-level fault kinds (see module docstring); valid wherever an error
#: kind is, but they act on the whole process instead of raising a typed
#: error up the ladder.
_PROCESS_KINDS = ("kill", "hang", "drop_reply")

#: How long a ``hang`` fault sleeps.  Effectively forever next to any
#: liveness deadline, yet bounded so an unsupervised chaos run terminates.
HANG_SECONDS = 3600.0


def stable_uniform(*parts: object) -> float:
    """A uniform [0, 1) draw that is a pure function of ``parts``.

    Stable across processes, platforms and ``PYTHONHASHSEED`` (``hash()`` of
    strings is randomized per process; a keyed digest is not), which is what
    makes fault schedules and retry jitter reproducible.
    """
    text = "|".join(repr(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where it fires, how often, and what it does."""

    stage: str
    probability: float = 1.0
    #: ``retriable``/``fatal``/``deadline`` raise the corresponding typed
    #: error; ``none`` makes the rule a pure latency spike.
    error: str = "retriable"
    #: Sleep injected before the error (seconds); models a slow stage.
    latency_s: float = 0.0
    #: Stop firing after this many injections (``None``: unlimited).  Lets a
    #: schedule express "the first solve fails, the retry succeeds".
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.stage != "*" and self.stage not in STAGES:
            raise ValueError(f"unknown fault stage {self.stage!r}; expected one of {STAGES} or '*'")
        if self.error not in _ERROR_KINDS and self.error not in _PROCESS_KINDS:
            raise ValueError(
                f"unknown fault error kind {self.error!r}; expected one of "
                f"{_ERROR_KINDS + _PROCESS_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.probability}")


class FaultPlan:
    """A deterministic schedule of injected faults, plus its injection counters."""

    def __init__(self, specs: "list[FaultSpec] | tuple[FaultSpec, ...]", seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        #: Draw counters keyed ``(rule index, stage, key)``; the count is the
        #: ``n`` fed to the stable hash, so repeated attempts re-roll.
        self._draws: dict[tuple[int, str, object], int] = {}
        #: Injections consumed per rule (enforces ``limit``).
        self._fired: dict[int, int] = {}
        #: Observability counters per stage.
        self.injected_errors: dict[str, int] = {}
        self.injected_delays: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse the compact spec grammar (see module docstring)."""
        seed = 0
        specs: list[FaultSpec] = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            stage, _, body = clause.partition(":")
            stage = stage.strip()
            fields: dict[str, object] = {}
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                key, _, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "p":
                    fields["probability"] = float(value)
                elif key == "error":
                    fields["error"] = value
                elif key == "latency_ms":
                    fields["latency_s"] = float(value) / 1000.0
                elif key == "limit":
                    fields["limit"] = int(value)
                else:
                    raise ValueError(f"unknown fault spec field {key!r} in {clause!r}")
            specs.append(FaultSpec(stage=stage, **fields))
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls, env: str = FAULT_PLAN_ENV) -> "FaultPlan | None":
        """The plan configured via the environment, or ``None``."""
        text = os.environ.get(env, "").strip()
        if not text:
            return None
        return cls.from_spec(text)

    # ------------------------------------------------------------------ #
    # Firing
    # ------------------------------------------------------------------ #
    def fire(self, stage: str, key: object = None) -> None:
        """Run every matching rule for one stage-boundary crossing.

        Raises the rule's typed error when the deterministic draw lands
        under its probability (after sleeping its latency spike, if any).
        """
        for index, spec in enumerate(self.specs):
            if spec.stage != "*" and spec.stage != stage:
                continue
            with self._lock:
                if spec.limit is not None and self._fired.get(index, 0) >= spec.limit:
                    continue
                counter_key = (index, stage, key)
                n = self._draws.get(counter_key, 0)
                self._draws[counter_key] = n + 1
            if stable_uniform(self.seed, index, stage, key, n) >= spec.probability:
                continue
            with self._lock:
                if spec.limit is not None:
                    if self._fired.get(index, 0) >= spec.limit:
                        continue
                    self._fired[index] = self._fired.get(index, 0) + 1
                if spec.latency_s > 0:
                    self.injected_delays[stage] = self.injected_delays.get(stage, 0) + 1
                if spec.error != "none":
                    self.injected_errors[stage] = self.injected_errors.get(stage, 0) + 1
            if spec.latency_s > 0:
                time.sleep(spec.latency_s)
            if spec.error == "none":
                continue
            message = f"injected {spec.error} fault at stage {stage!r}"
            if spec.error == "kill":
                # Hard crash: no cleanup, no atexit, no finally blocks --
                # the same signature as the OOM killer or a segfault, which
                # is exactly what the supervisor must survive.
                if hasattr(signal, "SIGKILL"):
                    os.kill(os.getpid(), signal.SIGKILL)
                os._exit(137)
            if spec.error == "hang":
                time.sleep(HANG_SECONDS)
                continue
            if spec.error == "drop_reply":
                raise ReplyDropped(message, stage=stage)
            if spec.error == "retriable":
                raise RetriableError(message, stage=stage)
            if spec.error == "fatal":
                raise FatalError(message, stage=stage)
            raise DeadlineExceeded(message, stage=stage)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        """Injection counters, for ``cache_stats()["resilience"]["faults"]``."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": len(self.specs),
                "errors": dict(sorted(self.injected_errors.items())),
                "delays": dict(sorted(self.injected_delays.items())),
            }

    def describe(self) -> str:
        """The plan as a spec string (round-trips through :meth:`from_spec`)."""
        parts = [f"seed={self.seed}"]
        for spec in self.specs:
            fields = [f"p={spec.probability:g}", f"error={spec.error}"]
            if spec.latency_s:
                fields.append(f"latency_ms={spec.latency_s * 1000:g}")
            if spec.limit is not None:
                fields.append(f"limit={spec.limit}")
            parts.append(f"{spec.stage}:{','.join(fields)}")
        return ";".join(parts)

    # Counters hold a lock, which does not pickle; the plan itself (specs +
    # seed) ships to process-pool workers, each restarting its own counters.
    def __getstate__(self):
        return {"specs": self.specs, "seed": self.seed}

    def __setstate__(self, state):
        self.__init__(state["specs"], seed=state["seed"])


# --------------------------------------------------------------------------- #
# Global activation (scoped activation lives in repro.resilience.deadline)
# --------------------------------------------------------------------------- #
_GLOBAL_PLAN: FaultPlan | None = None
_ENV_CHECKED = False
_GLOBAL_LOCK = threading.Lock()


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previously installed plan."""
    global _GLOBAL_PLAN, _ENV_CHECKED
    with _GLOBAL_LOCK:
        previous = _GLOBAL_PLAN
        _GLOBAL_PLAN = plan
        _ENV_CHECKED = True  # an explicit install overrides the env default
    return previous


def clear_fault_plan() -> None:
    """Remove the process-wide plan (the env default stays overridden)."""
    install_fault_plan(None)


def active_fault_plan() -> FaultPlan | None:
    """The process-wide plan, lazily seeded from ``OCTANT_FAULT_PLAN``."""
    global _GLOBAL_PLAN, _ENV_CHECKED
    if not _ENV_CHECKED:
        with _GLOBAL_LOCK:
            if not _ENV_CHECKED:
                _GLOBAL_PLAN = FaultPlan.from_env()
                _ENV_CHECKED = True
    return _GLOBAL_PLAN

"""Per-request deadlines, cooperative cancellation, and stage checkpoints.

The pipeline is CPU-bound synchronous Python running on executor threads, so
cancellation cannot be preemptive -- it has to be *cooperative*: the work
itself must look up "should I still be running?" at natural boundaries.
Those boundaries already exist: the stage transitions that
:class:`~repro.core.pipeline.PipelineStats` times (prepare, assemble,
planarize, solve) plus ingest and executor dispatch.  Each of them calls
:func:`checkpoint`, which

1. raises :class:`~repro.resilience.errors.OperationCancelled` when the
   request's :class:`CancelToken` was cancelled (caller timeout, service
   shutdown),
2. raises :class:`~repro.resilience.errors.DeadlineExceeded` when the
   request's :class:`Deadline` expired, and
3. fires the active :class:`~repro.resilience.faults.FaultPlan`, if any.

Deadline, token and plan travel in a thread-local :class:`resilience_scope`
stack: the serving executor opens a scope around each request's work, nested
scopes inherit what they don't override, and code outside any scope (batch
studies, direct pipeline use) pays two attribute reads per checkpoint.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from .errors import DeadlineExceeded, OperationCancelled
from .faults import FaultPlan, active_fault_plan

__all__ = [
    "CancelToken",
    "Deadline",
    "checkpoint",
    "current_scope",
    "resilience_scope",
]


class Deadline:
    """A monotonic-clock expiry instant."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at


class CancelToken:
    """A one-way cancellation flag with a reason, shared across threads."""

    __slots__ = ("_event", "reason")

    def __init__(self):
        self._event = threading.Event()
        self.reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; the first reason recorded wins."""
        if not self._event.is_set():
            self.reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


@dataclass
class _Scope:
    deadline: Deadline | None
    token: CancelToken | None
    plan: FaultPlan | None


_LOCAL = threading.local()


def _stack() -> list[_Scope]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_scope() -> _Scope | None:
    """The innermost active scope on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def resilience_scope(
    deadline: Deadline | None = None,
    token: CancelToken | None = None,
    plan: FaultPlan | None = None,
):
    """Activate deadline/token/plan for the current thread.

    Arguments left ``None`` inherit from the enclosing scope, so a service
    can open an outer plan-only scope around a whole dispatch and an inner
    per-request scope that adds that request's deadline and token.
    """
    outer = current_scope()
    if outer is not None:
        deadline = deadline if deadline is not None else outer.deadline
        token = token if token is not None else outer.token
        plan = plan if plan is not None else outer.plan
    stack = _stack()
    stack.append(_Scope(deadline, token, plan))
    try:
        yield stack[-1]
    finally:
        stack.pop()


def checkpoint(stage: str, key: object = None) -> None:
    """The cooperative stage-boundary check (see module docstring).

    ``key`` identifies the unit of work (typically the target id) so fault
    draws are independent per target and reproducible regardless of thread
    interleaving.
    """
    scope = current_scope()
    if scope is not None:
        token = scope.token
        if token is not None and token.cancelled:
            raise OperationCancelled(
                f"request cancelled ({token.reason}) at stage {stage!r}",
                stage=stage,
                reason=token.reason,
            )
        deadline = scope.deadline
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(
                f"deadline expired at stage {stage!r}", stage=stage
            )
        plan = scope.plan if scope.plan is not None else active_fault_plan()
    else:
        plan = active_fault_plan()
    if plan is not None:
        plan.fire(stage, key)

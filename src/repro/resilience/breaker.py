"""Per-stage circuit breakers: stop hammering a stage that keeps failing.

Classic three-state machine, one breaker per ``stage:engine`` key:

* **closed** -- normal operation; consecutive failures are counted and any
  success resets the count.
* **open** -- entered after ``failure_threshold`` consecutive failures;
  every :meth:`~CircuitBreaker.allow` is refused (the serving ladder skips
  straight to the next rung) until ``recovery_s`` has elapsed.
* **half-open** -- after the recovery window one *probe* attempt is let
  through; its success closes the breaker, its failure re-opens it for
  another full recovery window.

The clock is injectable so tests drive the state machine without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["BreakerConfig", "CircuitBreaker", "BreakerBoard"]


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of every breaker on a board."""

    enabled: bool = True
    #: Consecutive failures that trip the breaker open.
    failure_threshold: int = 5
    #: Seconds the breaker stays open before allowing a half-open probe.
    recovery_s: float = 30.0


class CircuitBreaker:
    """One stage's breaker.  Thread-safe; see module docstring."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        #: Lifetime counters for observability.
        self.opens = 0
        self.failures = 0
        self.successes = 0
        self.refusals = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May an attempt proceed right now?

        In the open state this flips to half-open once the recovery window
        has elapsed and admits exactly one probe; concurrent callers during
        the probe are refused.
        """
        if not self.config.enabled:
            return True
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.config.recovery_s:
                    self._state = "half-open"
                    self._probe_outstanding = True
                    return True
                self.refusals += 1
                return False
            # half-open: one probe at a time
            if self._probe_outstanding:
                self.refusals += 1
                return False
            self._probe_outstanding = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._state = "closed"
            self._probe_outstanding = False

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._state == "half-open" or (
                self._state == "closed"
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_outstanding = False
                self.opens += 1

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "failures": self.failures,
                "successes": self.successes,
                "refusals": self.refusals,
            }


class BreakerBoard:
    """A lazy registry of named breakers sharing one configuration."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(self.config, self._clock)
                self._breakers[name] = breaker
            return breaker

    def snapshot(self) -> dict[str, dict[str, object]]:
        with self._lock:
            items = list(self._breakers.items())
        return {name: breaker.snapshot() for name, breaker in sorted(items)}

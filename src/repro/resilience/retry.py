"""Retry with jittered exponential backoff, deterministic per request.

The policy object is what the serving tier consults wherever it used to make
an ad-hoc "try again" decision -- the per-target retry of a retriable stage
fault, and the micro-batch "retry each request individually" fallback that
predates this module (now counted and bounded by the same policy).

Jitter is derived from :func:`~repro.resilience.faults.stable_uniform` over
``(seed, key, attempt)`` rather than a shared RNG: two runs of the same
fault schedule sleep the same delays, which keeps the availability benchmark
and chaos tests reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from .faults import stable_uniform

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a unit of work, and how long to wait between.

    ``max_attempts`` counts the first try: ``2`` means one retry.  Delays
    grow geometrically from ``base_delay_s`` by ``multiplier`` and are capped
    at ``max_delay_s``; ``jitter`` spreads each delay uniformly over
    ``[delay * (1 - jitter), delay * (1 + jitter)]`` so synchronized clients
    do not retry in lockstep.
    """

    max_attempts: int = 2
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.05
    jitter: float = 0.5
    #: Seed of the deterministic jitter (combined with the per-request key).
    seed: int = 0

    def retries_left(self, attempt: int) -> bool:
        """True when a failure on 0-based ``attempt`` should be retried."""
        return attempt + 1 < max(1, self.max_attempts)

    def delay_s(self, attempt: int, key: object = None) -> float:
        """The backoff before retrying after 0-based ``attempt`` failed."""
        delay = min(
            self.base_delay_s * (self.multiplier ** attempt), self.max_delay_s
        )
        if self.jitter > 0:
            u = stable_uniform(self.seed, "retry", key, attempt)
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return max(0.0, delay)

"""The sharded tier's wire protocol: length-prefixed pickle frames.

Orchestrator and worker processes speak a tiny framed protocol over
``multiprocessing`` pipes (the framing is transport-agnostic -- the same
bytes work over a socket).  One frame is::

    +-------+---------+------+----------------------+------------------+
    | magic | version | kind | payload length (u32) | payload (pickle) |
    | 2 B   | 1 B     | 1 B  | 4 B big-endian       | length bytes     |
    +-------+---------+------+----------------------+------------------+

``magic`` is ``b"O8"``; ``version`` is :data:`PROTOCOL_VERSION`; ``kind``
is the message-class code from :data:`FRAME_KINDS` and must match the
pickled payload's class (a cheap integrity check: a truncated or reordered
stream fails loudly instead of dispatching the wrong handler).  The payload
is a pickle of one of the frozen message dataclasses below -- every field
of every message is picklable by construction (dataset snapshots and
:class:`~repro.resilience.faults.FaultPlan` are picklable by design,
estimates are plain dataclasses).

Why pickle?  The peers are trusted same-host processes forked/spawned by
the orchestrator itself (this is the scale-*up* tier; the untrusted network
front-end belongs above it), and every payload type already travels through
``multiprocessing`` machinery elsewhere in the repo.  The explicit framing
-- rather than ``Connection.send``'s implicit pickling -- buys three
things: a documented, versioned format, payload-class validation before
dispatch, and the freedom to move a shard to a socket without touching
either endpoint's logic.

Request/reply correlation is by ``request_id``, unique per orchestrator
worker-handle; unsolicited frames (``Hello``, ``Heartbeat``) carry no id.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.estimate import LocationEstimate
from ..network.dataset import IngestRecord

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_KINDS",
    "FrameError",
    "encode_frame",
    "decode_frame",
    "send_message",
    "recv_message",
    "Hello",
    "Heartbeat",
    "LocalizeRequest",
    "LocalizeReply",
    "IngestRequest",
    "IngestReply",
    "HealthRequest",
    "HealthReply",
    "ShutdownRequest",
    "ShutdownReply",
    "ErrorReply",
]

MAGIC = b"O8"
PROTOCOL_VERSION = 1
_HEADER = struct.Struct("!2sBBI")  # magic, version, kind, payload length


class FrameError(RuntimeError):
    """A malformed frame: bad magic, unknown kind, or kind/payload mismatch."""


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Hello:
    """Worker -> orchestrator, once, when the worker is ready to serve."""

    shard_id: int
    pid: int
    incarnation: int
    version: int  # dataset version after bootstrap replay


@dataclass(frozen=True)
class Heartbeat:
    """Worker -> orchestrator, periodically, from the worker's frame loop.

    Sent from the *serving* loop (not a side thread) so a hung or livelocked
    worker stops heartbeating and the supervisor's liveness deadline reaps
    it.  Carries a compact readiness summary so ``cluster.health()`` can
    report per-shard state without a synchronous round trip.
    """

    shard_id: int
    incarnation: int
    version: int
    served: int
    breakers_open: tuple[str, ...] = ()


@dataclass(frozen=True)
class LocalizeRequest:
    """Localize one target at one pinned dataset version."""

    request_id: int
    target_id: str
    landmark_pool: tuple[str, ...] | None = None
    #: Dataset version the answer must be served at (the cluster-committed
    #: version at dispatch time); ``None`` means "whatever is current".
    version: int | None = None
    #: Remaining work budget, forwarded into the worker's per-request
    #: deadline (seconds); ``None`` means unbounded.
    deadline_s: float | None = None


@dataclass(frozen=True)
class LocalizeReply:
    request_id: int
    estimate: LocationEstimate
    #: Version the answer was actually served at.
    version: int


@dataclass(frozen=True)
class IngestRequest:
    """Replicated ingest fan-out: apply one captured record."""

    request_id: int
    record: IngestRecord
    #: Version the worker must be at *after* applying (sanity check of the
    #: replication stream: base + 1).
    expect_version: int | None = None


@dataclass(frozen=True)
class IngestReply:
    request_id: int
    version: int
    touched: frozenset[str]


@dataclass(frozen=True)
class HealthRequest:
    request_id: int


@dataclass(frozen=True)
class HealthReply:
    request_id: int
    shard_id: int
    liveness: Mapping[str, Any]
    readiness: Mapping[str, Any]
    #: Dataset versions the worker can still answer at (current + retained).
    retained_versions: tuple[int, ...] = ()
    faults: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class ShutdownRequest:
    request_id: int


@dataclass(frozen=True)
class ShutdownReply:
    request_id: int
    served: int


@dataclass(frozen=True)
class ErrorReply:
    """Worker-side dispatch failure (not a per-target failed estimate).

    ``error_class`` follows the resilience taxonomy; ``"version"`` is the
    one cluster-specific class: the requested pinned version is neither
    current nor retained (the orchestrator fails over to a peer that still
    retains it).
    """

    request_id: int
    error: str
    error_class: str = "fatal"
    details: Mapping[str, Any] = field(default_factory=dict)


#: kind code -> message class.  Codes are part of the wire format: append,
#: never renumber.
FRAME_KINDS: dict[int, type] = {
    1: Hello,
    2: Heartbeat,
    3: LocalizeRequest,
    4: LocalizeReply,
    5: IngestRequest,
    6: IngestReply,
    7: HealthRequest,
    8: HealthReply,
    9: ShutdownRequest,
    10: ShutdownReply,
    11: ErrorReply,
}
_KIND_CODES = {cls: code for code, cls in FRAME_KINDS.items()}


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def encode_frame(message: object) -> bytes:
    """Serialize one message to a self-describing frame."""
    code = _KIND_CODES.get(type(message))
    if code is None:
        raise FrameError(f"not a protocol message: {type(message).__name__}")
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, code, len(payload)) + payload


def decode_frame(data: bytes) -> object:
    """Parse one frame; validates magic, version, length and payload class."""
    if len(data) < _HEADER.size:
        raise FrameError(f"truncated frame header ({len(data)} bytes)")
    magic, version, code, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise FrameError(f"unsupported protocol version {version}")
    cls = FRAME_KINDS.get(code)
    if cls is None:
        raise FrameError(f"unknown frame kind {code}")
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise FrameError(f"frame length mismatch: header {length}, got {len(payload)}")
    message = pickle.loads(payload)
    if type(message) is not cls:
        raise FrameError(
            f"frame kind {code} ({cls.__name__}) carried a "
            f"{type(message).__name__} payload"
        )
    return message


def send_message(conn, message: object) -> None:
    """Encode and send one frame on a ``multiprocessing`` connection."""
    conn.send_bytes(encode_frame(message))


def recv_message(conn, timeout: float | None = None) -> object | None:
    """Receive one frame; ``None`` when ``timeout`` elapses with no frame.

    Raises ``EOFError``/``OSError`` when the peer is gone -- callers treat
    that as the peer's death, which is exactly what it means.
    """
    if timeout is not None and not conn.poll(timeout):
        return None
    return decode_frame(conn.recv_bytes())

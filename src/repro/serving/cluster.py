"""Sharded multi-process serving tier: N workers, one consistent answer.

:class:`ShardedLocalizationService` scales the single-process
:class:`~repro.serving.service.LocalizationService` *up* (same host, more
processes) while surviving the failures one process cannot: a worker that
crashes, is SIGKILLed, hangs, or silently drops replies.  The design in one
paragraph:

**Sharding is for cache warmth, replication is for survival.**  Targets are
consistent-hash-sharded (blake2b ring with virtual nodes) so each worker's
prepared-target and geometry caches stay hot for *its* keys, but every
worker holds the **full** replicated dataset -- ``ingest()`` fans out to all
live workers.  Any peer can therefore answer any key, which is what makes
failover and interim re-sharding (routing a dead worker's range along the
ring to live replicas) answer-preserving rather than answer-losing.

**Version-pinned dispatch.**  The orchestrator commits a dataset version
only after the ingest fan-out is acknowledged, and every dispatch pins the
committed version observed at send time (``localize_many`` pins one version
for the whole batch).  Workers answer pinned requests from a small retained
set of pre-ingest localizers, so a batch that straddles an ingest -- or
fails over mid-flight from a worker that applied the ingest to one that
hasn't -- is still served from a single consistent snapshot lineage, never a
mix.

**Supervision.**  A monitor thread (:class:`~repro.serving.supervisor.
Supervisor`) watches heartbeats and exit codes, SIGKILLs hung workers,
restarts corpses on bounded exponential backoff, and replays the ingests a
rebooted worker missed before it serves again.  Request-path protection is
layered on top: per-shard circuit breakers
(:class:`~repro.resilience.breaker.BreakerBoard`), hedged failover along the
ring, and -- when every worker is unreachable -- a lazily started in-process
service over the orchestrator's own live dataset, reusing the PR 7
degradation ladder.  ``ClusterConfig(supervise=False)`` turns the whole
umbrella off (no restarts, no failover, no fallback): the availability gap
between the two modes is exactly what ``benchmarks/bench_load.py`` measures.

Zero-fault answers are bit-identical to the single-process service: workers
run the unmodified engine stack, and the orchestrator only *annotates*
estimates (``details["cluster"]``), never recomputes them.
"""

from __future__ import annotations

import asyncio
import bisect
import threading
import time
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Iterable, Mapping, Sequence

from ..core.batch import failed_estimate
from ..core.config import OctantConfig
from ..core.estimate import LocationEstimate
from ..network.dataset import IngestRecord, MeasurementDataset
from ..network.log import MeasurementLog
from ..resilience import (
    BreakerBoard,
    Deadline,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
)
from .protocol import (
    ErrorReply,
    HealthRequest,
    IngestRequest,
    LocalizeRequest,
    ShutdownRequest,
)
from .supervisor import Supervisor, WorkerDied, WorkerHandle, WorkerUnavailable
from .worker import WorkerBootstrap, worker_main

__all__ = ["ClusterConfig", "ClusterStats", "ShardedLocalizationService"]

#: Replicated-ingest records kept for catch-up replay; a worker restarting
#: after a longer outage gets a fresh snapshot instead (it always does --
#: respawn snapshots the live dataset -- so the log only serves workers that
#: boot *while* ingests land).
INGEST_LOG_LIMIT = 64


# --------------------------------------------------------------------------- #
# Configuration / stats
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ClusterConfig:
    """Topology and supervision knobs of the sharded tier."""

    #: Worker process count (= shard count).
    shards: int = 2
    #: Virtual nodes per shard on the consistent-hash ring.
    virtual_nodes: int = 64
    #: ``multiprocessing`` start method (``"fork"``/``"spawn"``/``None`` for
    #: the platform default).  The fault plan and all bootstrap state travel
    #: inside :class:`WorkerBootstrap`, so behavior is identical under both.
    start_method: str | None = None
    #: The supervision umbrella: monitor thread, backoff restarts, breaker
    #: gating, ring failover, and the in-process last-resort fallback.
    #: ``False`` strips all of it -- a crashed shard stays down and its
    #: requests fail -- which is the unsupervised baseline the availability
    #: benchmark compares against.
    supervise: bool = True
    #: Worker heartbeat period (sent from the worker's serving loop).
    heartbeat_interval_s: float = 0.1
    #: Heartbeat silence after which a live worker is declared hung.
    liveness_deadline_s: float = 3.0
    #: Budget for a spawned worker to report ready (cold engine warm-up).
    starting_deadline_s: float = 120.0
    #: Supervisor poll period.
    poll_interval_s: float = 0.05
    #: Per-shard attempt budget before failing over to the next replica.
    attempt_timeout_s: float = 10.0
    #: Bounded exponential backoff for worker restarts; ``max_attempts``
    #: consecutive failed restarts abandon the shard to its replicas.
    restart: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=8, base_delay_s=0.05, max_delay_s=2.0, jitter=0.25
        )
    )
    #: A restarted worker live this long resets its backoff budget.
    stable_after_s: float = 5.0
    #: Retired pre-ingest localizers each worker keeps answerable.
    snapshot_retention: int = 4


@dataclass
class ClusterStats:
    """Counters the orchestrator accumulates over its lifetime."""

    served: int = 0
    failed: int = 0
    #: Requests answered by a non-primary shard (any failover hop taken).
    failovers: int = 0
    #: Failover hops caused by a peer not retaining the pinned version.
    version_misses: int = 0
    #: Requests answered by the in-process last-resort service.
    local_fallbacks: int = 0
    ingests: int = 0


# --------------------------------------------------------------------------- #
# Consistent-hash ring
# --------------------------------------------------------------------------- #
def _hash64(text: str) -> int:
    return int.from_bytes(blake2b(text.encode(), digest_size=8).digest(), "big")


class _HashRing:
    """blake2b consistent-hash ring; route = distinct shards in ring order."""

    def __init__(self, shards: int, virtual_nodes: int):
        self.shards = shards
        points = []
        for shard in range(shards):
            for vnode in range(virtual_nodes):
                points.append((_hash64(f"shard:{shard}:vnode:{vnode}"), shard))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def route(self, key: str) -> tuple[int, ...]:
        """All shards, primary first, in ring-successor (failover) order."""
        index = bisect.bisect_right(self._keys, _hash64(key))
        order: list[int] = []
        seen: set[int] = set()
        count = len(self._points)
        for step in range(count):
            shard = self._points[(index + step) % count][1]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
                if len(order) == self.shards:
                    break
        return tuple(order)


# --------------------------------------------------------------------------- #
# Orchestrator
# --------------------------------------------------------------------------- #
class ShardedLocalizationService:
    """Consistent-hash-sharded, crash-surviving front-end over worker processes.

    Usage mirrors :class:`LocalizationService`::

        cluster = ShardedLocalizationService(dataset, config,
                                             cluster=ClusterConfig(shards=2))
        async with cluster:
            estimate = await cluster.localize("host-sea")
            await cluster.ingest(hosts=[record], pings=new_pings)
            print(cluster.health()["shards"])
    """

    def __init__(
        self,
        dataset: MeasurementDataset,
        config: OctantConfig | None = None,
        *,
        cluster: ClusterConfig | None = None,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        prepared_cache_size: int = 128,
    ):
        if dataset.is_snapshot:
            raise ValueError("serve the live dataset, not a snapshot")
        self.cluster = cluster or ClusterConfig()
        if self.cluster.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self._live = dataset
        self.config = config or OctantConfig()
        self.resilience = (
            resilience if resilience is not None else self.config.resilience
        )
        self.fault_plan = fault_plan
        self.prepared_cache_size = prepared_cache_size
        self.stats = ClusterStats()
        self._ring = _HashRing(self.cluster.shards, self.cluster.virtual_nodes)
        self._handles = [WorkerHandle(shard) for shard in range(self.cluster.shards)]
        self._supervisor: Supervisor | None = None
        self._ctx = None
        self.started = False
        self._closing = False
        #: Version the whole cluster is known to serve; bumped only after an
        #: ingest fan-out is acknowledged.  Dispatches pin this.
        self._committed_version = dataset.version
        #: ``(version, record)`` tail of replicated ingests, for catch-up.
        self._ingest_log: list[tuple[int, IngestRecord]] = []
        #: Serializes membership-sensitive transitions: ingest recipient
        #: selection + log append vs. a syncing worker's final live flip.
        self._membership_lock = threading.Lock()
        #: Guards the live dataset against ingest-apply vs. restart-snapshot
        #: races (the supervisor thread snapshots it for bootstraps).
        self._dataset_lock = threading.Lock()
        self._ingest_gate: asyncio.Lock | None = None
        self._local_gate: asyncio.Lock | None = None
        self._local = None  # lazily started in-process LocalizationService
        #: Write-optimized replicated ingest: ``ingest_nowait`` appends ride
        #: this log's delta buffer; the background compactor coalesces a
        #: burst into one merged record and replicates it as a single
        #: fan-out frame (one version bump cluster-wide per compaction).
        #: ``committed_version`` semantics are unchanged -- the compactor
        #: advances it only after every live recipient acknowledged, exactly
        #: like the synchronous :meth:`ingest`.
        self.measurement_log = MeasurementLog(self._replicate_record)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ShardedLocalizationService":
        if self.started:
            return self
        import multiprocessing

        self._ctx = multiprocessing.get_context(self.cluster.start_method)
        self._ingest_gate = asyncio.Lock()
        self._local_gate = asyncio.Lock()
        for handle in self._handles:
            process, conn = self._spawn_worker(handle.shard_id, incarnation=1)
            handle.attach(process, conn, incarnation=1)
        if self.cluster.supervise:
            self._supervisor = Supervisor(
                self._handles,
                spawn_worker=self._spawn_worker,
                sync_worker=self._sync_worker,
                restart_policy=self.cluster.restart,
                liveness_deadline_s=self.cluster.liveness_deadline_s,
                starting_deadline_s=self.cluster.starting_deadline_s,
                stable_after_s=self.cluster.stable_after_s,
                poll_interval_s=self.cluster.poll_interval_s,
            )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._await_ready)
        if self._supervisor is not None:
            self._supervisor.start()
        self.measurement_log.start()
        self.started = True
        return self

    def _await_ready(self) -> None:
        """Block until every first-incarnation worker is live (or dead)."""
        deadline = time.monotonic() + self.cluster.starting_deadline_s
        for handle in self._handles:
            handle.ready.wait(max(0.0, deadline - time.monotonic()))
            if handle.state == "syncing":
                try:
                    self._sync_worker(handle)
                except Exception as exc:
                    handle.mark_dead(f"catch-up failed: {exc}")
                    handle.kill(join_timeout=2.0)
        live = [h.shard_id for h in self._handles if h.state == "live"]
        if not live:
            reasons = {h.shard_id: h.death_reason or h.state for h in self._handles}
            raise RuntimeError(f"no worker became ready: {reasons}")

    async def stop(self) -> None:
        if not self.started and self._ctx is None:
            return
        self._closing = True
        loop = asyncio.get_running_loop()
        # Drain buffered appends (each compaction replicates and awaits
        # acks) before tearing down the workers they replicate to.
        await loop.run_in_executor(None, self.measurement_log.stop)
        if self._supervisor is not None:
            self._supervisor.stop()
        for handle in self._handles:
            try:
                _, future = handle.call(
                    lambda rid: ShutdownRequest(request_id=rid),
                    states=("live", "syncing", "starting"),
                )
                await asyncio.wait_for(asyncio.wrap_future(future), timeout=5.0)
            except Exception:  # noqa: BLE001 - shutdown is best-effort
                pass
            handle.mark_stopped()
            await loop.run_in_executor(None, handle.kill)
            conn = handle.conn
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        if self._local is not None:
            await self._local.stop()
        self.started = False

    async def __aenter__(self) -> "ShardedLocalizationService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _ensure_started(self) -> None:
        if not self.started or self._closing:
            raise RuntimeError("cluster is not accepting requests")

    # ------------------------------------------------------------------ #
    # Worker lifecycle plumbing (called from the supervisor thread too)
    # ------------------------------------------------------------------ #
    def _spawn_worker(self, shard_id: int, incarnation: int):
        """Start one worker process; returns ``(process, parent_conn)``."""
        with self._dataset_lock:
            snapshot = self._live.snapshot()
        bootstrap = WorkerBootstrap(
            shard_id=shard_id,
            incarnation=incarnation,
            dataset=snapshot,
            config=self.config,
            resilience=self.resilience,
            fault_plan=self.fault_plan,
            heartbeat_interval_s=self.cluster.heartbeat_interval_s,
            prepared_cache_size=self.prepared_cache_size,
            snapshot_retention=self.cluster.snapshot_retention,
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, bootstrap),
            name=f"octant-shard{shard_id}-i{incarnation}",
            daemon=True,
        )
        process.start()
        # The parent must drop its copy of the child end, or worker death
        # would never surface as pipe EOF.
        child_conn.close()
        return process, parent_conn

    def _sync_worker(self, handle: WorkerHandle) -> None:
        """Replay the ingests a booting worker missed, then flip it live.

        Runs on the supervisor thread (or the start path); reply futures are
        resolved by the handle's reader thread, so blocking waits here do
        not self-deadlock.  The final ``syncing -> live`` flip happens under
        the membership lock, atomically with respect to ingest recipient
        selection: a worker is either caught up and sees every subsequent
        fan-out, or still syncing and will replay it -- never neither.
        """
        hello = handle.hello
        if hello is None:
            return
        worker_version = hello.version
        while True:
            with self._membership_lock:
                missing = [
                    entry for entry in self._ingest_log if entry[0] > worker_version
                ]
                if not missing:
                    if worker_version != self._committed_version:
                        raise RuntimeError(
                            f"ingest log gap: worker at {worker_version}, "
                            f"cluster committed {self._committed_version}"
                        )
                    if not handle.mark_live():
                        return  # died (or stopped) while we were syncing
                    return
                if missing[0][0] != worker_version + 1:
                    raise RuntimeError(
                        f"ingest log gap: worker at {worker_version}, "
                        f"log starts at {missing[0][0]}"
                    )
            for version, record in missing:
                _, future = handle.call(
                    lambda rid, r=record, v=version: IngestRequest(
                        request_id=rid, record=r, expect_version=v
                    ),
                    states=("syncing",),
                )
                reply = future.result(timeout=self.cluster.attempt_timeout_s)
                if isinstance(reply, ErrorReply):
                    raise RuntimeError(f"catch-up ingest failed: {reply.error}")
                worker_version = reply.version

    def kill_worker(self, shard_id: int) -> int | None:
        """SIGKILL a shard's worker process (chaos hook for tests/benchmarks).

        Deliberately does *not* mark the handle dead -- detecting the corpse
        is the supervisor's job, which is the thing under test.
        """
        handle = self._handles[shard_id]
        process = handle.process
        if process is None or not process.is_alive():
            return None
        pid = process.pid
        process.kill()
        return pid

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def shard_for(self, target_id: str) -> int:
        """The primary shard a target routes to."""
        return self._ring.route(target_id)[0]

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    async def localize(
        self,
        target_id: str,
        landmark_pool: Sequence[str] | None = None,
        timeout: float | None = None,
        deadline_s: float | None = None,
    ) -> LocationEstimate:
        """Route one localization to its shard, failing over along the ring.

        Same contract as :meth:`LocalizationService.localize`: every request
        gets an estimate (possibly a recorded failure), ``timeout`` bounds
        the caller's wait, ``deadline_s`` bounds the work.  The answer is
        pinned to the cluster-committed dataset version observed here, no
        matter which replica (or fallback) ends up serving it.
        """
        self._ensure_started()
        coroutine = self._localize(
            target_id,
            tuple(landmark_pool) if landmark_pool is not None else None,
            deadline_s,
            self._committed_version,
        )
        if timeout is not None:
            return await asyncio.wait_for(coroutine, timeout)
        return await coroutine

    async def localize_many(
        self, target_ids: Iterable[str]
    ) -> dict[str, LocationEstimate]:
        """Localize several targets concurrently at ONE committed version.

        The version vector is captured once, before any dispatch: even if a
        replicated ``ingest()`` commits mid-batch, every answer -- including
        failover and retained-snapshot answers -- comes from the same
        dataset lineage point.
        """
        self._ensure_started()
        targets = list(target_ids)
        version = self._committed_version
        estimates = await asyncio.gather(
            *(self._localize(t, None, None, version) for t in targets)
        )
        return dict(zip(targets, estimates))

    async def _localize(
        self,
        target_id: str,
        landmark_pool: tuple[str, ...] | None,
        deadline_s: float | None,
        pinned_version: int,
    ) -> LocationEstimate:
        if deadline_s is None:
            deadline_s = self.resilience.deadline_s
        deadline = Deadline.after(deadline_s) if deadline_s is not None else None
        supervise = self.cluster.supervise
        order = self._ring.route(target_id)
        if not supervise:
            order = order[:1]  # no failover: the primary or nothing
        attempts: list[dict[str, Any]] = []
        last_error: BaseException | None = None
        for shard in order:
            handle = self._handles[shard]
            breaker = (
                self._breakers.get(f"shard:{shard}") if supervise else None
            )
            if breaker is not None and not breaker.allow():
                attempts.append({"shard": shard, "outcome": "breaker-open"})
                continue
            remaining = deadline.remaining() if deadline is not None else None
            if remaining is not None and remaining <= 0:
                last_error = TimeoutError(
                    f"deadline expired after {len(attempts)} attempt(s)"
                )
                break
            try:
                request_id, future = handle.call(
                    lambda rid: LocalizeRequest(
                        request_id=rid,
                        target_id=target_id,
                        landmark_pool=landmark_pool,
                        version=pinned_version,
                        deadline_s=remaining,
                    )
                )
            except WorkerUnavailable as exc:
                attempts.append({"shard": shard, "outcome": "unavailable"})
                last_error = exc
                continue
            # The worker enforces `remaining` itself (degrading if needed);
            # the orchestrator-side attempt budget is slightly larger so a
            # deadline is answered by the worker's ladder, while pure
            # silence (hang, dropped reply, corpse) still fails over.
            attempt_timeout = self.cluster.attempt_timeout_s
            if remaining is not None:
                attempt_timeout = min(attempt_timeout, remaining + 0.5)
            try:
                reply = await asyncio.wait_for(
                    asyncio.wrap_future(future), attempt_timeout
                )
            except asyncio.TimeoutError:
                handle.discard(request_id)
                if breaker is not None:
                    breaker.record_failure()
                attempts.append({"shard": shard, "outcome": "timeout"})
                last_error = TimeoutError(f"shard {shard} attempt timed out")
                continue
            except (WorkerDied, WorkerUnavailable) as exc:
                attempts.append({"shard": shard, "outcome": "died"})
                last_error = exc
                continue
            if isinstance(reply, ErrorReply):
                if reply.error_class == "version":
                    self.stats.version_misses += 1
                    attempts.append({"shard": shard, "outcome": "version-miss"})
                else:
                    if breaker is not None:
                        breaker.record_failure()
                    attempts.append(
                        {"shard": shard, "outcome": f"error:{reply.error_class}"}
                    )
                last_error = RuntimeError(reply.error)
                continue
            if breaker is not None:
                breaker.record_success()
            return self._finish(reply.estimate, shard, reply.version,
                                pinned_version, attempts)
        if supervise:
            return await self._local_fallback(
                target_id, landmark_pool, deadline, pinned_version, attempts
            )
        self.stats.failed += 1
        estimate = failed_estimate(
            target_id,
            "cluster",
            last_error if last_error is not None else "no live shard",
            error_type=type(last_error).__name__ if last_error else "unavailable",
        )
        estimate.details["cluster"] = {
            "shard": None,
            "pinned_version": pinned_version,
            "attempts": attempts,
        }
        return estimate

    def _finish(
        self,
        estimate: LocationEstimate,
        shard: int,
        version: int,
        pinned_version: int,
        attempts: list[dict[str, Any]],
    ) -> LocationEstimate:
        info: dict[str, Any] = {
            "shard": shard,
            "version": version,
            "pinned_version": pinned_version,
        }
        if attempts:
            info["attempts"] = attempts
            self.stats.failovers += 1
        estimate.details["cluster"] = info
        self.stats.served += 1
        return estimate

    async def _local_fallback(
        self,
        target_id: str,
        landmark_pool: tuple[str, ...] | None,
        deadline: Deadline | None,
        pinned_version: int,
        attempts: list[dict[str, Any]],
    ) -> LocationEstimate:
        """Last resort: answer in-process when every worker is unreachable.

        Reuses the single-process service (and through it the whole PR 7
        degradation ladder) over the orchestrator's live dataset.  Serves
        the *current* dataset version -- during a total worker outage,
        availability outranks version pinning; the answer is annotated so
        callers can tell.
        """
        self.stats.local_fallbacks += 1
        loop = asyncio.get_running_loop()
        async with self._local_gate:
            if self._local is None:
                from .service import LocalizationService

                service = LocalizationService(
                    self._live,
                    self.config,
                    workers=1,
                    prepared_cache_size=self.prepared_cache_size,
                    resilience=self.resilience,
                )
                await service.start()
                self._local = service
            service = self._local
            current = service._current
            if current is None or current.octant.dataset.version != self._live.version:
                # Cluster ingests bypass the fallback service; refresh its
                # snapshot before serving from it.
                await loop.run_in_executor(None, self._refresh_local)
        remaining = None
        if deadline is not None:
            remaining = max(0.05, deadline.remaining())
        estimate = await service.localize(
            target_id, landmark_pool, deadline_s=remaining
        )
        estimate.details["cluster"] = {
            "shard": None,
            "fallback": "local",
            "version": self._live.version,
            "pinned_version": pinned_version,
            "attempts": attempts,
        }
        self.stats.served += 1
        return estimate

    def _refresh_local(self) -> None:
        with self._dataset_lock:
            self._local._swap_localizer(self._local._build_localizer())

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    async def ingest(
        self,
        hosts: Iterable = (),
        pings: Iterable = (),
        traceroutes: Iterable = (),
        routers: Iterable = (),
        router_pings: Mapping[tuple[str, str], float] | None = None,
    ) -> frozenset[str]:
        """Replicated ingest: apply locally, fan out to every live worker.

        The cluster-committed version advances only after every recipient
        acknowledges (a recipient that fails to ack is declared dead and,
        under supervision, restarted from a post-ingest snapshot).  Requests
        dispatched while the fan-out is in flight keep pinning the previous
        committed version, which every worker still retains -- so there is
        no window where a batch can observe a half-replicated ingest.
        """
        self._ensure_started()
        async with self._ingest_gate:
            record = IngestRecord.capture(
                hosts=hosts,
                pings=pings,
                traceroutes=traceroutes,
                routers=routers,
                router_pings=router_pings,
            )
            loop = asyncio.get_running_loop()
            touched, version, sends = await loop.run_in_executor(
                None, self._commit_record, record
            )
            for handle, request_id, future in sends:
                try:
                    reply = await asyncio.wait_for(
                        asyncio.wrap_future(future),
                        timeout=self.cluster.attempt_timeout_s,
                    )
                except asyncio.TimeoutError:
                    handle.discard(request_id)
                    handle.mark_dead("ingest ack timeout")
                    handle.kill(join_timeout=2.0)
                    continue
                except (WorkerDied, WorkerUnavailable):
                    continue  # already marked dead; restart re-snapshots
                if isinstance(reply, ErrorReply):
                    handle.mark_dead(f"ingest rejected: {reply.error}")
                    handle.kill(join_timeout=2.0)
            # max(): a background compaction may have committed a later
            # version while this fan-out's acks were in flight.
            self._committed_version = max(self._committed_version, version)
            self.stats.ingests += 1
            return touched

    def _commit_record(self, record: IngestRecord):
        """Apply one record to the live dataset and send the fan-out frames.

        Runs on an executor thread.  Recipient selection, log append and the
        sends happen under the membership lock so a worker finishing its
        catch-up concurrently either receives this fan-out (it flipped live
        first) or replays it from the log (the append landed first) --
        never misses it.
        """
        with self._membership_lock:
            with self._dataset_lock:
                touched = record.apply(self._live)
                version = self._live.version
            self._ingest_log.append((version, record))
            del self._ingest_log[:-INGEST_LOG_LIMIT]
            sends = []
            for handle in self._handles:
                try:
                    request_id, future = handle.call(
                        lambda rid: IngestRequest(
                            request_id=rid, record=record, expect_version=version
                        )
                    )
                except WorkerUnavailable:
                    continue  # dead/starting/syncing: log or snapshot covers it
                sends.append((handle, request_id, future))
        return touched, version, sends

    def ingest_nowait(
        self,
        hosts: Iterable = (),
        pings: Iterable = (),
        traceroutes: Iterable = (),
        routers: Iterable = (),
        router_pings: Mapping[tuple[str, str], float] | None = None,
    ) -> int:
        """Append measurements to the replicated write log; returns their seq.

        The caller never blocks on matrix extension or worker round trips:
        the payload lands in the measurement log's buffer and the compactor
        replicates a merged record in the background.  ``committed_version``
        advances per compaction, after acknowledgement, exactly as
        :meth:`ingest`'s does; use :meth:`flush_ingest` to barrier.
        """
        self._ensure_started()
        return self.measurement_log.append(
            hosts=hosts,
            pings=pings,
            traceroutes=traceroutes,
            routers=routers,
            router_pings=router_pings,
        )

    async def flush_ingest(self, timeout: float | None = 30.0) -> int:
        """Await compaction+replication of everything appended so far."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.measurement_log.flush(timeout=timeout)
        )

    def _replicate_record(self, record: IngestRecord) -> int:
        """Measurement-log apply hook: commit + replicate one merged record.

        The synchronous twin of :meth:`ingest`'s fan-out (the compactor is a
        plain thread), reusing :meth:`_commit_record` for the
        membership-locked apply/log/send step and blocking on each ack
        future directly.  Ack failures follow the same policy: the recipient
        is declared dead (supervision restarts it from a post-ingest
        snapshot), never left silently stale.
        """
        touched, version, sends = self._commit_record(record)
        for handle, request_id, future in sends:
            try:
                reply = future.result(timeout=self.cluster.attempt_timeout_s)
            except TimeoutError:
                handle.discard(request_id)
                handle.mark_dead("ingest ack timeout")
                handle.kill(join_timeout=2.0)
                continue
            except (WorkerDied, WorkerUnavailable):
                continue  # already marked dead; restart re-snapshots
            if isinstance(reply, ErrorReply):
                handle.mark_dead(f"ingest rejected: {reply.error}")
                handle.kill(join_timeout=2.0)
        self._committed_version = max(self._committed_version, version)
        self.stats.ingests += 1
        return version

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def _breakers(self) -> BreakerBoard:
        board = getattr(self, "_breaker_board", None)
        if board is None:
            board = BreakerBoard(self.resilience.breaker)
            self._breaker_board = board
        return board

    @property
    def committed_version(self) -> int:
        return self._committed_version

    def health(self) -> dict[str, object]:
        """Cluster liveness/readiness: one summary row per shard.

        Cheap -- built from supervision state and the latest heartbeats, no
        worker round trips (see :meth:`health_detail` for those).
        """
        breaker_snaps = self._breakers.snapshot()
        shards: dict[str, dict[str, object]] = {}
        live = 0
        for handle in self._handles:
            if handle.state == "live":
                live += 1
            beat = handle.heartbeat
            age = handle.heartbeat_age()
            shards[str(handle.shard_id)] = {
                "state": handle.state,
                "pid": handle.pid,
                "incarnation": handle.incarnation,
                "restarts": handle.restarts,
                "death_reason": handle.death_reason,
                "heartbeat_age_s": None if age is None else round(age, 3),
                "version": (
                    beat.version
                    if beat is not None
                    else (handle.hello.version if handle.hello else None)
                ),
                "served": beat.served if beat is not None else 0,
                "worker_breakers_open": (
                    list(beat.breakers_open) if beat is not None else []
                ),
                "breaker": breaker_snaps.get(
                    f"shard:{handle.shard_id}", {"state": "closed"}
                ),
            }
        open_breakers = sorted(
            name for name, snap in breaker_snaps.items() if snap["state"] != "closed"
        )
        if not self.started or self._closing:
            status = "stopped"
        elif live == 0:
            status = "unavailable"
        elif live == len(self._handles) and not open_breakers:
            status = "ok"
        else:
            status = "degraded"
        supervisor = self._supervisor
        log_stats = self.measurement_log.stats()
        return {
            "status": status,
            "started": self.started,
            "supervised": self.cluster.supervise,
            "committed_version": self._committed_version,
            # Replicated write-plane backlog: appends not yet compacted into
            # a committed version, and the age of the oldest one.
            "ingest_pending": log_stats["pending"],
            "compaction_lag_s": round(float(log_stats["lag_seconds"]), 6),
            "ingest_log": log_stats,
            "live_shards": live,
            "shards": shards,
            "breakers_open": open_breakers,
            "restarts_total": supervisor.restarts_total if supervisor else 0,
            "abandoned_shards": sorted(supervisor.gave_up) if supervisor else [],
            "local_fallbacks": self.stats.local_fallbacks,
        }

    async def health_detail(self) -> dict[int, dict[str, object]]:
        """Deep per-shard probe: each worker's own liveness + readiness split.

        Unlike :meth:`health` this does a round trip per live shard,
        returning the worker-side
        :meth:`~repro.serving.service.LocalizationService.liveness` /
        :meth:`~repro.serving.service.LocalizationService.readiness` splits,
        retained versions and fault-injection counters.
        """
        self._ensure_started()
        out: dict[int, dict[str, object]] = {}
        for handle in self._handles:
            try:
                request_id, future = handle.call(
                    lambda rid: HealthRequest(request_id=rid)
                )
                reply = await asyncio.wait_for(
                    asyncio.wrap_future(future),
                    timeout=self.cluster.attempt_timeout_s,
                )
            except Exception as exc:  # noqa: BLE001 - report, don't raise
                out[handle.shard_id] = {
                    "state": handle.state,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                continue
            if isinstance(reply, ErrorReply):
                out[handle.shard_id] = {"state": handle.state, "error": reply.error}
                continue
            out[handle.shard_id] = {
                "state": handle.state,
                "liveness": reply.liveness,
                "readiness": reply.readiness,
                "retained_versions": list(reply.retained_versions),
                "faults": reply.faults,
            }
        return out

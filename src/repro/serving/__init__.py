"""Online localization serving: the interactive front-end the paper implies.

Octant's evaluation is an offline leave-one-out study, but the system it
describes is interactive: measurements stream in, users ask "where is this
host?" and expect an answer now.  This package provides that front-end as an
asyncio service over the batch engine:

* :class:`LocalizationService` -- a bounded-queue asyncio service that
  bridges requests onto :class:`~repro.core.batch.BatchLocalizer` worker
  threads, serves every request against the dataset snapshot current at
  enqueue time, absorbs new measurements through
  :meth:`LocalizationService.ingest`, and reports warm/cold latency plus
  geometry/prepared cache statistics.
* :class:`ShardedLocalizationService` -- the multi-process tier over it:
  consistent-hash sharding across supervised worker processes (framed pipe
  protocol, replicated version-vectored ingest, heartbeat liveness, backoff
  restarts, ring failover) that survives worker crashes, hangs and dropped
  replies while keeping zero-fault answers bit-identical to the
  single-process service.  See :mod:`repro.serving.cluster`.
"""

from .cluster import ClusterConfig, ClusterStats, ShardedLocalizationService
from .service import LocalizationService, ServiceStats
from .worker import WorkerBootstrap

__all__ = [
    "ClusterConfig",
    "ClusterStats",
    "LocalizationService",
    "ServiceStats",
    "ShardedLocalizationService",
    "WorkerBootstrap",
]

"""The sharded tier's worker process: one shard of the localization service.

A worker is a child process running the *existing* single-process engine
stack -- a :class:`~repro.serving.service.LocalizationService` over its own
live dataset, warm :class:`~repro.core.batch.BatchLocalizer` and geometry
caches -- behind the framed pipe protocol (:mod:`repro.serving.protocol`).
Nothing about localization is reimplemented here; the worker is a transport
shell around PR 3-8 machinery, which is what keeps sharded answers
bit-identical to the single-process service.

**Bootstrap.**  The orchestrator ships a picklable :class:`WorkerBootstrap`:
a frozen dataset snapshot (thawed into the worker's live dataset), the
``OctantConfig``/``ResilienceConfig``, the chaos :class:`FaultPlan` (threaded
explicitly so schedules are identical under ``fork`` and ``spawn`` -- a
scoped or installed plan is thread/process state that never crosses the
boundary on ``spawn``), and a replay log of ingests that landed after the
snapshot was cut.

**Versioned serving.**  Every ingest retires the service's previous
:class:`BatchLocalizer` into a small bounded map ``version -> localizer``
instead of dropping it, so a :class:`LocalizeRequest` pinned to a recent
version is answered *at that version* even after the worker has moved on.
This is the cross-process analogue of the service's enqueue-time-snapshot
contract and what lets the orchestrator guarantee one consistent version
vector per dispatch.  A version that is neither current nor retained gets a
``version``-class :class:`ErrorReply` (the orchestrator fails over to a
peer).

**Liveness.**  The worker is single-threaded at the frame loop: heartbeats
are emitted between frames, never from a side thread.  A request that hangs
(e.g. an injected ``hang`` fault) therefore silences the heartbeat stream,
and the supervisor's liveness deadline reaps the process -- a side-thread
heartbeat would have kept a livelocked worker looking healthy forever.
"""

from __future__ import annotations

import os
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..core.config import OctantConfig
from ..network.dataset import IngestRecord, MeasurementDataset
from ..resilience import (
    Deadline,
    FaultPlan,
    ReplyDropped,
    ResilienceConfig,
    ResilienceError,
    classify_error,
    install_fault_plan,
)
from .protocol import (
    ErrorReply,
    HealthReply,
    HealthRequest,
    Heartbeat,
    Hello,
    IngestReply,
    IngestRequest,
    LocalizeReply,
    LocalizeRequest,
    ShutdownReply,
    ShutdownRequest,
    recv_message,
    send_message,
)

__all__ = ["WorkerBootstrap", "worker_main"]


@dataclass(frozen=True)
class WorkerBootstrap:
    """Everything a worker process needs, in one picklable bundle."""

    shard_id: int
    incarnation: int
    #: Frozen dataset snapshot (thawed into the worker's live dataset); a
    #: live dataset is accepted too (used by in-process tests).
    dataset: MeasurementDataset
    config: OctantConfig = field(default_factory=OctantConfig)
    resilience: ResilienceConfig | None = None
    #: Chaos plan, threaded explicitly across the process boundary: installed
    #: process-wide *and* handed to the service, so ``fork`` and ``spawn``
    #: workers run identical schedules (satellite fix -- ``spawn`` children
    #: never inherit the parent's installed plan).
    fault_plan: FaultPlan | None = None
    #: Ingests that landed after :attr:`dataset` was snapshotted, replayed
    #: before the worker reports ready.
    replay: tuple[IngestRecord, ...] = ()
    heartbeat_interval_s: float = 0.1
    prepared_cache_size: int = 128
    #: How many retired (pre-ingest) localizers stay answerable.
    snapshot_retention: int = 4


def worker_main(conn, bootstrap: WorkerBootstrap) -> None:
    """Process entry point: serve frames until shutdown or orchestrator death.

    Importable at module top level so it pickles by reference under the
    ``spawn`` start method.
    """
    # The orchestrator owns ^C handling; a worker interrupted mid-frame
    # would otherwise die with a stack trace during interactive test runs.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    install_fault_plan(bootstrap.fault_plan)
    _WorkerLoop(conn, bootstrap).run()


class _WorkerLoop:
    """The worker's single-threaded frame loop around one service instance."""

    def __init__(self, conn, bootstrap: WorkerBootstrap):
        import asyncio

        from .service import LocalizationService

        self.conn = conn
        self.bootstrap = bootstrap
        dataset = bootstrap.dataset
        self.live = dataset.thaw() if dataset.is_snapshot else dataset
        self.live.replay(bootstrap.replay)
        self.service = LocalizationService(
            self.live,
            bootstrap.config,
            workers=1,
            prepared_cache_size=bootstrap.prepared_cache_size,
            resilience=bootstrap.resilience,
            fault_plan=bootstrap.fault_plan,
        )
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        #: Retired localizers still answerable, oldest first.
        self.retained: "OrderedDict[int, object]" = OrderedDict()
        self.dropped_replies = 0
        self._running = True

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> None:
        self.loop.run_until_complete(self.service.start())
        send_message(
            self.conn,
            Hello(
                shard_id=self.bootstrap.shard_id,
                pid=os.getpid(),
                incarnation=self.bootstrap.incarnation,
                version=self.live.version,
            ),
        )
        interval = max(0.01, self.bootstrap.heartbeat_interval_s)
        last_beat = 0.0  # first iteration heartbeats immediately
        try:
            while self._running:
                now = time.monotonic()
                if now - last_beat >= interval:
                    self._heartbeat()
                    last_beat = now
                try:
                    message = recv_message(
                        self.conn, timeout=max(0.01, last_beat + interval - now)
                    )
                except (EOFError, OSError):
                    break  # orchestrator is gone; no one to serve
                if message is None:
                    continue
                self._dispatch(message)
        finally:
            self.loop.run_until_complete(self.service.stop())
            self.loop.close()
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _heartbeat(self) -> None:
        breakers = self.service._breakers.snapshot()
        send_message(
            self.conn,
            Heartbeat(
                shard_id=self.bootstrap.shard_id,
                incarnation=self.bootstrap.incarnation,
                version=self.live.version,
                served=self.service.stats.served,
                breakers_open=tuple(
                    sorted(
                        name
                        for name, snap in breakers.items()
                        if snap["state"] != "closed"
                    )
                ),
            ),
        )

    # ------------------------------------------------------------------ #
    # Frame dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, message) -> None:
        handler = {
            LocalizeRequest: self._handle_localize,
            IngestRequest: self._handle_ingest,
            HealthRequest: self._handle_health,
            ShutdownRequest: self._handle_shutdown,
        }.get(type(message))
        if handler is None:  # unsolicited frame kinds are orchestrator->worker
            return
        try:
            handler(message)
        except ReplyDropped:
            self.dropped_replies += 1  # chaos: answer computed, reply dropped
        except Exception as exc:  # noqa: BLE001 - the worker must survive
            request_id = getattr(message, "request_id", None)
            if request_id is not None:
                self._reply(
                    ErrorReply(
                        request_id=request_id,
                        error=f"{type(exc).__name__}: {exc}",
                        error_class=classify_error(exc),
                    )
                )

    def _reply(self, message) -> None:
        """Send one reply frame through the ``reply`` chaos checkpoint.

        A ``drop_reply`` fault raises :class:`ReplyDropped` out of here (the
        caller counts it and sends nothing); any *other* injected error at
        this boundary is meaningless -- the work is already done, only
        delivery remains -- and is ignored so a broad ``*`` error rule does
        not silently halve a worker's reply rate.
        """
        plan = self.bootstrap.fault_plan
        if plan is not None:
            try:
                plan.fire("reply", getattr(message, "request_id", None))
            except ReplyDropped:
                raise
            except ResilienceError:
                pass
        send_message(self.conn, message)

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _handle_localize(self, msg: LocalizeRequest) -> None:
        current = self.live.version
        if msg.version is None or msg.version == current:
            estimate = self.loop.run_until_complete(
                self.service.localize(
                    msg.target_id, msg.landmark_pool, deadline_s=msg.deadline_s
                )
            )
            served_version = current
        else:
            localizer = self.retained.get(msg.version)
            if localizer is None:
                self._reply(
                    ErrorReply(
                        request_id=msg.request_id,
                        error=(
                            f"version {msg.version} not retained "
                            f"(current {current}, retained "
                            f"{sorted(self.retained)})"
                        ),
                        error_class="version",
                        details={
                            "current": current,
                            "retained": tuple(sorted(self.retained)),
                        },
                    )
                )
                return
            estimate = self._localize_retained(localizer, msg)
            served_version = msg.version
        self._reply(
            LocalizeReply(
                request_id=msg.request_id, estimate=estimate, version=served_version
            )
        )

    def _localize_retained(self, localizer, msg: LocalizeRequest):
        """Serve a pinned past version through the service's resilience ladder.

        Reuses the service's executor-side request path (`_localize_sync`:
        deadline/token scope, retry + degradation ladder, breaker gating,
        failure capture) against the retired localizer -- the exact code a
        current-version request runs, minus the queue hop it doesn't need.
        """
        from .service import _Request

        request = _Request(
            target_id=msg.target_id,
            landmark_pool=msg.landmark_pool,
            localizer=localizer,
            future=None,
            snapshot_version=msg.version,
            deadline=(
                Deadline.after(msg.deadline_s) if msg.deadline_s is not None else None
            ),
        )
        estimate = self.service._localize_sync(request)
        self.service._record(request, estimate)
        return estimate

    def _handle_ingest(self, msg: IngestRequest) -> None:
        # Retire the current localizer *before* the swap so the version it
        # serves stays answerable (bounded retention, oldest evicted).
        current = self.service._current
        if current is not None:
            self.retained[self.live.version] = current
            while len(self.retained) > max(0, self.bootstrap.snapshot_retention):
                self.retained.popitem(last=False)
        record = msg.record
        touched = self.loop.run_until_complete(
            self.service.ingest(
                hosts=record.hosts,
                pings=record.pings,
                traceroutes=record.traceroutes,
                routers=record.routers,
                router_pings=dict(record.router_pings),
            )
        )
        version = self.live.version
        if msg.expect_version is not None and version != msg.expect_version:
            # The replication stream skipped or duplicated a record; this
            # worker's data can no longer be trusted to match its peers.
            self._reply(
                ErrorReply(
                    request_id=msg.request_id,
                    error=(
                        f"ingest version skew: at {version}, "
                        f"expected {msg.expect_version}"
                    ),
                    error_class="fatal",
                )
            )
            return
        self._reply(
            IngestReply(request_id=msg.request_id, version=version, touched=touched)
        )

    def _handle_health(self, msg: HealthRequest) -> None:
        plan = self.bootstrap.fault_plan
        self._reply(
            HealthReply(
                request_id=msg.request_id,
                shard_id=self.bootstrap.shard_id,
                liveness=self.service.liveness(),
                readiness=self.service.readiness(),
                retained_versions=tuple(sorted(self.retained)) + (self.live.version,),
                faults=plan.stats() if plan is not None else None,
            )
        )

    def _handle_shutdown(self, msg: ShutdownRequest) -> None:
        self._reply(
            ShutdownReply(request_id=msg.request_id, served=self.service.stats.served)
        )
        self._running = False

"""Asyncio localization service over the staged constraint pipeline.

The service turns the repo's offline machinery into an online system with
three properties the offline path never needed:

* **Bounded admission.**  Requests enter a bounded :class:`asyncio.Queue`;
  when the queue is full, ``await localize(...)`` exerts backpressure
  instead of growing memory without limit.
* **Snapshot-per-request semantics.**  Every request is served against the
  :meth:`~repro.network.dataset.MeasurementDataset.snapshot` that was
  current when the request was *enqueued*.  A measurement ingest mid-flight
  never changes the answer of an already-accepted request, and an old
  snapshot keeps answering consistently until its last request drains.
* **Warm-path reuse.**  All snapshots share one
  :class:`~repro.geometry.circles.CircleCache`: planar constraint geometry
  is keyed ``(projection, circle)``, which is content-addressed and
  therefore survives ingests.  Each snapshot's
  :class:`~repro.core.batch.BatchLocalizer` additionally memoizes derived
  per-target :class:`~repro.core.octant.PreparedLandmarks`, so a repeated
  target skips the derivation entirely.  Warm and cold request latencies
  are tracked separately (``stats()``), which is the number
  ``benchmarks/bench_serving.py`` gates on.

The localization work itself is CPU-bound pure Python, so the executor
threads provide *concurrency* (the event loop stays responsive, requests
overlap with ingests) rather than parallel speedup; scale-out across
processes is the batch engine's process pool or sharding, not this service.

**Resilience** (see ``DESIGN_RESILIENCE.md``).  Every request carries a
:class:`~repro.resilience.deadline.Deadline` and a
:class:`~repro.resilience.deadline.CancelToken` through a thread-local
resilience scope; the pipeline's stage checkpoints enforce them
cooperatively.  A failed attempt rides a graceful-degradation ladder --
retry with jittered backoff for retriable faults, then lower solver engine
rungs (``fused`` -> ``vector`` -> ``object``, all bit-identical), then the
coarse shortest-ping baseline -- with per-rung circuit breakers and
deadline-aware shedding of expired queue entries.  Every degraded answer
records its provenance under ``details["degraded"]``; with no faults
injected and no deadline pressure, answers are bit-identical to the plain
engine output (the ladder never engages on the happy path).
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .._lru import BoundedLRU
from ..baselines.shortest_ping import ShortestPing
from ..core.batch import BatchLocalizer, failed_estimate
from ..core.config import OctantConfig
from ..core.estimate import LocationEstimate
from ..core.octant import Octant
from ..core.pipeline import PipelineStats
from ..geometry import CircleCache
from ..geometry.kernel import geometry_table_stats
from ..geometry.kernel_compiled import kernel_runtime_stats
from ..network.dataset import IngestDelta, IngestRecord, MeasurementDataset
from ..network.dns import UndnsParser
from ..network.log import MeasurementLog
from ..network.probes import PingResult, TracerouteResult
from ..resilience import (
    BreakerBoard,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    OperationCancelled,
    ResilienceConfig,
    RetriableError,
    checkpoint,
    classify_error,
    resilience_scope,
)

__all__ = ["DriftDetector", "LocalizationService", "ServiceStats"]

#: Solver-engine degradation ladder, strongest (most batched) first.  All
#: three engines are bit-identical (pinned by the engine-equivalence
#: suites), so falling down a rung changes performance, never the answer.
ENGINE_LADDER = ("fused", "vector", "object")


@dataclass
class ServiceStats:
    """Counters the service accumulates over its lifetime."""

    served: int = 0
    failed: int = 0
    ingests: int = 0
    queue_high_water: int = 0
    cold_requests: int = 0
    warm_requests: int = 0
    cold_seconds: float = 0.0
    warm_seconds: float = 0.0
    #: Prepared-landmark cache counters folded in from retired snapshot
    #: localizers (the current localizer's live counters are added on read).
    prepared_hits: int = 0
    prepared_misses: int = 0
    #: Micro-batching (fused engine): executor dispatches that solved more
    #: than one request, and the dispatch-width histogram {width: count}
    #: (width 1 entries included so the coalescing rate is visible).
    fused_batches: int = 0
    fuse_width_histogram: dict[int, int] = field(default_factory=dict)
    #: Cohort-level fused kernel counters, accumulated once per fused
    #: dispatch (targets/rows/passes of the pooled clip passes).
    fused_passes: int = 0
    fused_rows: int = 0
    #: Resilience counters.  ``retries``: same-rung retry attempts of
    #: retriable faults; ``degraded_answers``: answers produced below the
    #: primary rung (lower engine or baseline), every one of which carries
    #: ``details["degraded"]``; ``baseline_answers``: the subset answered by
    #: the coarse shortest-ping fallback; ``shed_requests``: queue entries
    #: resolved at dequeue without an executor dispatch (expired deadline or
    #: withdrawn caller); ``microbatch_retries``: coalesced group solves
    #: that fell back to per-request execution; ``deadline_failures`` /
    #: ``cancelled_failures``: requests resolved with a terminal
    #: deadline/cancellation failure.
    retries: int = 0
    degraded_answers: int = 0
    baseline_answers: int = 0
    shed_requests: int = 0
    microbatch_retries: int = 0
    deadline_failures: int = 0
    cancelled_failures: int = 0

    def mean_cold_ms(self) -> float:
        """Mean latency of first-time (cold) requests, in milliseconds."""
        return self.cold_seconds / self.cold_requests * 1000 if self.cold_requests else 0.0

    def mean_warm_ms(self) -> float:
        """Mean latency of repeated-target (warm) requests, in milliseconds."""
        return self.warm_seconds / self.warm_requests * 1000 if self.warm_requests else 0.0


@dataclass
class _Request:
    """One queued localization request, pinned to its enqueue-time snapshot."""

    target_id: str
    landmark_pool: tuple[str, ...] | None
    localizer: BatchLocalizer
    future: asyncio.Future
    snapshot_version: int = 0
    cold: bool = False
    elapsed: float = field(default=0.0, compare=False)
    #: Per-request deadline enforced cooperatively at stage checkpoints and
    #: at dequeue (load shedding); ``None`` means unbounded.
    deadline: Deadline | None = None
    #: Cancellation token; cancelled when the awaiting caller times out or
    #: the service shuts down, reaping the in-flight work at its next
    #: checkpoint.
    token: CancelToken = field(default_factory=CancelToken)


class DriftDetector:
    """Selective re-localization of targets whose measurements drifted.

    Each compaction's :class:`~repro.network.dataset.IngestDelta` names the
    measurements that changed value; the detector intersects that scope with
    the targets the service has already answered (``_seen``) and enqueues
    only those -- a target whose own pings, host record or router
    observations moved -- onto a bounded work queue.  A background thread
    re-localizes them against the *new* snapshot, which both refreshes the
    answer and re-warms the prepared cache entries the ingest evicted,
    before live traffic pays the cold cost.

    The queue is bounded (oldest entries dropped, counted) and each
    re-localization runs under its own deadline, so a burst of churn can
    never wedge the thread or grow memory: drift work is strictly
    best-effort background load.
    """

    def __init__(
        self,
        service: "LocalizationService",
        *,
        queue_limit: int = 64,
        deadline_s: float | None = 5.0,
    ) -> None:
        self._service = service
        self.queue_limit = max(1, queue_limit)
        self.deadline_s = deadline_s
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: deque[str] = deque()
        self._queued: set[str] = set()
        self.enqueued = 0
        self.dropped = 0
        self.processed = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Latest drift-refreshed estimate per target (bounded by the seen
        #: population; consumers poll it for push-style notification).
        self.refreshed: dict[str, LocationEstimate] = {}

    @staticmethod
    def affected_targets(deltas: Sequence[IngestDelta]) -> set[str]:
        """Hosts whose *own* localization inputs changed value.

        Under leave-one-out every answer formally depends on every other
        host, but the drift trigger is the target's own measurements: its
        ping RTTs (read live at assembly), its host record, or its router
        observations.  Roster-side churn is handled by cache invalidation,
        not re-localization.
        """
        affected: set[str] = set()
        for delta in deltas:
            affected |= delta.record_hosts
            affected |= delta.router_observers
            for a, b in delta.ping_pairs:
                affected.add(a)
                affected.add(b)
        return affected

    def notify(self, targets: Iterable[str]) -> int:
        """Enqueue targets for re-localization; returns how many were new."""
        added = 0
        with self._lock:
            for target in targets:
                if target in self._queued:
                    continue
                self._queue.append(target)
                self._queued.add(target)
                self.enqueued += 1
                added += 1
                while len(self._queue) > self.queue_limit:
                    stale = self._queue.popleft()
                    self._queued.discard(stale)
                    self.dropped += 1
            if added:
                self._wakeup.notify()
        return added

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def start(self) -> "DriftDetector":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="octant-drift", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        with self._lock:
            self._wakeup.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None

    def drain(self, timeout: float | None = 10.0) -> None:
        """Process the queue inline until empty (for tests / no-thread use)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._step():
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("drift queue did not drain in time")

    def _run(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                while not self._queue and not self._stop.is_set():
                    self._wakeup.wait(timeout=0.1)
                if self._stop.is_set():
                    return
            self._step()

    def _step(self) -> bool:
        with self._lock:
            if not self._queue:
                return False
            target = self._queue.popleft()
            self._queued.discard(target)
        localizer = self._service._current
        if localizer is None:
            return True
        deadline = (
            Deadline.after(self.deadline_s) if self.deadline_s is not None else None
        )
        try:
            with resilience_scope(
                plan=self._service.fault_plan, deadline=deadline
            ):
                estimate = localizer.localize_one(target)
            self.refreshed[target] = estimate
            self.processed += 1
        except Exception:  # noqa: BLE001 - best-effort background work
            self.errors += 1
        return True

    def stats(self) -> dict[str, object]:
        with self._lock:
            depth = len(self._queue)
        return {
            "queue_depth": depth,
            "queue_limit": self.queue_limit,
            "enqueued": self.enqueued,
            "processed": self.processed,
            "dropped": self.dropped,
            "errors": self.errors,
            "running": self._thread is not None and self._thread.is_alive(),
        }


class LocalizationService:
    """Serve ``localize(target)`` requests over a live measurement dataset.

    Usage::

        service = LocalizationService(dataset)
        async with service:
            estimate = await service.localize("host-sea")
            await service.ingest(hosts=[record], pings=new_pings)
            estimate2 = await service.localize("host-new")
        print(service.cache_stats())

    ``workers`` sizes both the executor thread pool and the number of queue
    consumers; ``max_queue`` bounds admission; ``prepared_cache_size`` is
    forwarded to each snapshot's :class:`BatchLocalizer` (the warm path).
    ``resilience`` overrides ``config.resilience`` for this service
    instance; ``fault_plan`` installs a deterministic fault-injection
    schedule scoped to this service's request/ingest work (chaos testing --
    see :meth:`install_fault_plan` and the ``OCTANT_FAULT_PLAN`` env var).
    """

    def __init__(
        self,
        dataset: MeasurementDataset,
        config: OctantConfig | None = None,
        parser: UndnsParser | None = None,
        *,
        workers: int = 2,
        max_queue: int = 256,
        prepared_cache_size: int = 128,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        ingest_max_pending: int = 4096,
        ingest_poll_interval_s: float = 0.05,
        drift_relocalize: bool = False,
        drift_queue_limit: int = 64,
        drift_deadline_s: float | None = 5.0,
    ):
        if dataset.is_snapshot:
            raise ValueError("serve the live dataset, not a snapshot")
        self._live = dataset
        self.config = config or OctantConfig()
        self.parser = parser
        self.resilience = resilience if resilience is not None else self.config.resilience
        self.fault_plan = fault_plan
        #: Per-rung circuit breakers (``solve:fused`` etc.); shared clock.
        self._breakers = BreakerBoard(self.resilience.breaker)
        self.workers = max(1, workers)
        self.max_queue = max_queue
        self.prepared_cache_size = prepared_cache_size
        #: One geometry cache for the service's whole lifetime: entries are
        #: content-addressed, so they stay valid across snapshots/ingests.
        self.circle_cache = CircleCache(capacity=self.config.solver.circle_cache_size)
        #: Service-lifetime planar constraint memo, threaded through every
        #: post-ingest pipeline rebuild; like the circle cache its entries
        #: are content-addressed (keyed by the constraint values themselves),
        #: so unchanged constraints stay memoized across snapshots.
        self.planar_memo: BoundedLRU = BoundedLRU(256)
        #: Write-optimized ingest plane: appends land in this log's delta
        #: buffer (lock-cheap, no matrix work) and a background compactor
        #: merges them into one ingest + snapshot swap (see
        #: repro.network.log).  Started/stopped with the service.
        #: ``ingest_poll_interval_s`` is the compaction cadence: longer
        #: intervals coalesce more appends per snapshot rebuild (less CPU
        #: stolen from serving) at the cost of staleness, bounded by the
        #: interval itself.
        self.measurement_log = MeasurementLog(
            self._apply_record,
            on_commit=self._on_compaction,
            max_pending=ingest_max_pending,
            poll_interval_s=ingest_poll_interval_s,
        )
        #: Opt-in drift detector: re-localizes (and re-warms) only the
        #: targets whose own measurements changed value in a compaction.
        self.drift: DriftDetector | None = (
            DriftDetector(
                self,
                queue_limit=drift_queue_limit,
                deadline_s=drift_deadline_s,
            )
            if drift_relocalize
            else None
        )
        #: Delta-scoped invalidation accounting (cache_stats()["ingest"]).
        self._ingest_accounting: dict[str, int] = {
            "invalidations_full": 0,
            "invalidations_selective": 0,
            "prepared_carried": 0,
            "prepared_evicted": 0,
            "tables_carried": 0,
            "dns_carried": 0,
        }
        self.stats = ServiceStats()
        self._queue: asyncio.Queue[_Request] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task] = []
        self._closing = False
        self._pending_puts = 0
        self._current: BatchLocalizer | None = None
        self._ingest_lock = threading.Lock()
        # Fused stats (histogram, pass counters) are mutated from executor
        # threads; with workers > 1 those dispatches run concurrently.
        self._stats_lock = threading.Lock()
        # Warm/cold classification: targets seen at the current dataset
        # version.  Reset when the version moves (every target is cold
        # against a fresh snapshot), which also bounds the set by the host
        # population instead of growing per ingest forever.
        self._seen: set[str] = set()
        self._seen_version = -1
        # Stage timings of retired snapshot pipelines, folded on swap so
        # cache_stats() reports the service lifetime, not just the current
        # snapshot.
        self._pipeline_totals = PipelineStats()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._queue is not None

    async def start(self) -> None:
        """Snapshot the dataset, warm the shared state and accept requests."""
        if self.started:
            raise RuntimeError("service already started")
        loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="octant-serve"
        )
        fresh = await loop.run_in_executor(self._executor, self._build_localizer)
        self._swap_localizer(fresh)
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._workers = [
            loop.create_task(self._worker_loop()) for _ in range(self.workers)
        ]
        self.measurement_log.start()
        if self.drift is not None:
            self.drift.start()

    async def stop(self) -> None:
        """Drain queued requests, then shut the workers and executor down."""
        if not self.started:
            return
        self._closing = True  # reject new admissions while draining
        try:
            # Drain buffered ingest appends first (off-loop: compaction
            # rebuilds a localizer), then stop the background threads.
            await asyncio.get_running_loop().run_in_executor(
                None, self.measurement_log.stop
            )
            if self.drift is not None:
                self.drift.stop()
            await self._queue.join()
            for task in self._workers:
                task.cancel()
            await asyncio.gather(*self._workers, return_exceptions=True)
            self._workers = []
            # Callers blocked in queue.put can still slip requests in after
            # the join (their items were never counted by it) -- and each
            # get below may wake another blocked putter.  Keep draining,
            # yielding to let woken putters land, until every admitted put
            # has resolved; no caller is left awaiting a stranded future.
            while self._pending_puts or not self._queue.empty():
                try:
                    stray = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    await asyncio.sleep(0)
                    continue
                if not stray.future.done():
                    stray.token.cancel("shutdown")
                    stray.future.set_result(
                        failed_estimate(
                            stray.target_id,
                            "octant",
                            RuntimeError("service stopped"),
                            error_type="shutdown",
                        )
                    )
                self._queue.task_done()
            self._queue = None
            executor, self._executor = self._executor, None
            # shutdown(wait=True) blocks on in-flight executor work (an
            # ingest rebuild can take a while); do that waiting off-loop.
            await asyncio.get_running_loop().run_in_executor(
                None, executor.shutdown
            )
        finally:
            self._closing = False

    async def __aenter__(self) -> "LocalizationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    async def localize(
        self,
        target_id: str,
        landmark_pool: Sequence[str] | None = None,
        timeout: float | None = None,
        deadline_s: float | None = None,
    ) -> LocationEstimate:
        """Queue one localization and await its estimate.

        The request is bound to the current dataset snapshot at enqueue
        time; a concurrent :meth:`ingest` does not affect it.  A full queue
        blocks admission (backpressure); ``timeout`` bounds the wait for
        the *result* and raises :class:`asyncio.TimeoutError` -- the
        underlying request is then cancelled (its token is set, so queued
        work is shed at dequeue and in-flight work aborts at its next stage
        checkpoint) rather than left running unobserved.  ``deadline_s``
        bounds the *work* itself: past the deadline, queued requests are
        shed and in-flight requests degrade to the near-instant baseline
        (or fail with a ``deadline`` error when degradation is off).  It
        defaults to the configured ``ResilienceConfig.deadline_s``.
        Failures are returned as failed estimates (``point=None``,
        reason/type/traceback under ``details``), never raised.
        """
        if not self.started or self._closing:
            raise RuntimeError("service not started; use 'async with service:'")
        localizer = self._current
        version = localizer.dataset.version
        if deadline_s is None:
            deadline_s = self.resilience.deadline_s
        request = _Request(
            target_id=target_id,
            landmark_pool=tuple(landmark_pool) if landmark_pool is not None else None,
            localizer=localizer,
            future=asyncio.get_running_loop().create_future(),
            snapshot_version=version,
            deadline=Deadline.after(deadline_s) if deadline_s is not None else None,
        )
        if version != self._seen_version:
            self._seen = set()
            self._seen_version = version
        # A target counts as warm only once an earlier request for it
        # *completed successfully* (see _record); concurrent first-time
        # requests all pay the cold cost and are reported as such.
        request.cold = target_id not in self._seen
        # Tracked so stop() can tell when every admitted-but-blocked put has
        # landed and the queue can safely be torn down.
        self._pending_puts += 1
        try:
            await self._queue.put(request)
        finally:
            self._pending_puts -= 1
        self.stats.queue_high_water = max(
            self.stats.queue_high_water, self._queue.qsize()
        )
        if timeout is not None:
            try:
                return await asyncio.wait_for(request.future, timeout)
            except (asyncio.TimeoutError, TimeoutError):
                # Reap the abandoned request: still queued, it is shed at
                # dequeue; in flight, the executor work aborts at its next
                # stage checkpoint instead of running to completion for a
                # caller that stopped listening.
                request.token.cancel("timeout")
                raise
        return await request.future

    async def localize_many(
        self, target_ids: Iterable[str]
    ) -> dict[str, LocationEstimate]:
        """Localize several targets concurrently against one snapshot."""
        targets = list(target_ids)
        estimates = await asyncio.gather(*(self.localize(t) for t in targets))
        return dict(zip(targets, estimates))

    def _fuse_width(self) -> int:
        """How many queued requests one executor dispatch may coalesce."""
        solver = self.config.solver
        if solver.engine != "fused" or solver.exact_complements:
            return 1
        return max(1, solver.fuse_width)

    def _shed(self, request: _Request) -> bool:
        """Resolve a dequeued request without dispatching it, if warranted.

        Deadline-aware load shedding on the admission queue: an entry whose
        caller has withdrawn (timed out, cancelled) or whose deadline
        already expired gets a terminal failure immediately instead of
        burning an executor slot on an answer nobody is waiting for.
        """
        reason: str | None = None
        if request.token.cancelled:
            reason = request.token.reason
        elif request.future.done():
            reason = "cancelled"
        elif (
            self.resilience.shed_expired
            and request.deadline is not None
            and request.deadline.expired()
        ):
            reason = "deadline"
        if reason is None:
            return False
        self.stats.shed_requests += 1
        if not request.future.done():
            if reason == "deadline":
                error: Exception = DeadlineExceeded(
                    f"deadline expired before dispatch of {request.target_id!r} (shed)",
                    stage="dispatch",
                )
            else:
                error = OperationCancelled(
                    f"request withdrawn before dispatch ({reason})",
                    stage="dispatch",
                    reason=reason,
                )
            estimate = failed_estimate(request.target_id, "octant", error)
            self._record(request, estimate)
            request.future.set_result(estimate)
        return True

    def _resolve_shutdown(self, requests: Sequence[_Request]) -> None:
        """Terminal shutdown results for requests the worker abandons.

        The executor-side work may still be running; cancelling each token
        makes it abort at its next stage checkpoint, and the awaiting
        callers get a ``failed_estimate`` with ``error_type="shutdown"``
        instead of a cancelled (hanging) future.
        """
        for request in requests:
            request.token.cancel("shutdown")
            if not request.future.done():
                request.future.set_result(
                    failed_estimate(
                        request.target_id,
                        "octant",
                        RuntimeError("service stopped"),
                        error_type="shutdown",
                    )
                )

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            # Micro-batching: under the fused engine, drain whatever is
            # already queued (up to fuse_width) into one executor dispatch;
            # the fused kernel solves the whole batch in shared passes.
            # Requests keep their enqueue-time snapshots -- the batch is
            # regrouped by localizer inside _localize_batch_sync.
            width = self._fuse_width()
            while len(batch) < width:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                live = [request for request in batch if not self._shed(request)]
                if not live:
                    continue
                try:
                    estimates = await loop.run_in_executor(
                        self._executor, self._localize_batch_sync, live
                    )
                except asyncio.CancelledError:
                    self._resolve_shutdown(live)
                    raise
                except Exception as exc:  # noqa: BLE001 - keep the worker alive
                    # _localize_batch_sync captures request errors itself;
                    # this covers the bridge (executor shut down mid-stop, or
                    # an escape the capture missed).  The worker must
                    # survive, or queued requests would never resolve.
                    estimates = [
                        failed_estimate(
                            request.target_id,
                            "octant",
                            exc,
                            traceback=traceback_module.format_exc(),
                        )
                        for request in live
                    ]
                for request, estimate in zip(live, estimates):
                    self._record(request, estimate)
                    if not request.future.done():
                        request.future.set_result(estimate)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _localize_batch_sync(self, batch: list[_Request]) -> list[LocationEstimate]:
        """Executor-side execution of one (possibly coalesced) dispatch.

        Single requests ride the existing per-request path.  Coalesced
        requests group by ``(localizer, landmark pool)`` -- snapshot
        semantics are per-request, so a batch spanning an ingest solves each
        group against its own enqueue-time snapshot -- and each group runs
        one fused :meth:`BatchLocalizer.solve_many`.  Estimates come back in
        request order; failures (unknown target, solver errors) are captured
        per request exactly like the single path.
        """
        with self._stats_lock:
            histogram = self.stats.fuse_width_histogram
            histogram[len(batch)] = histogram.get(len(batch), 0) + 1
        if len(batch) == 1:
            return [self._localize_sync(batch[0])]
        with self._stats_lock:
            self.stats.fused_batches += 1
        started = time.perf_counter()
        # Split by snapshot BEFORE stage batching: a dispatch that drained
        # requests enqueued on both sides of an ingest() must not run them
        # through one cohort pass.  The snapshot version is part of the key
        # explicitly -- object identity alone would conflate two snapshots
        # if a retired localizer's id were ever reused.
        groups: dict[tuple[int, int, tuple[str, ...] | None], list[_Request]] = {}
        for request in batch:
            groups.setdefault(
                (
                    id(request.localizer),
                    request.snapshot_version,
                    request.landmark_pool,
                ),
                [],
            ).append(request)
        results: dict[int, LocationEstimate] = {}
        for (_key, _version, pool), requests in groups.items():
            localizer = requests[0].localizer
            known: list[_Request] = []
            for request in requests:
                if request.target_id in localizer.dataset.hosts:
                    known.append(request)
                else:
                    # Same refusal as the single-request path: an unknown
                    # target would "resolve" from geographic priors alone.
                    results[id(request)] = failed_estimate(
                        request.target_id,
                        "octant",
                        KeyError(
                            f"unknown target {request.target_id!r}: "
                            "not in the served snapshot"
                        ),
                    )
            if not known:
                continue
            try:
                # Group solves run under the service's fault plan but not
                # under any single request's deadline/token -- the pooled
                # kernel passes are shared, so per-request deadlines are
                # enforced at dequeue (shedding) and by the per-request
                # fallback below, never mid-cohort.
                with resilience_scope(plan=self.fault_plan):
                    checkpoint("dispatch")
                    solved = localizer.solve_many(
                        [request.target_id for request in known], pool
                    )
                # Any successful groupmate carries the cohort-level
                # counters; a failed estimate's details hold no kernel dict.
                kernel = next(
                    (
                        k
                        for e in solved.values()
                        if isinstance(k := e.details.get("kernel"), dict)
                    ),
                    None,
                )
                if isinstance(kernel, dict):
                    with self._stats_lock:
                        self.stats.fused_passes += int(
                            kernel.get("fused_pass_count", 0) or 0
                        )
                        self.stats.fused_rows += int(
                            kernel.get("fused_rows_clipped", 0) or 0
                        )
                for request in known:
                    results[id(request)] = solved[request.target_id]
            except Exception:  # noqa: BLE001 - boundary of the service
                # One target's unexpected failure must not fail its
                # groupmates: retry each request individually through the
                # single path -- the first-class retry/degradation policy,
                # which backs off retriable faults, falls down the engine
                # ladder and captures terminal errors with type and
                # traceback, exactly what an uncoalesced dispatch does.
                with self._stats_lock:
                    self.stats.microbatch_retries += 1
                for request in known:
                    results[id(request)] = self._localize_sync(request)
        # The dispatch is one shared span; report the amortized share as
        # each request's latency (what the warm/cold means aggregate).
        share = (time.perf_counter() - started) / len(batch)
        for request in batch:
            request.elapsed = share
        return [results[id(request)] for request in batch]

    def _engine_ladder(self) -> list[str]:
        """Solver engines to try, primary first, degradation rungs after."""
        primary = self.config.solver.engine
        if not self.resilience.degradation or primary not in ENGINE_LADDER:
            return [primary]
        return list(ENGINE_LADDER[ENGINE_LADDER.index(primary):])

    def _localize_sync(self, request: _Request) -> LocationEstimate:
        """Executor-side request execution with full failure capture.

        Serving must answer every request, so unlike the batch path --
        where an exception past preparation is an invariant violation worth
        crashing a study for -- any error is recorded on the estimate with
        its type and traceback.  The request's deadline, cancellation token
        and the service's fault plan are active for the whole execution (a
        thread-local scope the pipeline's stage checkpoints consult), and
        failures ride the degradation ladder in :meth:`_localize_resilient`.
        """
        started = time.perf_counter()
        with resilience_scope(
            deadline=request.deadline, token=request.token, plan=self.fault_plan
        ):
            estimate = self._localize_resilient(request)
        request.elapsed = time.perf_counter() - started
        return estimate

    def _localize_resilient(self, request: _Request) -> LocationEstimate:
        """One request through the retry/degradation ladder.

        Rung order: the configured engine, then each lower engine rung
        (bit-identical results, so a fallback answer equals the primary
        one), then the coarse baseline.  Per rung, retriable faults are
        retried with jittered backoff up to the policy budget; fatal faults
        drop to the next rung; an expired deadline jumps straight to the
        baseline (no time for another full solve); cancellation and data
        refusals (unknown target, too few landmarks) are terminal.  Every
        rung is gated by its circuit breaker, so a persistently failing
        engine is skipped instead of hammered.
        """
        target = request.target_id
        if target not in request.localizer.dataset.hosts:
            # Without this guard an unknown target would "resolve" from
            # the geographic priors alone -- an answer with no
            # measurement behind it.  Ingesting a target's measurements
            # must include its NodeRecord (location may be None).
            return failed_estimate(
                target,
                "octant",
                KeyError(f"unknown target {target!r}: not in the served snapshot"),
            )
        policy = self.resilience.retry
        rungs = self._engine_ladder()
        primary = rungs[0]
        attempted: list[str] = []
        last_error: BaseException | None = None
        last_traceback: str | None = None
        for rung in rungs:
            breaker = self._breakers.get(f"solve:{rung}")
            if not breaker.allow():
                attempted.append(f"{rung}:breaker-open")
                continue
            attempt = 0
            while True:
                try:
                    checkpoint("dispatch", target)
                    estimate = request.localizer.localize_one(
                        target, request.landmark_pool, engine=rung
                    )
                except OperationCancelled as exc:
                    # The caller (or the service lifecycle) withdrew the
                    # request; resolve terminally, do no further work.
                    return failed_estimate(target, "octant", exc)
                except DeadlineExceeded as exc:
                    return self._degraded_baseline(request, exc, attempted + [rung])
                except RetriableError as exc:
                    breaker.record_failure()
                    last_error = exc
                    last_traceback = traceback_module.format_exc()
                    deadline = request.deadline
                    if policy.retries_left(attempt) and (
                        deadline is None or not deadline.expired()
                    ):
                        with self._stats_lock:
                            self.stats.retries += 1
                        delay = policy.delay_s(attempt, target)
                        if deadline is not None:
                            delay = min(delay, max(0.0, deadline.remaining()))
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    attempted.append(rung)
                    break
                except (ValueError, KeyError) as exc:
                    # Data refusal: deterministic for these inputs on every
                    # engine, so the ladder cannot help -- terminal.
                    return failed_estimate(target, "octant", exc)
                except Exception as exc:  # noqa: BLE001 - boundary of the service
                    breaker.record_failure()
                    last_error = exc
                    last_traceback = traceback_module.format_exc()
                    attempted.append(rung)
                    break
                else:
                    breaker.record_success()
                    if rung != primary and estimate.point is not None:
                        estimate.details["degraded"] = {
                            "engine": rung,
                            "primary": primary,
                            "attempted": list(attempted),
                            "error_class": (
                                classify_error(last_error)
                                if last_error is not None
                                else None
                            ),
                            "error": str(last_error) if last_error is not None else None,
                        }
                    return estimate
        return self._degraded_baseline(
            request, last_error, attempted, traceback=last_traceback
        )

    def _degraded_baseline(
        self,
        request: _Request,
        cause: BaseException | None,
        attempted: Sequence[str],
        traceback: str | None = None,
    ) -> LocationEstimate:
        """The ladder's last rung: a coarse baseline answer, else terminal failure.

        The shortest-ping baseline needs no pipeline work (one pass over
        the target's measurements), so it answers even when every solver
        rung failed or the deadline left no time for another solve.  Its
        answer is marked ``details["degraded"]`` with the full provenance:
        what was attempted, and the failure that forced the fallback.
        """
        target = request.target_id
        resilience = self.resilience
        if resilience.degradation and resilience.baseline_fallback:
            pool = (
                list(request.landmark_pool)
                if request.landmark_pool is not None
                else None
            )
            estimate = None
            try:
                estimate = ShortestPing(request.localizer.dataset).localize(target, pool)
            except (ValueError, KeyError) as exc:
                cause = cause if cause is not None else exc
            if estimate is not None and estimate.point is not None:
                estimate.details["degraded"] = {
                    "fallback": "baseline",
                    "method": ShortestPing.name,
                    "primary": self.config.solver.engine,
                    "attempted": list(attempted),
                    "error_class": (
                        classify_error(cause) if cause is not None else None
                    ),
                    "error": str(cause) if cause is not None else None,
                }
                return estimate
        if cause is None:
            cause = RuntimeError("no ladder rung produced an answer")
        return failed_estimate(target, "octant", cause, traceback=traceback)

    def _record(self, request: _Request, estimate: LocationEstimate) -> None:
        stats = self.stats
        stats.served += 1
        details = estimate.details
        # Which dataset snapshot this answer was pinned to at enqueue time:
        # the observable half of the optimistic-concurrency contract (a
        # batch straddling an ingest can be audited answer by answer).
        details.setdefault("snapshot_version", request.snapshot_version)
        degraded = details.get("degraded")
        if isinstance(degraded, dict):
            stats.degraded_answers += 1
            if degraded.get("fallback") == "baseline":
                stats.baseline_answers += 1
        if estimate.point is None:
            stats.failed += 1
            error_class = details.get("error_class")
            if error_class == "deadline":
                stats.deadline_failures += 1
            elif error_class in ("cancelled", "timeout", "shutdown"):
                stats.cancelled_failures += 1
        elif request.snapshot_version == self._seen_version:
            # Mark warm only on successful completion, so retries after a
            # failure and concurrent first-timers stay classified cold.
            self._seen.add(request.target_id)
        if request.cold:
            stats.cold_requests += 1
            stats.cold_seconds += request.elapsed
        else:
            stats.warm_requests += 1
            stats.warm_seconds += request.elapsed

    # ------------------------------------------------------------------ #
    # Ingest path
    # ------------------------------------------------------------------ #
    async def ingest(
        self,
        hosts: Iterable = (),
        pings: Iterable[PingResult] = (),
        traceroutes: Iterable[TracerouteResult] = (),
        routers: Iterable = (),
        router_pings: Mapping[tuple[str, str], float] | None = None,
    ) -> frozenset[str]:
        """Absorb new measurements and swap in a fresh snapshot.

        The live dataset is extended incrementally
        (:meth:`MeasurementDataset.ingest`), then a new snapshot localizer
        becomes current for subsequent requests; requests already queued
        keep their enqueue-time snapshot.  Returns the touched host ids.
        """
        if not self.started:
            raise RuntimeError("service not started; use 'async with service:'")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            self._ingest_sync,
            dict(
                hosts=list(hosts),
                pings=list(pings),
                traceroutes=list(traceroutes),
                routers=list(routers),
                router_pings=dict(router_pings or {}),
            ),
        )

    def ingest_nowait(
        self,
        hosts: Iterable = (),
        pings: Iterable[PingResult] = (),
        traceroutes: Iterable[TracerouteResult] = (),
        routers: Iterable = (),
        router_pings: Mapping[tuple[str, str], float] | None = None,
    ) -> int:
        """Append measurements to the write-optimized log; returns their seq.

        The write path for sustained measurement traffic: the payload lands
        in the measurement log's delta buffer under one short mutex hold --
        no matrix extension, no snapshot rebuild, no cache invalidation on
        the caller's thread.  The background compactor coalesces buffered
        appends into a single :meth:`MeasurementDataset.ingest` (one version
        bump per compaction, however many appends it absorbed) and swaps in
        the fresh snapshot exactly as :meth:`ingest` does.  Call
        ``measurement_log.flush()`` to barrier on everything appended so
        far.
        """
        return self.measurement_log.append(
            hosts=hosts,
            pings=pings,
            traceroutes=traceroutes,
            routers=routers,
            router_pings=router_pings,
        )

    async def flush_ingest(self, timeout: float | None = 30.0) -> int:
        """Await compaction of everything appended via :meth:`ingest_nowait`."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.measurement_log.flush(timeout=timeout)
        )

    def _ingest_sync(self, payload: dict) -> frozenset[str]:
        return self._apply_payload(payload)

    def _apply_record(self, record: IngestRecord) -> int:
        """Measurement-log apply hook: compact one merged record; new version."""
        self._apply_payload(
            dict(
                hosts=record.hosts,
                pings=record.pings,
                traceroutes=record.traceroutes,
                routers=record.routers,
                router_pings=dict(record.router_pings),
            )
        )
        return self._live.version

    def _apply_payload(self, payload: dict) -> frozenset[str]:
        with self._ingest_lock:
            # The ingest stage boundary is checkpointed like any pipeline
            # stage: chaos plans can inject latency or failure here, and an
            # injected error surfaces to the awaiting ingest() caller
            # before any mutation happens.
            with resilience_scope(plan=self.fault_plan):
                checkpoint("ingest")
            retired = self._current
            # Deltas are scoped to the *retired snapshot's* version: that is
            # the state whose caches adopt_caches() carries.  It normally
            # equals the live version, but if the live dataset was advanced
            # behind the service's back the gap shows up here and resolves
            # to a full invalidation (deltas_since returns None).
            previous_version = (
                retired.dataset.version if retired is not None else self._live.version
            )
            touched = self._live.ingest(**payload)
            # Build before swapping so concurrent localize() calls always
            # observe a usable localizer (the old snapshot until the swap,
            # which is exactly the enqueue-time-snapshot contract).
            fresh = self._build_localizer()
            deltas = self._live.deltas_since(previous_version)
            if retired is not None:
                adopt = fresh.adopt_caches(retired, deltas)
                with self._stats_lock:
                    accounting = self._ingest_accounting
                    if adopt["full"]:
                        accounting["invalidations_full"] += 1
                    else:
                        accounting["invalidations_selective"] += 1
                    for key in (
                        "prepared_carried",
                        "prepared_evicted",
                        "tables_carried",
                        "dns_carried",
                    ):
                        accounting[key] += int(adopt[key])
            self._swap_localizer(fresh)
            self.stats.ingests += 1
            if self.drift is not None and deltas:
                # Membership probes (not iteration) against _seen: it is
                # mutated lock-free by request completions on other threads.
                affected = DriftDetector.affected_targets(deltas)
                self.drift.notify(
                    t for t in sorted(affected) if t in self._seen
                )
        return touched

    def _on_compaction(self, version: int, record: IngestRecord) -> None:
        """Measurement-log commit hook (runs on the compactor thread)."""
        # The apply hook already did the swap + drift notification under the
        # ingest lock; this is the seam where external observers (metrics,
        # replication) would be notified.  Kept as a method so subclasses
        # and the sharded tier can override.

    # ------------------------------------------------------------------ #
    # Snapshot localizer plumbing
    # ------------------------------------------------------------------ #
    def _build_localizer(self) -> BatchLocalizer:
        snapshot = self._live.snapshot()
        octant = Octant(
            snapshot,
            self.config,
            self.parser,
            circle_cache=self.circle_cache,
            planar_memo=self.planar_memo,
        )
        localizer = BatchLocalizer(
            octant, prepared_cache_size=self.prepared_cache_size
        )
        # Warm the full-cohort shared state before the first request hits it.
        localizer.shared_state()
        return localizer

    def _swap_localizer(self, fresh: BatchLocalizer) -> None:
        """Make ``fresh`` current, folding the retired one's cache counters."""
        retired = self._current
        if retired is not None:
            self.stats.prepared_hits += retired.prepared_hits
            self.stats.prepared_misses += retired.prepared_misses
            self._pipeline_totals.merge(retired.octant.pipeline.stats)
        self._current = fresh

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def install_fault_plan(self, plan: FaultPlan | None) -> FaultPlan | None:
        """Install (or with ``None``, remove) this service's fault plan.

        The plan activates through the resilience scope wrapped around
        every request execution and ingest, so it affects *this service's*
        work only -- unlike :func:`repro.resilience.install_fault_plan`,
        which is process-wide.  Returns the previously installed plan.
        Chaos runs that cannot edit code can set the ``OCTANT_FAULT_PLAN``
        environment variable instead (picked up process-wide, lazily).
        """
        previous = self.fault_plan
        self.fault_plan = plan
        return previous

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def liveness(self) -> dict[str, object]:
        """Is the process worth keeping?  (Restart-decision probe.)

        Deliberately minimal -- the k8s-style liveness contract: it must
        only fail when a *restart* would help, so it looks at nothing that
        legitimately degrades under load (breakers, queue depth).  A service
        that is started and not closing is alive, full stop.
        """
        alive = self.started and not self._closing
        return {
            "alive": alive,
            "started": self.started,
            "closing": self._closing,
        }

    def readiness(self) -> dict[str, object]:
        """Should traffic be routed here right now?  (Routing-decision probe.)

        Everything a load balancer or the sharded tier's orchestrator wants
        before sending a request: admission headroom (queue depth vs.
        capacity), breaker states, the snapshot version answers would pin,
        and which clip-kernel backend the solve path is running on (a worker
        that fell back from the compiled backend is ready but slower --
        routers may prefer a peer).
        """
        breakers = self._breakers.snapshot()
        open_breakers = sorted(
            name for name, snap in breakers.items() if snap["state"] != "closed"
        )
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        log_stats = self.measurement_log.stats()
        return {
            "ready": self.started and not self._closing,
            "snapshot_version": self._live.version,
            "queue_depth": queue_depth,
            "queue_capacity": self.max_queue,
            "queue_headroom": max(0, self.max_queue - queue_depth),
            "workers": self.workers,
            "breakers_open": open_breakers,
            "kernel_backend": kernel_runtime_stats(
                getattr(self.config.solver, "kernel_backend", "auto")
            ).get("backend"),
            "degraded_answers": self.stats.degraded_answers,
            "deadline_failures": self.stats.deadline_failures,
            # Write-plane lag: how far the compactor is behind the newest
            # buffered append (age of the oldest un-compacted entry) and how
            # many appends are waiting.  A router can prefer a peer whose
            # answers pin a fresher snapshot.
            "compaction_lag_s": round(float(log_stats["lag_seconds"]), 6),
            "ingest_pending": log_stats["pending"],
            "drift_queue_depth": (
                self.drift.depth() if self.drift is not None else 0
            ),
        }

    def health(self) -> dict[str, object]:
        """Combined liveness + readiness summary for external monitors.

        Kept as the one-call probe (and for compatibility: ``status`` /
        ``started`` / ``breakers_open`` keep their meanings); the split
        :meth:`liveness` / :meth:`readiness` views are what the sharded
        tier reports per shard -- restart decisions and routing decisions
        have different failure bars.
        """
        liveness = self.liveness()
        readiness = self.readiness()
        open_breakers = readiness["breakers_open"]
        if not liveness["alive"]:
            status = "stopped"
        elif open_breakers:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "started": self.started,
            "closing": self._closing,
            "liveness": liveness,
            "readiness": readiness,
            "dataset_version": readiness["snapshot_version"],
            "queue_depth": readiness["queue_depth"],
            "queue_capacity": self.max_queue,
            "workers": self.workers,
            "breakers_open": open_breakers,
            "degraded_answers": self.stats.degraded_answers,
            "deadline_failures": self.stats.deadline_failures,
        }

    def _resilience_stats_snapshot(self) -> dict[str, object]:
        """The ``cache_stats()["resilience"]`` section."""
        stats = self.stats
        resilience = self.resilience
        with self._stats_lock:
            retries = stats.retries
            microbatch_retries = stats.microbatch_retries
        return {
            "deadline_s": resilience.deadline_s,
            "degradation": resilience.degradation,
            "baseline_fallback": resilience.baseline_fallback,
            "retries": retries,
            "degraded_answers": stats.degraded_answers,
            "baseline_answers": stats.baseline_answers,
            "shed_requests": stats.shed_requests,
            "microbatch_retries": microbatch_retries,
            "deadline_failures": stats.deadline_failures,
            "cancelled_failures": stats.cancelled_failures,
            "breakers": self._breakers.snapshot(),
            "faults": self.fault_plan.stats() if self.fault_plan is not None else None,
        }

    def cache_stats(self) -> dict[str, object]:
        """Warm/cold serving statistics plus every cache's hit/miss counters."""
        stats = self.stats
        current = self._current
        prepared_hits = stats.prepared_hits
        prepared_misses = stats.prepared_misses
        pipeline_totals = PipelineStats()
        pipeline_totals.merge(self._pipeline_totals)
        if current is not None:
            prepared_hits += current.prepared_hits
            prepared_misses += current.prepared_misses
            pipeline_totals.merge(current.octant.pipeline.stats)
        pipeline = pipeline_totals.snapshot()
        return {
            "dataset_version": self._live.version,
            "served": stats.served,
            "failed": stats.failed,
            "ingests": stats.ingests,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_high_water": stats.queue_high_water,
            "cold_requests": stats.cold_requests,
            "warm_requests": stats.warm_requests,
            "mean_cold_ms": round(stats.mean_cold_ms(), 3),
            "mean_warm_ms": round(stats.mean_warm_ms(), 3),
            "prepared_hits": prepared_hits,
            "prepared_misses": prepared_misses,
            "circle_cache": self.circle_cache.stats(),
            # Process-wide cross-solve geometry tables (edge/keyhole/wedge
            # arrays + convex mask cells keyed by realized constraint
            # identity); the serving warm path should be hit-dominated.
            "geometry_tables": geometry_table_stats(),
            # Clip-kernel backend runtime: which backend the row passes run
            # on, JIT compile cost (first call vs warm), nogil pass counts.
            "kernel": kernel_runtime_stats(
                getattr(self.config.solver, "kernel_backend", "auto")
            ),
            "pipeline": pipeline,
            "fused": self._fused_stats_snapshot(),
            "resilience": self._resilience_stats_snapshot(),
            "ingest": self._ingest_stats_snapshot(),
        }

    def _ingest_stats_snapshot(self) -> dict[str, object]:
        """The ``cache_stats()["ingest"]`` section: write-plane counters.

        ``invalidations_selective`` counts post-ingest swaps where the delta
        log scoped the eviction (surviving prepared entries were carried
        into the fresh localizer); ``invalidations_full`` counts swaps that
        had to drop everything (delta log window exceeded, or router
        metadata replaced).  The satellite regression tests pin the
        selective path staying selective.
        """
        with self._stats_lock:
            accounting = dict(self._ingest_accounting)
        return {
            **accounting,
            "log": self.measurement_log.stats(),
            "drift": self.drift.stats() if self.drift is not None else None,
        }

    def _fused_stats_snapshot(self) -> dict[str, object]:
        """Fused micro-batch counters, read under the same lock that the
        executor-side dispatches mutate them under (a concurrent width-bucket
        insert would otherwise break the histogram iteration)."""
        stats = self.stats
        with self._stats_lock:
            histogram = dict(sorted(stats.fuse_width_histogram.items()))
            batches = stats.fused_batches
            passes = stats.fused_passes
            rows = stats.fused_rows
        return {
            "engine": self.config.solver.engine,
            "fuse_width": self._fuse_width(),
            "batches": batches,
            "width_histogram": histogram,
            "passes": passes,
            "rows": rows,
            "rows_per_pass": round(rows / passes, 3) if passes else 0.0,
        }

"""Supervision of the sharded tier's worker processes.

Two layers live here, both transport-level -- neither knows anything about
localization:

:class:`WorkerHandle`
    The orchestrator's stub for one shard.  It owns the pipe to the current
    worker *incarnation*, a reader thread that demultiplexes reply frames
    into per-request futures, and the shard's observed state machine::

        starting --Hello--> syncing --caught up--> live
           ^                                        |
           |   exit / pipe EOF / liveness deadline  |
           +---------------- dead <-----------------+
                        (backoff, then respawn -> starting)

    ``syncing`` is the catch-up window: a worker bootstraps from a dataset
    snapshot, so ingests committed after that snapshot was cut must be
    replayed to it before it may serve (otherwise its version lineage would
    diverge from its peers').  The cluster performs the replay; the handle
    just holds the state.

:class:`Supervisor`
    A single monitor thread over all handles.  Each tick it (a) reaps
    workers whose process has exited -- including hard ``SIGKILL``, seen as
    a pipe EOF and a non-``None`` exitcode -- or whose heartbeats have gone
    quiet past the liveness deadline (a *hung* worker's process is alive but
    its single-threaded frame loop is stuck, so heartbeats stop; the
    supervisor SIGKILLs it to get a clean corpse), (b) restarts dead workers
    on a bounded exponential backoff reusing
    :class:`~repro.resilience.retry.RetryPolicy`, and (c) drives the
    catch-up replay for ``syncing`` workers.  A worker that exhausts its
    restart budget without ever becoming stable is left ``dead`` (the
    cluster routes its range to replicas permanently); a stable run resets
    the budget.

Death is observable from three independent signals -- reader-thread EOF,
``process.exitcode``, heartbeat age -- and all three funnel into
:meth:`WorkerHandle.mark_dead`, which atomically flips the state and fails
every in-flight future with :class:`WorkerDied` so callers fail over
immediately instead of waiting out their timeouts.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future

from ..resilience import RetryPolicy
from .protocol import (
    FrameError,
    Heartbeat,
    Hello,
    decode_frame,
    encode_frame,
)

__all__ = ["Supervisor", "WorkerDied", "WorkerHandle", "WorkerUnavailable"]


class WorkerUnavailable(RuntimeError):
    """The shard has no live worker to send to (dead, restarting, syncing)."""


class WorkerDied(RuntimeError):
    """The worker died with this request in flight."""


class WorkerHandle:
    """Orchestrator-side stub for one shard's current worker incarnation."""

    def __init__(self, shard_id: int, *, clock=time.monotonic):
        self.shard_id = shard_id
        self._clock = clock
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: dict[int, Future] = {}
        self.state = "dead"  # nothing spawned yet
        self.process = None
        self.conn = None
        self.incarnation = 0
        self.pid: int | None = None
        self.restarts = 0  # completed respawns (first spawn not counted)
        self.restart_attempt = 0  # consecutive failures, resets when stable
        self.next_restart_at = 0.0
        self.died_at: float | None = None
        self.death_reason: str | None = None
        self.last_heartbeat: float | None = None
        self.heartbeat: Heartbeat | None = None
        self.hello: Hello | None = None
        self.live_since: float | None = None
        self.ready = threading.Event()  # set when state leaves "starting"
        self._reader: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, process, conn, incarnation: int) -> None:
        """Adopt a freshly spawned worker process and start reading frames."""
        with self._lock:
            self.process = process
            self.conn = conn
            self.incarnation = incarnation
            self.pid = process.pid
            self.state = "starting"
            self.hello = None
            self.heartbeat = None
            self.last_heartbeat = None
            self.live_since = None
            self.died_at = None
            # death_reason is intentionally NOT cleared: it is the *last*
            # death's diagnosis, worth keeping visible after the restart.
            self.ready.clear()
        reader = threading.Thread(
            target=self._read_loop,
            args=(conn, incarnation),
            name=f"octant-shard{self.shard_id}-r{incarnation}",
            daemon=True,
        )
        self._reader = reader
        reader.start()

    def mark_dead(self, reason: str) -> None:
        """Flip to ``dead`` and fail every in-flight request (idempotent)."""
        with self._lock:
            if self.state in ("dead", "stopped"):
                return
            self.state = "dead"
            self.died_at = self._clock()
            self.death_reason = reason
            pending, self._pending = self._pending, {}
            self.ready.set()
        error = WorkerDied(f"shard {self.shard_id} worker died: {reason}")
        for future in pending.values():
            if not future.cancelled():
                future.set_exception(error)

    def mark_live(self) -> bool:
        """Flip ``syncing -> live`` after catch-up; False if dead meanwhile."""
        with self._lock:
            if self.state != "syncing":
                return False
            self.state = "live"
            self.live_since = self._clock()
            return True

    def mark_stopped(self) -> None:
        """Terminal state for orderly cluster shutdown (no restart)."""
        self.mark_dead("stopped")
        self.state = "stopped"

    def kill(self, join_timeout: float = 5.0) -> None:
        """SIGKILL the current process, if any, and reap it."""
        process = self.process
        if process is None:
            return
        try:
            if process.is_alive():
                process.kill()
            process.join(join_timeout)
        except (ValueError, OSError):  # pragma: no cover - already reaped
            pass

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def call(self, make_message, *, states=("live",)) -> tuple[int, Future]:
        """Send one request frame; returns ``(request_id, reply_future)``.

        ``make_message`` is called with the allocated request id under the
        handle lock, so id allocation, pending registration and the send are
        atomic with respect to :meth:`mark_dead` -- a request can never slip
        into the pending map of a worker already declared dead.
        """
        with self._lock:
            if self.state not in states:
                raise WorkerUnavailable(
                    f"shard {self.shard_id} is {self.state}"
                    + (f" ({self.death_reason})" if self.death_reason else "")
                )
            request_id = next(self._ids)
            future: Future = Future()
            self._pending[request_id] = future
            conn = self.conn
            try:
                conn.send_bytes(encode_frame(make_message(request_id)))
            except (BrokenPipeError, OSError) as exc:
                self._pending.pop(request_id, None)
                send_error = exc
            else:
                return request_id, future
        # Send failed: the pipe is gone even if the reader hasn't noticed yet.
        self.mark_dead(f"send failed: {send_error}")
        raise WorkerUnavailable(f"shard {self.shard_id} pipe broken") from send_error

    def discard(self, request_id: int) -> None:
        """Forget a request whose caller gave up (late replies are dropped)."""
        with self._lock:
            self._pending.pop(request_id, None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def heartbeat_age(self) -> float | None:
        last = self.last_heartbeat
        return None if last is None else max(0.0, self._clock() - last)

    def exitcode(self) -> int | None:
        process = self.process
        return None if process is None else process.exitcode

    # ------------------------------------------------------------------ #
    # Reader thread
    # ------------------------------------------------------------------ #
    def _read_loop(self, conn, incarnation: int) -> None:
        while True:
            try:
                message = decode_frame(conn.recv_bytes())
            except (EOFError, OSError):
                break
            except FrameError as exc:
                self._if_current(incarnation, lambda: self.mark_dead(f"protocol: {exc}"))
                return
            if isinstance(message, Hello):
                self._on_hello(message, incarnation)
            elif isinstance(message, Heartbeat):
                self._on_heartbeat(message, incarnation)
            else:
                request_id = getattr(message, "request_id", None)
                if request_id is None:
                    continue
                with self._lock:
                    future = self._pending.pop(request_id, None)
                if future is not None and not future.cancelled():
                    try:
                        future.set_result(message)
                    except Exception:  # pragma: no cover - cancel race
                        pass
        # Pipe EOF: the worker process is gone (exit, crash, or SIGKILL).
        self._if_current(
            incarnation,
            lambda: self.mark_dead(f"pipe closed (exitcode {self.exitcode()})"),
        )

    def _if_current(self, incarnation: int, action) -> None:
        """Run ``action`` only if this reader still serves the live incarnation."""
        with self._lock:
            current = self.incarnation == incarnation and self.state != "stopped"
        if current:
            action()

    def _on_hello(self, message: Hello, incarnation: int) -> None:
        with self._lock:
            if self.incarnation != incarnation or self.state != "starting":
                return
            self.hello = message
            self.pid = message.pid
            self.state = "syncing"  # cluster replays missed ingests, then live
            self.last_heartbeat = self._clock()
            self.ready.set()

    def _on_heartbeat(self, message: Heartbeat, incarnation: int) -> None:
        with self._lock:
            if self.incarnation != incarnation:
                return
            self.heartbeat = message
            self.last_heartbeat = self._clock()


class Supervisor:
    """Monitor thread: reap dead/hung workers, restart with backoff, sync.

    ``spawn_worker(shard_id, incarnation)`` must start a fresh worker process
    and return ``(process, conn)``; ``sync_worker(handle)`` must bring a
    ``syncing`` worker's dataset up to the committed version and flip it
    ``live`` (both are provided by the cluster).  The monitor never blocks on
    request traffic -- catch-up replay waits on reply futures resolved by the
    handle's reader thread, which stays independent.
    """

    def __init__(
        self,
        handles: list[WorkerHandle],
        *,
        spawn_worker,
        sync_worker,
        restart_policy: RetryPolicy | None = None,
        liveness_deadline_s: float = 3.0,
        starting_deadline_s: float = 120.0,
        stable_after_s: float = 5.0,
        poll_interval_s: float = 0.05,
        clock=time.monotonic,
    ):
        self.handles = handles
        self.spawn_worker = spawn_worker
        self.sync_worker = sync_worker
        self.restart_policy = restart_policy or RetryPolicy(
            max_attempts=8, base_delay_s=0.05, max_delay_s=2.0, jitter=0.25
        )
        self.liveness_deadline_s = liveness_deadline_s
        self.starting_deadline_s = starting_deadline_s
        self.stable_after_s = stable_after_s
        self.poll_interval_s = poll_interval_s
        self._clock = clock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.restarts_total = 0
        self.gave_up: set[int] = set()
        self._start_deadline: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._thread is not None:
            return
        thread = threading.Thread(
            target=self._run, name="octant-supervisor", daemon=True
        )
        self._thread = thread
        thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            for handle in self.handles:
                try:
                    self._tick(handle)
                except Exception:  # pragma: no cover - keep supervising
                    continue

    def _tick(self, handle: WorkerHandle) -> None:
        now = self._clock()
        state = handle.state
        if state in ("starting", "syncing", "live"):
            exitcode = handle.exitcode()
            if exitcode is not None:
                handle.mark_dead(f"exit code {exitcode}")
                self._schedule_restart(handle, now)
                return
            if state == "live":
                age = handle.heartbeat_age()
                if age is not None and age > self.liveness_deadline_s:
                    # Alive process, silent frame loop: hung.  Record the
                    # diagnosis BEFORE killing -- the SIGKILL's pipe EOF
                    # would otherwise win the mark_dead race with a generic
                    # "pipe closed" -- then kill for a clean corpse and
                    # restart like any other crash.
                    handle.mark_dead(f"liveness deadline ({age:.2f}s silent)")
                    handle.kill(join_timeout=2.0)
                    self._schedule_restart(handle, now)
                    return
                if (
                    handle.restart_attempt
                    and handle.live_since is not None
                    and now - handle.live_since > self.stable_after_s
                ):
                    handle.restart_attempt = 0  # stable: reset the budget
            elif state == "starting":
                deadline = self._start_deadline.get(handle.shard_id)
                if deadline is not None and now > deadline:
                    handle.mark_dead("start deadline exceeded")
                    handle.kill(join_timeout=2.0)
                    self._schedule_restart(handle, now)
            elif state == "syncing":
                try:
                    self.sync_worker(handle)
                except Exception as exc:
                    handle.mark_dead(f"catch-up failed: {exc}")
                    handle.kill(join_timeout=2.0)
                    self._schedule_restart(handle, now)
            return
        if state == "dead" and handle.shard_id not in self.gave_up:
            if handle.next_restart_at <= 0.0:
                self._schedule_restart(handle, now)
            if now >= handle.next_restart_at:
                self._respawn(handle)

    def _schedule_restart(self, handle: WorkerHandle, now: float) -> None:
        attempt = handle.restart_attempt
        if attempt >= self.restart_policy.max_attempts:
            self.gave_up.add(handle.shard_id)
            return
        delay = self.restart_policy.delay_s(attempt, key=f"shard:{handle.shard_id}")
        handle.next_restart_at = now + delay

    def _respawn(self, handle: WorkerHandle) -> None:
        handle.kill(join_timeout=2.0)  # reap any zombie before respawning
        handle.restart_attempt += 1
        incarnation = handle.incarnation + 1
        try:
            process, conn = self.spawn_worker(handle.shard_id, incarnation)
        except Exception as exc:
            handle.death_reason = f"respawn failed: {exc}"
            self._schedule_restart(handle, self._clock())
            return
        handle.attach(process, conn, incarnation)
        self._start_deadline[handle.shard_id] = self._clock() + self.starting_deadline_s
        handle.next_restart_at = 0.0
        self.restarts_total += 1
        handle.restarts += 1

"""Reverse-DNS location hints in the style of the undns / Rocketfuel tools.

Section 2.3 of the paper refines router positions by performing a reverse DNS
lookup on each router on the traceroute path and extracting the city the name
encodes, using the ``undns`` tool from the Rocketfuel project.  Real ISP
router names embed location tokens in a handful of well-known shapes::

    ge-1-2-0.cr1.ord2.ispname.net        (IATA airport code: ord = Chicago)
    ae-3.r22.nycmny01.us.bb.example.net  (city+state contraction)
    so-0-0-0.chi-core-01.example.net     (city abbreviation)

The synthetic topology generates names of the first form (plus opaque and
deliberately misleading names); this module implements the rule-based parser
that maps a DNS name back to a city hint, together with a confidence score
the localization pipeline uses when weighting the resulting constraint.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..geometry import GeoPoint
from .geodata import WORLD_CITIES, City

__all__ = ["DnsLocationHint", "UndnsParser", "DEFAULT_CITY_ALIASES"]


@dataclass(frozen=True)
class DnsLocationHint:
    """A location hint extracted from a router's DNS name."""

    dns_name: str
    city: City
    matched_token: str
    confidence: float

    @property
    def location(self) -> GeoPoint:
        """The coordinates of the hinted city."""
        return self.city.location


#: Extra name tokens seen in real router names that do not match the IATA
#: code of the catalogue city they denote.
DEFAULT_CITY_ALIASES: Mapping[str, str] = {
    "nyc": "JFK",
    "newyork": "JFK",
    "nycmny": "JFK",
    "chi": "ORD",
    "chcgil": "ORD",
    "lax": "LAX",
    "lsanca": "LAX",
    "sfo": "SJC",
    "snjsca": "SJC",
    "paloalto": "SJC",
    "sttlwa": "SEA",
    "dllstx": "DFW",
    "hstntx": "IAH",
    "attlga": "ATL",
    "wash": "IAD",
    "washdc": "IAD",
    "asbnva": "IAD",
    "bos": "BOS",
    "cmbrma": "BOS",
    "dnvrco": "DEN",
    "phlapa": "PHL",
    "mtrlpq": "YUL",
    "trnton": "YYZ",
    "lond": "LHR",
    "londen": "LHR",
    "ldn": "LHR",
    "par": "CDG",
    "paris": "CDG",
    "ams": "AMS",
    "amstnl": "AMS",
    "fft": "FRA",
    "ffm": "FRA",
    "frankfurt": "FRA",
    "zrh": "ZRH",
    "gen": "GVA",
    "mil": "MXP",
    "mad": "MAD",
    "sto": "ARN",
    "stkm": "ARN",
    "cop": "CPH",
    "osl": "OSL",
    "hel": "HEL",
    "tok": "NRT",
    "tyo": "NRT",
    "syd": "SYD",
}


class UndnsParser:
    """Rule-based extraction of city hints from router DNS names.

    The parser tokenizes a name on dots and dashes, strips trailing digits
    from each token (``ord2`` -> ``ord``) and matches the result against the
    known IATA codes and an alias table.  Tokens earlier in the name (more
    specific labels) are preferred, and the top-level domain labels are never
    treated as location tokens.
    """

    #: DNS labels that are never location hints even if they collide with a code.
    _STOPWORDS = frozenset(
        {
            "net",
            "com",
            "org",
            "edu",
            "gov",
            "core",
            "cr",
            "br",
            "ar",
            "gw",
            "ge",
            "so",
            "ae",
            "te",
            "xe",
            "pos",
            "bb",
            "ip",
            "isp",
            "router",
            "rtr",
        }
    )

    def __init__(
        self,
        cities: Iterable[City] | None = None,
        aliases: Mapping[str, str] | None = None,
        min_confidence: float = 0.5,
    ):
        catalogue = list(cities) if cities is not None else list(WORLD_CITIES)
        self._by_code = {c.code.lower(): c for c in catalogue}
        self._aliases = dict(DEFAULT_CITY_ALIASES if aliases is None else aliases)
        self.min_confidence = min_confidence

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #
    def tokens(self, dns_name: str) -> list[str]:
        """Candidate location tokens of a DNS name, most specific first.

        The final two labels (``example.net``) are dropped, remaining labels
        are split on dashes, lower-cased, and trailing digits removed.
        """
        labels = dns_name.lower().strip(".").split(".")
        if len(labels) > 2:
            labels = labels[:-2]
        out: list[str] = []
        for label in labels:
            for part in re.split(r"[-_]", label):
                token = re.sub(r"\d+$", "", part)
                if token and token not in self._STOPWORDS:
                    out.append(token)
        return out

    def parse(self, dns_name: str) -> DnsLocationHint | None:
        """Extract the best city hint from a DNS name, or ``None``.

        Confidence is higher for exact IATA-code matches found late in the
        hostname (the conventional position for the PoP code) and lower for
        alias matches, reflecting how undns rules differ in reliability.
        """
        if not dns_name:
            return None
        toks = self.tokens(dns_name)
        if not toks:
            return None
        best: DnsLocationHint | None = None
        for position, token in enumerate(toks):
            city: City | None = None
            confidence = 0.0
            if token in self._by_code:
                city = self._by_code[token]
                confidence = 0.9
            elif token in self._aliases:
                code = self._aliases[token].lower()
                city = self._by_code.get(code)
                confidence = 0.75
            if city is None:
                continue
            # Tokens later in the local part of the name (closer to the
            # provider domain) are the conventional PoP-code position.
            confidence += 0.05 * (position / max(1, len(toks) - 1))
            hint = DnsLocationHint(dns_name, city, token, min(confidence, 1.0))
            if best is None or hint.confidence > best.confidence:
                best = hint
        if best is not None and best.confidence >= self.min_confidence:
            return best
        return None

    def parse_many(self, dns_names: Iterable[str]) -> dict[str, DnsLocationHint]:
        """Parse a batch of names, returning only those that produced hints."""
        hints: dict[str, DnsLocationHint] = {}
        for name in dns_names:
            hint = self.parse(name)
            if hint is not None:
                hints[name] = hint
        return hints

"""Synthetic Internet topology with geographic embedding and policy routing.

The Octant paper measures real PlanetLab hosts across the real Internet.  The
reproduction needs a substrate that produces the same *shape* of data:

* end-to-end latencies that are at least the great-circle propagation delay
  and usually moderately above it,
* occasional badly inflated routes caused by policy routing (traffic between
  two nearby hosts of different providers detouring through a distant peering
  point),
* traceroute paths whose intermediate routers have meaningful positions and
  DNS names carrying city codes,
* per-host access-link delays ("heights") that differ between hosts.

This module builds the structural part: providers (autonomous systems), their
points of presence in cities, backbone links, restricted peering links, and
host access links.  Delays are assigned by :mod:`repro.network.latency`; probe
traffic (ping / traceroute) is simulated by :mod:`repro.network.probes`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from ..geometry import GeoPoint
from .geodata import City, WORLD_CITIES

__all__ = [
    "NodeKind",
    "NetworkNode",
    "Link",
    "Provider",
    "TopologyConfig",
    "NetworkTopology",
    "build_topology",
]


class NodeKind:
    """String constants for the kinds of nodes in the topology graph."""

    ROUTER = "router"
    HOST = "host"


@dataclass(frozen=True)
class NetworkNode:
    """A router or end host placed at a geographic location.

    Attributes
    ----------
    node_id:
        Unique string identifier, also the graph node key.
    kind:
        Either :data:`NodeKind.ROUTER` or :data:`NodeKind.HOST`.
    city:
        The city the node is physically located in.
    location:
        Exact coordinates.  Routers sit at the city centre; hosts are placed a
        few kilometres away from the centre so that no two hosts coincide.
    provider:
        Name of the provider (autonomous system) operating the node; hosts
        record the provider of their access network.
    ip_address:
        Synthetic dotted-quad address, unique across the topology.
    dns_name:
        Reverse-DNS name.  Router names embed the city code in the style of
        real ISP naming schemes so that the undns-style parser can extract
        location hints; a configurable fraction of routers get opaque names.
    """

    node_id: str
    kind: str
    city: City
    location: GeoPoint
    provider: str
    ip_address: str
    dns_name: str

    @property
    def is_router(self) -> bool:
        """True for backbone/PoP routers."""
        return self.kind == NodeKind.ROUTER

    @property
    def is_host(self) -> bool:
        """True for end hosts."""
        return self.kind == NodeKind.HOST


@dataclass(frozen=True)
class Link:
    """A physical link between two nodes.

    ``distance_km`` is the great-circle distance between the endpoints; the
    latency model converts it to propagation delay and adds queuing.
    ``kind`` distinguishes backbone, peering and access links because they get
    different queuing behaviour and routing weights.
    """

    node_a: str
    node_b: str
    distance_km: float
    kind: str

    BACKBONE = "backbone"
    PEERING = "peering"
    ACCESS = "access"

    def endpoints(self) -> tuple[str, str]:
        """The two node ids, in stored order."""
        return (self.node_a, self.node_b)


@dataclass
class Provider:
    """An autonomous system: a named provider with PoPs in a set of cities."""

    name: str
    cities: list[City] = field(default_factory=list)
    router_ids: list[str] = field(default_factory=list)
    ip_prefix: int = 10

    def pop_city_codes(self) -> set[str]:
        """City codes where this provider has a PoP."""
        return {c.code for c in self.cities}


@dataclass
class TopologyConfig:
    """Parameters controlling synthetic topology construction.

    The defaults produce a topology sized like the paper's measurement
    universe: a handful of continental providers, PoPs in most catalogue
    cities and restricted peering that yields realistic route inflation.
    """

    seed: int = 42
    num_providers: int = 4
    pops_per_provider: int = 28
    peering_city_count: int = 8
    backbone_neighbors: int = 4
    opaque_dns_fraction: float = 0.2
    misleading_dns_fraction: float = 0.05
    cities: Sequence[City] = WORLD_CITIES
    host_offset_km: float = 8.0
    route_hop_penalty_ms: float = 0.25


class NetworkTopology:
    """A geographically embedded router/host graph with policy routing.

    The routing metric is propagation delay plus a per-hop penalty, with
    peering links additionally penalized.  This mirrors real intra-domain
    shortest-path routing combined with a preference to stay on one's own
    backbone, and it is what produces inflated, indirect routes between hosts
    of different providers -- the phenomenon Section 2.3 of the paper
    compensates for with piecewise localization.
    """

    def __init__(self, config: TopologyConfig):
        self.config = config
        self.graph = nx.Graph()
        self.nodes: dict[str, NetworkNode] = {}
        self.links: dict[tuple[str, str], Link] = {}
        self.providers: dict[str, Provider] = {}
        self._ip_counter = itertools.count(1)
        self._path_cache: dict[tuple[str, str], list[str]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: NetworkNode) -> None:
        """Register a node and add it to the graph."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        self.graph.add_node(node.node_id, kind=node.kind)

    def add_link(self, node_a: str, node_b: str, kind: str) -> Link:
        """Create a link between two existing nodes and add it to the graph."""
        if node_a not in self.nodes or node_b not in self.nodes:
            raise KeyError(f"both endpoints must exist: {node_a!r}, {node_b!r}")
        if node_a == node_b:
            raise ValueError("self-links are not allowed")
        a = self.nodes[node_a]
        b = self.nodes[node_b]
        distance = a.location.distance_km(b.location)
        link = Link(node_a, node_b, distance, kind)
        key = self._link_key(node_a, node_b)
        self.links[key] = link
        weight = self._routing_weight(link)
        self.graph.add_edge(node_a, node_b, weight=weight, kind=kind, distance_km=distance)
        self._path_cache.clear()
        return link

    def _routing_weight(self, link: Link) -> float:
        """Routing metric for a link: propagation-like cost plus policy penalties."""
        base = link.distance_km / 100.0 + self.config.route_hop_penalty_ms
        if link.kind == Link.PEERING:
            # Providers prefer to carry traffic on their own backbone ("hot
            # potato" avoidance is not modelled; a flat penalty suffices to
            # produce inflated paths between providers).
            base += 8.0
        elif link.kind == Link.ACCESS:
            base += 1.0
        return base

    @staticmethod
    def _link_key(node_a: str, node_b: str) -> tuple[str, str]:
        return (node_a, node_b) if node_a <= node_b else (node_b, node_a)

    def next_ip(self, prefix: int) -> str:
        """Allocate the next synthetic IP address under a /8-style prefix."""
        n = next(self._ip_counter)
        return f"{prefix}.{(n >> 16) & 0xFF}.{(n >> 8) & 0xFF}.{n & 0xFF}"

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def node(self, node_id: str) -> NetworkNode:
        """The node with the given id; raises ``KeyError`` if unknown."""
        return self.nodes[node_id]

    def link_between(self, node_a: str, node_b: str) -> Link:
        """The link between two adjacent nodes; raises ``KeyError`` if absent."""
        return self.links[self._link_key(node_a, node_b)]

    def routers(self) -> list[NetworkNode]:
        """All router nodes."""
        return [n for n in self.nodes.values() if n.is_router]

    def hosts(self) -> list[NetworkNode]:
        """All host nodes."""
        return [n for n in self.nodes.values() if n.is_host]

    def node_by_ip(self, ip_address: str) -> NetworkNode | None:
        """Node owning an IP address, or ``None``."""
        for node in self.nodes.values():
            if node.ip_address == ip_address:
                return node
        return None

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self, src: str, dst: str) -> list[str]:
        """The routed path (list of node ids, inclusive) from ``src`` to ``dst``.

        Shortest path under the policy-aware routing metric.  Paths are cached
        because the measurement collection repeatedly probes the same pairs.
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return list(cached)
        reverse = self._path_cache.get((dst, src))
        if reverse is not None:
            path = list(reversed(reverse))
            self._path_cache[key] = path
            return list(path)
        path = nx.shortest_path(self.graph, src, dst, weight="weight")
        self._path_cache[key] = path
        return list(path)

    def path_links(self, path: Sequence[str]) -> list[Link]:
        """Links traversed by a node path."""
        return [self.link_between(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def path_distance_km(self, path: Sequence[str]) -> float:
        """Total physical length of a path in kilometres."""
        return sum(link.distance_km for link in self.path_links(path))

    def route_inflation(self, src: str, dst: str) -> float:
        """Ratio of routed path length to great-circle distance (>= 1)."""
        direct = self.nodes[src].location.distance_km(self.nodes[dst].location)
        if direct <= 0.0:
            return 1.0
        return self.path_distance_km(self.route(src, dst)) / direct

    # ------------------------------------------------------------------ #
    # Host attachment
    # ------------------------------------------------------------------ #
    def attach_host(
        self,
        host_id: str,
        city: City,
        rng: random.Random,
        provider_name: str | None = None,
        dns_name: str | None = None,
        local_pop_threshold_km: float = 80.0,
    ) -> NetworkNode:
        """Create a host in ``city`` and connect it to a nearby access router.

        The host is offset from the city centre by up to
        ``config.host_offset_km`` so two hosts in the same city do not share
        coordinates.  It attaches to the closest router of the preferred
        provider when that provider has a plausibly local PoP.  When no
        provider has a router within ``local_pop_threshold_km``, a local
        *access router* is created in the host's city and dual-homed to the
        two nearest backbone routers -- mirroring how every university town
        has metro/regional infrastructure even if no national carrier runs a
        core PoP there.  Without this, a host's access path would stretch
        hundreds of kilometres toward one direction and the inelastic "height"
        of Section 2.2 would stop being direction-free.
        """
        if host_id in self.nodes:
            raise ValueError(f"duplicate host id {host_id!r}")
        bearing = rng.uniform(0.0, 360.0)
        offset = rng.uniform(0.0, self.config.host_offset_km)
        location = city.location.destination(bearing, offset) if offset > 0 else city.location

        candidates = self.routers()
        if not candidates:
            raise RuntimeError("topology has no routers to attach the host to")
        if provider_name is not None:
            provider_routers = [r for r in candidates if r.provider == provider_name]
            if provider_routers:
                nearest_provider_pop = min(
                    provider_routers, key=lambda r: r.location.distance_km(location)
                )
                # Only honour the provider preference when that provider has a
                # plausibly local PoP; nobody buys transit from a carrier whose
                # nearest point of presence is on another continent.
                if nearest_provider_pop.location.distance_km(location) <= 300.0:
                    candidates = provider_routers
        attach_router = min(candidates, key=lambda r: r.location.distance_km(location))

        if attach_router.location.distance_km(location) > local_pop_threshold_km:
            attach_router = self._create_access_router(city, attach_router.provider, rng)

        provider = attach_router.provider
        prefix = self.providers[provider].ip_prefix if provider in self.providers else 100
        host = NetworkNode(
            node_id=host_id,
            kind=NodeKind.HOST,
            city=city,
            location=location,
            provider=provider,
            ip_address=self.next_ip(prefix),
            dns_name=dns_name or f"{host_id}.{city.code.lower()}.edu",
        )
        self.add_node(host)
        self.add_link(host_id, attach_router.node_id, Link.ACCESS)
        return host

    def _create_access_router(
        self, city: City, provider_name: str, rng: random.Random
    ) -> NetworkNode:
        """Create a metro access router in ``city`` dual-homed to the backbone."""
        router_id = f"{provider_name}-{city.code.lower()}-ar"
        if router_id in self.nodes:
            return self.nodes[router_id]
        provider = self.providers.get(provider_name)
        prefix = provider.ip_prefix if provider is not None else 100
        # Metro/edge aggregation routers rarely follow the tidy PoP naming
        # convention of core routers; most get opaque names, which is what
        # limits GeoTrack (and undns hints generally) near the network edge.
        if rng.random() < 0.75:
            dns_name = (
                f"te-{rng.randint(0, 9)}-{rng.randint(0, 3)}.agg{rng.randint(1, 9)}."
                f"{provider_name}.net"
            )
        else:
            dns_name = (
                f"ge-{rng.randint(0, 9)}-0-0.ar1.{city.code.lower()}1.{provider_name}.net"
            )
        router = NetworkNode(
            node_id=router_id,
            kind=NodeKind.ROUTER,
            city=city,
            location=city.location,
            provider=provider_name,
            ip_address=self.next_ip(prefix),
            dns_name=dns_name,
        )
        self.add_node(router)
        if provider is not None:
            provider.router_ids.append(router_id)
        backbone = sorted(
            (r for r in self.routers() if r.node_id != router_id),
            key=lambda r: r.location.distance_km(city.location),
        )
        for neighbour in backbone[:2]:
            self.add_link(router_id, neighbour.node_id, Link.BACKBONE)
        return router

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, int]:
        """Small dict of counts, handy for logging and tests."""
        return {
            "providers": len(self.providers),
            "routers": len(self.routers()),
            "hosts": len(self.hosts()),
            "links": len(self.links),
        }


def _router_dns_name(
    provider: str,
    city: City,
    index: int,
    rng: random.Random,
    opaque_fraction: float,
    misleading_fraction: float,
    all_cities: Sequence[City],
) -> str:
    """Generate a realistic router DNS name.

    Most routers follow the common ISP convention of embedding the city code
    (``ge-1-2-0.cr1.ord2.ispname.net``).  A configurable fraction get opaque
    names that carry no location hint, and a smaller fraction get *misleading*
    names mentioning a different city -- both happen in the wild and exercise
    Octant's tolerance to erroneous hints.
    """
    interface = f"ge-{rng.randint(0, 9)}-{rng.randint(0, 3)}-{rng.randint(0, 3)}"
    roll = rng.random()
    if roll < misleading_fraction:
        wrong_city = rng.choice([c for c in all_cities if c.code != city.code])
        code = wrong_city.code.lower()
    elif roll < misleading_fraction + opaque_fraction:
        return f"{interface}.r{index}.{provider.lower()}.net"
    else:
        code = city.code.lower()
    return f"{interface}.cr{index}.{code}{rng.randint(1, 3)}.{provider.lower()}.net"


def build_topology(config: TopologyConfig | None = None) -> NetworkTopology:
    """Build the full synthetic topology described by ``config``.

    The construction is deterministic for a given seed:

    1.  Providers are created and assigned PoP cities.  Cities are sampled
        with probability proportional to population so major hubs host PoPs
        of several providers while small university towns typically see one.
    2.  Each provider's PoPs are connected into a backbone: every PoP links to
        its ``backbone_neighbors`` nearest same-provider PoPs, and the whole
        backbone is patched to be connected.
    3.  Providers peer with each other only at the ``peering_city_count``
        largest cities where both have PoPs, creating the restricted peering
        that inflates inter-provider routes.
    """
    cfg = config or TopologyConfig()
    rng = random.Random(cfg.seed)
    topo = NetworkTopology(cfg)

    cities = list(cfg.cities)
    if not cities:
        raise ValueError("TopologyConfig.cities must not be empty")

    weights = [float(c.population) for c in cities]

    provider_names = [f"isp{i + 1}" for i in range(cfg.num_providers)]
    for idx, name in enumerate(provider_names):
        provider = Provider(name=name, ip_prefix=10 + idx)
        # Population-weighted sample of PoP cities without replacement.
        chosen: list[City] = []
        pool = list(zip(cities, weights))
        for _ in range(min(cfg.pops_per_provider, len(pool))):
            total = sum(w for _, w in pool)
            pick = rng.uniform(0.0, total)
            acc = 0.0
            for j, (city, w) in enumerate(pool):
                acc += w
                if pick <= acc:
                    chosen.append(city)
                    pool.pop(j)
                    break
        provider.cities = chosen
        topo.providers[name] = provider

    # Create routers: one router per (provider, PoP city).
    for name, provider in topo.providers.items():
        for i, city in enumerate(provider.cities):
            router_id = f"{name}-{city.code.lower()}"
            dns = _router_dns_name(
                name,
                city,
                index=i % 3 + 1,
                rng=rng,
                opaque_fraction=cfg.opaque_dns_fraction,
                misleading_fraction=cfg.misleading_dns_fraction,
                all_cities=cities,
            )
            node = NetworkNode(
                node_id=router_id,
                kind=NodeKind.ROUTER,
                city=city,
                location=city.location,
                provider=name,
                ip_address=topo.next_ip(provider.ip_prefix),
                dns_name=dns,
            )
            topo.add_node(node)
            provider.router_ids.append(router_id)

    # Backbone links: nearest-neighbour mesh within each provider.
    for provider in topo.providers.values():
        routers = [topo.node(rid) for rid in provider.router_ids]
        for router in routers:
            others = sorted(
                (r for r in routers if r.node_id != router.node_id),
                key=lambda r: r.location.distance_km(router.location),
            )
            for neighbour in others[: cfg.backbone_neighbors]:
                key = topo._link_key(router.node_id, neighbour.node_id)
                if key not in topo.links:
                    topo.add_link(router.node_id, neighbour.node_id, Link.BACKBONE)
        # Patch connectivity: link consecutive components through their
        # closest router pair until the provider backbone is one component.
        subgraph_nodes = set(provider.router_ids)
        while True:
            sub = topo.graph.subgraph(subgraph_nodes)
            components = [list(c) for c in nx.connected_components(sub)]
            if len(components) <= 1:
                break
            comp_a, comp_b = components[0], components[1]
            best_pair = min(
                ((a, b) for a in comp_a for b in comp_b),
                key=lambda pair: topo.node(pair[0]).location.distance_km(
                    topo.node(pair[1]).location
                ),
            )
            topo.add_link(best_pair[0], best_pair[1], Link.BACKBONE)

    # Peering links at the largest shared cities.  Peering points are chosen
    # per region (roughly: the Americas vs the rest of the world) so that two
    # providers serving hosts on both continents never have to haul intra-
    # continental traffic across an ocean just to reach a peering point --
    # real carriers peer at exchanges on every continent they operate on.
    for name_a, name_b in itertools.combinations(provider_names, 2):
        prov_a = topo.providers[name_a]
        prov_b = topo.providers[name_b]
        shared_codes = prov_a.pop_city_codes() & prov_b.pop_city_codes()
        shared_cities = sorted(
            (c for c in cities if c.code in shared_codes),
            key=lambda c: c.population,
            reverse=True,
        )
        americas = [c for c in shared_cities if c.location.lon < -30.0]
        elsewhere = [c for c in shared_cities if c.location.lon >= -30.0]
        per_region = max(1, cfg.peering_city_count // 2)
        peer_cities = americas[:per_region] + elsewhere[:per_region]
        if not peer_cities:
            peer_cities = shared_cities[: cfg.peering_city_count]
        if not peer_cities:
            # No shared city: peer at the geographically closest PoP pair so
            # the graph stays connected.
            best_pair = min(
                (
                    (ra, rb)
                    for ra in prov_a.router_ids
                    for rb in prov_b.router_ids
                ),
                key=lambda pair: topo.node(pair[0]).location.distance_km(
                    topo.node(pair[1]).location
                ),
            )
            topo.add_link(best_pair[0], best_pair[1], Link.PEERING)
            continue
        for city in peer_cities:
            topo.add_link(
                f"{name_a}-{city.code.lower()}",
                f"{name_b}-{city.code.lower()}",
                Link.PEERING,
            )

    return topo

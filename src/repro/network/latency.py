"""End-to-end delay model for the synthetic Internet substrate.

The model decomposes a round-trip time into the components Octant reasons
about:

* **Propagation delay** along every link of the routed path, at 2/3 the speed
  of light in fiber -- the physically inelastic component that correlates
  with geographic distance.
* **Per-node heights** -- the minimum access/processing delay added by the
  endpoints (last-mile links, end-host stacks).  Heights are fixed per node,
  which is exactly the quantity Section 2.2 of the paper recovers by solving
  its linear system over inter-landmark measurements.
* **Queuing jitter** -- a random, probe-varying, non-negative delay on every
  link.  Taking the minimum over several probes drives this component toward
  zero, mirroring how real measurement studies use minimum RTTs.

The model is fully deterministic given its seed: heights are derived from a
per-node hash, and probe jitter from a per-(src, dst, probe index) hash, so
repeated collections and repeated test runs see identical data.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Sequence

from ..geometry import FIBER_SPEED_KM_PER_MS
from .topology import Link, NetworkTopology

__all__ = ["LatencyConfig", "LatencyModel"]


@dataclass(frozen=True)
class LatencyConfig:
    """Parameters of the delay model.

    All times are in milliseconds and describe *one-way* contributions unless
    the name says otherwise; round trips double the path components and count
    the endpoint heights once per direction, matching how an ICMP echo
    traverses the path.
    """

    #: Scale of host access-link heights; heights are drawn from an
    #: exponential distribution with this mean, then clamped to ``max_host_height_ms``.
    #: Campus access networks, department switches and end-host stacks add a
    #: few milliseconds that no amount of probing removes -- this is the
    #: inelastic component Section 2.2 of the paper recovers.
    mean_host_height_ms: float = 4.0
    #: Upper clamp for host heights (badly provisioned DSL, not satellite).
    max_host_height_ms: float = 18.0
    #: Fixed per-router forwarding/processing delay.
    router_processing_ms: float = 0.05
    #: Mean of the exponential queuing jitter added per link per probe.
    mean_link_queuing_ms: float = 0.4
    #: Probability that a probe crosses a transiently congested link, in which
    #: case an extra burst delay is added.
    congestion_probability: float = 0.03
    #: Mean of the extra burst delay on congested probes.
    congestion_burst_ms: float = 25.0
    #: Standard deviation of zero-mean Gaussian measurement noise per probe
    #: (timestamping granularity, kernel scheduling).
    measurement_noise_ms: float = 0.1
    #: Deterministic seed for heights and probe jitter.
    seed: int = 1


class LatencyModel:
    """Computes probe delays over a :class:`~repro.network.topology.NetworkTopology`."""

    def __init__(self, topology: NetworkTopology, config: LatencyConfig | None = None):
        self.topology = topology
        self.config = config or LatencyConfig()
        self._heights: dict[str, float] = {}
        self._assign_heights()

    # ------------------------------------------------------------------ #
    # Deterministic randomness helpers
    # ------------------------------------------------------------------ #
    def _rng_for(self, *parts: object) -> random.Random:
        """A ``random.Random`` seeded from the model seed and a label tuple."""
        material = ":".join(str(p) for p in (self.config.seed, *parts))
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _assign_heights(self) -> None:
        """Assign the fixed per-node height (minimum access delay)."""
        for node_id, node in self.topology.nodes.items():
            rng = self._rng_for("height", node_id)
            if node.is_host:
                height = min(
                    rng.expovariate(1.0 / self.config.mean_host_height_ms),
                    self.config.max_host_height_ms,
                )
            else:
                height = self.config.router_processing_ms
            self._heights[node_id] = height

    # ------------------------------------------------------------------ #
    # Ground truth accessors (used by tests and the evaluation harness)
    # ------------------------------------------------------------------ #
    def true_height_ms(self, node_id: str) -> float:
        """The node's true one-way height; ground truth for Section 2.2 tests."""
        return self._heights[node_id]

    def propagation_one_way_ms(self, path: Sequence[str]) -> float:
        """Pure propagation delay of a routed path, one way."""
        total = 0.0
        for link in self.topology.path_links(path):
            total += link.distance_km / FIBER_SPEED_KM_PER_MS
        return total

    def minimum_rtt_ms(self, src: str, dst: str) -> float:
        """The floor any probe between ``src`` and ``dst`` can achieve.

        Propagation both ways along the routed path, plus both endpoint
        heights in each direction and the router processing on the path.
        This is the value minimum-filtered measurements converge to.
        """
        path = self.topology.route(src, dst)
        prop = self.propagation_one_way_ms(path)
        processing = sum(
            self._heights[node_id] for node_id in path[1:-1]
        )
        endpoint = self._heights[src] + self._heights[dst]
        return 2.0 * (prop + processing) + 2.0 * endpoint

    # ------------------------------------------------------------------ #
    # Probe simulation
    # ------------------------------------------------------------------ #
    def probe_rtt_ms(self, src: str, dst: str, probe_index: int = 0) -> float:
        """Round-trip time of one probe, including queuing jitter and noise."""
        path = self.topology.route(src, dst)
        return self._probe_over_path(path, src, dst, probe_index)

    def probe_rtts_ms(self, src: str, dst: str, count: int) -> list[float]:
        """Round-trip times of ``count`` time-dispersed probes."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        return [self.probe_rtt_ms(src, dst, i) for i in range(count)]

    def partial_path_rtt_ms(
        self, src: str, dst: str, hop_index: int, probe_index: int = 0
    ) -> float:
        """RTT from ``src`` to the ``hop_index``-th node on the route to ``dst``.

        This is what a traceroute probe with a limited TTL measures: the
        packet travels the path prefix and the ICMP time-exceeded comes back
        the same way.  ``hop_index`` counts nodes from the source (1 is the
        first router).
        """
        path = self.topology.route(src, dst)
        if not 1 <= hop_index < len(path):
            raise ValueError(
                f"hop_index must be in [1, {len(path) - 1}], got {hop_index!r}"
            )
        prefix = path[: hop_index + 1]
        return self._probe_over_path(prefix, src, dst, probe_index, partial=True)

    def _probe_over_path(
        self,
        path: Sequence[str],
        src: str,
        dst: str,
        probe_index: int,
        partial: bool = False,
    ) -> float:
        if len(path) < 2:
            return 0.0
        cfg = self.config
        rng = self._rng_for("probe", src, dst, probe_index, len(path) if partial else "full")

        prop = self.propagation_one_way_ms(path)
        processing = sum(self._heights[n] for n in path[1:-1])
        # The responding node (last on the partial path) contributes its own
        # processing; for a full ping that is the destination host's height.
        endpoint = self._heights[path[0]] + self._heights[path[-1]]

        queuing = 0.0
        for _ in self.topology.path_links(path):
            # Forward and reverse direction each pick up jitter.
            queuing += rng.expovariate(1.0 / cfg.mean_link_queuing_ms)
            queuing += rng.expovariate(1.0 / cfg.mean_link_queuing_ms)
            if rng.random() < cfg.congestion_probability:
                queuing += rng.expovariate(1.0 / cfg.congestion_burst_ms)

        noise = abs(rng.gauss(0.0, cfg.measurement_noise_ms))
        return 2.0 * (prop + processing) + 2.0 * endpoint + queuing + noise

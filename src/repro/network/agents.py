"""Autonomous probe agents streaming measurements into a measurement log.

Each :class:`ProbeAgent` models one vantage point running a measurement
daemon: it wakes on a Poisson process, picks the next ``(src, dst)`` pair from
its round-robin schedule, issues the probe, and appends the result to a
:class:`~repro.network.log.MeasurementLog`.  A fleet of agents is the live
churn scenario the ROADMAP's "continuous measurement plane" item asks for --
sustained writes arriving while the serving tier localizes against pinned
snapshots.

Determinism: inter-arrival gaps and the probe schedule derive from
:func:`~repro.resilience.faults.stable_uniform` keyed on ``(agent name, seed,
tick index)``, so the *sequence of measurements* produced by a run is a pure
function of its configuration.  Only the wall-clock interleaving with the
compactor varies between runs, which is exactly the nondeterminism the
hammer tests exercise.

``probe_fn`` exists because :class:`~repro.network.probes.Prober` is
stateless and deterministic: re-probing a pair returns the identical
``PingResult``, which the delta-scoped invalidation correctly treats as a
no-op.  Benchmarks that need *honest* churn inject a ``probe_fn`` that
perturbs RTTs deterministically per tick.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable, Sequence
from typing import Any

from ..resilience.faults import stable_uniform
from .log import MeasurementLog
from .probes import PingResult, Prober

__all__ = ["ProbeAgent", "run_agents"]


class ProbeAgent:
    """One streaming measurement agent feeding a :class:`MeasurementLog`.

    Parameters
    ----------
    name:
        Stable identity; keys the deterministic arrival/schedule draws.
    log:
        Destination for every probe result.
    pairs:
        The ``(src, dst)`` pairs this agent owns, probed round-robin with a
        deterministic per-tick rotation.
    rate_per_s:
        Mean Poisson probe rate.  Gaps are ``-ln(1 - u) / rate`` with ``u``
        drawn from ``stable_uniform(name, seed, tick)``.
    probe_fn:
        ``(src, dst, tick) -> PingResult``; defaults to ``prober.ping`` when
        a ``prober`` is given instead.
    seed:
        Folded into every draw, so fleets can be re-seeded as a unit.
    max_ticks:
        Optional stop bound, for bounded test runs.
    """

    def __init__(
        self,
        name: str,
        log: MeasurementLog,
        pairs: Sequence[tuple[str, str]],
        *,
        rate_per_s: float = 50.0,
        prober: Prober | None = None,
        probe_fn: Callable[[str, str, int], PingResult] | None = None,
        seed: int = 0,
        max_ticks: int | None = None,
    ) -> None:
        if not pairs:
            raise ValueError("agent needs at least one (src, dst) pair")
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s!r}")
        if probe_fn is None:
            if prober is None:
                raise ValueError("provide either probe_fn or prober")
            probe_fn = lambda src, dst, tick: prober.ping(src, dst)  # noqa: E731
        self.name = name
        self.log = log
        self.pairs = tuple(pairs)
        self.rate_per_s = rate_per_s
        self.probe_fn = probe_fn
        self.seed = seed
        self.max_ticks = max_ticks
        self.ticks = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Deterministic schedule
    # ------------------------------------------------------------------ #
    def gap_s(self, tick: int) -> float:
        """Poisson inter-arrival gap before ``tick`` (pure function)."""
        u = stable_uniform("agent-gap", self.name, self.seed, tick)
        return -math.log(1.0 - u) / self.rate_per_s

    def pair_for(self, tick: int) -> tuple[str, str]:
        """The pair probed at ``tick``: round-robin with a seeded offset."""
        offset = int(
            stable_uniform("agent-pair", self.name, self.seed) * len(self.pairs)
        )
        return self.pairs[(offset + tick) % len(self.pairs)]

    def step(self) -> int:
        """Probe once (synchronously) and append the result; returns the seq."""
        tick = self.ticks
        src, dst = self.pair_for(tick)
        result = self.probe_fn(src, dst, tick)
        seq = self.log.append(pings=(result,))
        self.ticks = tick + 1
        return seq

    # ------------------------------------------------------------------ #
    # Streaming loop
    # ------------------------------------------------------------------ #
    def start(self) -> "ProbeAgent":
        """Run the agent loop on a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"probe-agent-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Signal the loop to exit and join the thread."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            if self.max_ticks is not None and self.ticks >= self.max_ticks:
                return
            if self._stop.wait(timeout=self.gap_s(self.ticks)):
                return
            try:
                self.step()
            except RuntimeError:
                # Log stopped under us: the fleet is shutting down.
                self.errors += 1
                return
            except Exception:  # noqa: BLE001 - a dead agent, not a dead fleet
                self.errors += 1

    def stats(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ticks": self.ticks,
            "errors": self.errors,
            "running": self._thread is not None and self._thread.is_alive(),
        }


def run_agents(
    agents: Sequence[ProbeAgent],
    duration_s: float,
    *,
    poll_s: float = 0.01,
) -> None:
    """Run a fleet for ``duration_s`` (or until all hit max_ticks), then stop."""
    for agent in agents:
        agent.start()
    deadline = time.monotonic() + duration_s
    try:
        while time.monotonic() < deadline:
            if all(
                a.max_ticks is not None and a.ticks >= a.max_ticks for a in agents
            ):
                break
            time.sleep(poll_s)
    finally:
        for agent in agents:
            agent.stop()

"""Synthetic WHOIS registry mapping IP prefixes to registered street locations.

Section 2.5 of the paper lists the WHOIS database as a source of *positive*
geographic constraints: the zipcode registered for an IP address block places
its hosts near that zipcode's centroid -- most of the time.  Large
organizations register entire address blocks at their headquarters, so the
registered location can be hundreds of miles from where a particular host
actually sits; Octant therefore treats WHOIS-derived constraints as weak
(low-weight) and sized generously.

The synthetic registry reproduces both behaviours: most records point near
the covered hosts' true city, and a configurable fraction are "headquarters
records" pointing at a distant city.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from ..geometry import GeoPoint
from .geodata import City, WORLD_CITIES
from .topology import NetworkTopology

__all__ = ["WhoisRecord", "WhoisRegistry", "build_registry_from_topology"]


@dataclass(frozen=True)
class WhoisRecord:
    """A registration record for an IP prefix.

    Attributes
    ----------
    prefix:
        Dotted prefix string, e.g. ``"10.0"`` covering ``10.0.0.0/16``-style
        blocks (the synthetic addressing uses the first two octets as the
        organizational block).
    organization:
        Registered organization name.
    city:
        The catalogue city of the registered address.
    postal_code:
        Registered postal code.
    accurate:
        True when the registered city matches where the covered hosts really
        are; False for headquarters-style registrations.  Ground-truth flag
        used only by tests and the evaluation harness, never by Octant.
    """

    prefix: str
    organization: str
    city: City
    postal_code: str
    accurate: bool

    @property
    def location(self) -> GeoPoint:
        """Coordinates of the registered city centre."""
        return self.city.location


class WhoisRegistry:
    """Longest-prefix lookup over a set of :class:`WhoisRecord` entries."""

    def __init__(self, records: Iterable[WhoisRecord] = ()):
        self._records: dict[str, WhoisRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: WhoisRecord) -> None:
        """Register a record, replacing any existing record for the prefix."""
        self._records[record.prefix] = record

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[WhoisRecord]:
        """All records (copy)."""
        return list(self._records.values())

    def lookup(self, ip_address: str) -> WhoisRecord | None:
        """Longest-matching-prefix lookup for an IP address."""
        octets = ip_address.split(".")
        for length in range(len(octets), 0, -1):
            prefix = ".".join(octets[:length])
            record = self._records.get(prefix)
            if record is not None:
                return record
        return None


def build_registry_from_topology(
    topology: NetworkTopology,
    seed: int = 7,
    inaccurate_fraction: float = 0.2,
) -> WhoisRegistry:
    """Create a WHOIS registry covering every host's address assignment.

    Each host's assignment is registered to the host's own city with
    probability ``1 - inaccurate_fraction``; otherwise it is registered to a
    large "headquarters" city elsewhere, reproducing the registered-far-from-
    reality failure mode the paper (and the IP2Geo/GeoCluster work it cites)
    warns about.
    """
    if not 0.0 <= inaccurate_fraction <= 1.0:
        raise ValueError(f"inaccurate_fraction must be in [0, 1], got {inaccurate_fraction!r}")
    rng = random.Random(seed)
    registry = WhoisRegistry()
    headquarters_pool = sorted(WORLD_CITIES, key=lambda c: c.population, reverse=True)[:12]

    for host in topology.hosts():
        # Register the host's own assignment (a SWIP'd /32-style record).
        # Coarser records covering whole provider blocks would make every
        # record inaccurate for most hosts by construction; the paper's
        # failure mode of interest -- headquarters registrations -- is
        # modelled explicitly through ``inaccurate_fraction`` instead.
        prefix = host.ip_address
        accurate = rng.random() >= inaccurate_fraction
        if accurate:
            city = host.city
        else:
            candidates = [c for c in headquarters_pool if c.code != host.city.code]
            city = rng.choice(candidates)
        registry.add(
            WhoisRecord(
                prefix=prefix,
                organization=f"{host.city.name} Research Network",
                city=city,
                postal_code=city.postal_code,
                accurate=accurate,
            )
        )
    return registry

"""Geographic ground truth used by the synthetic Internet substrate.

The paper's evaluation runs on 51 PlanetLab hosts whose true positions were
determined externally, plus auxiliary data sources: router DNS names carrying
city codes, WHOIS records carrying zipcodes, and knowledge of oceans and
uninhabited areas.  This module provides the equivalent ground truth for the
simulator:

* :data:`WORLD_CITIES` -- a catalogue of cities (name, country, IATA-style
  code, coordinates, population, postal code) used to place routers, hosts
  and PoPs.  Coordinates are real; the catalogue is intentionally biased
  toward North America and Europe, mirroring the PlanetLab footprint of 2006.
* :data:`OCEAN_REGIONS` -- coarse convex polygons covering open ocean,
  which Octant uses as negative geographic constraints (Section 2.5).
* :data:`UNINHABITED_REGIONS` -- coarse polygons for large uninhabited land
  areas (northern Canada, Greenland, the Sahara) used the same way.
* :func:`city_by_code` / :func:`nearest_city` -- lookup helpers.

Everything here is plain data: no randomness, no network access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..geometry import GeoPoint

__all__ = [
    "City",
    "GeoRegion",
    "WORLD_CITIES",
    "US_CITIES",
    "EUROPEAN_CITIES",
    "OCEAN_REGIONS",
    "UNINHABITED_REGIONS",
    "DETAILED_OCEAN_REGIONS",
    "DETAILED_UNINHABITED_REGIONS",
    "city_by_code",
    "city_by_name",
    "nearest_city",
    "cities_in_bbox",
]


@dataclass(frozen=True)
class City:
    """A city used as an anchor for routers, PoPs and hosts.

    Attributes
    ----------
    name:
        Human-readable city name.
    country:
        ISO-like two-letter country code.
    code:
        Three-letter IATA-style airport code; this is the token embedded in
        router DNS names (``...ord2.core.example.net``) that the undns-style
        parser extracts.
    location:
        Geographic coordinates of the city centre.
    population:
        Approximate metro population, used to weight router placement.
    postal_code:
        A representative postal/zip code for the city centre, used by the
        synthetic WHOIS registry.
    """

    name: str
    country: str
    code: str
    location: GeoPoint
    population: int
    postal_code: str


def _c(name: str, country: str, code: str, lat: float, lon: float, pop: int, zipc: str) -> City:
    return City(name, country, code, GeoPoint(lat, lon), pop, zipc)


#: Cities in the United States and Canada.  Postal codes are real city-centre
#: codes; populations are rounded metro figures.
US_CITIES: tuple[City, ...] = (
    _c("New York", "US", "JFK", 40.7128, -74.0060, 19000000, "10001"),
    _c("Los Angeles", "US", "LAX", 34.0522, -118.2437, 13000000, "90012"),
    _c("Chicago", "US", "ORD", 41.8781, -87.6298, 9500000, "60601"),
    _c("Houston", "US", "IAH", 29.7604, -95.3698, 7000000, "77002"),
    _c("Phoenix", "US", "PHX", 33.4484, -112.0740, 4900000, "85004"),
    _c("Philadelphia", "US", "PHL", 39.9526, -75.1652, 6100000, "19103"),
    _c("San Antonio", "US", "SAT", 29.4241, -98.4936, 2550000, "78205"),
    _c("San Diego", "US", "SAN", 32.7157, -117.1611, 3300000, "92101"),
    _c("Dallas", "US", "DFW", 32.7767, -96.7970, 7600000, "75201"),
    _c("San Jose", "US", "SJC", 37.3382, -121.8863, 2000000, "95113"),
    _c("Austin", "US", "AUS", 30.2672, -97.7431, 2300000, "78701"),
    _c("Seattle", "US", "SEA", 47.6062, -122.3321, 4000000, "98101"),
    _c("Denver", "US", "DEN", 39.7392, -104.9903, 2950000, "80202"),
    _c("Washington", "US", "IAD", 38.9072, -77.0369, 6300000, "20001"),
    _c("Boston", "US", "BOS", 42.3601, -71.0589, 4900000, "02108"),
    _c("Nashville", "US", "BNA", 36.1627, -86.7816, 2000000, "37201"),
    _c("Detroit", "US", "DTW", 42.3314, -83.0458, 4300000, "48226"),
    _c("Portland", "US", "PDX", 45.5152, -122.6784, 2500000, "97204"),
    _c("Las Vegas", "US", "LAS", 36.1699, -115.1398, 2300000, "89101"),
    _c("Memphis", "US", "MEM", 35.1495, -90.0490, 1350000, "38103"),
    _c("Baltimore", "US", "BWI", 39.2904, -76.6122, 2800000, "21202"),
    _c("Milwaukee", "US", "MKE", 43.0389, -87.9065, 1570000, "53202"),
    _c("Albuquerque", "US", "ABQ", 35.0844, -106.6504, 920000, "87102"),
    _c("Kansas City", "US", "MCI", 39.0997, -94.5786, 2200000, "64105"),
    _c("Atlanta", "US", "ATL", 33.7490, -84.3880, 6100000, "30303"),
    _c("Miami", "US", "MIA", 25.7617, -80.1918, 6200000, "33130"),
    _c("Minneapolis", "US", "MSP", 44.9778, -93.2650, 3700000, "55401"),
    _c("Cleveland", "US", "CLE", 41.4993, -81.6944, 2050000, "44113"),
    _c("New Orleans", "US", "MSY", 29.9511, -90.0715, 1270000, "70112"),
    _c("Tampa", "US", "TPA", 27.9506, -82.4572, 3200000, "33602"),
    _c("Pittsburgh", "US", "PIT", 40.4406, -79.9959, 2300000, "15222"),
    _c("St. Louis", "US", "STL", 38.6270, -90.1994, 2800000, "63101"),
    _c("Salt Lake City", "US", "SLC", 40.7608, -111.8910, 1260000, "84101"),
    _c("Raleigh", "US", "RDU", 35.7796, -78.6382, 1450000, "27601"),
    _c("Columbus", "US", "CMH", 39.9612, -82.9988, 2150000, "43215"),
    _c("Indianapolis", "US", "IND", 39.7684, -86.1581, 2100000, "46204"),
    _c("Charlotte", "US", "CLT", 35.2271, -80.8431, 2700000, "28202"),
    _c("Sacramento", "US", "SMF", 38.5816, -121.4944, 2400000, "95814"),
    _c("Cincinnati", "US", "CVG", 39.1031, -84.5120, 2250000, "45202"),
    _c("Orlando", "US", "MCO", 28.5383, -81.3792, 2700000, "32801"),
    _c("Buffalo", "US", "BUF", 42.8864, -78.8784, 1160000, "14202"),
    _c("Rochester", "US", "ROC", 43.1566, -77.6088, 1080000, "14604"),
    _c("Ithaca", "US", "ITH", 42.4440, -76.5019, 105000, "14850"),
    _c("Princeton", "US", "PCT", 40.3431, -74.6551, 31000, "08540"),
    _c("Berkeley", "US", "JBK", 37.8715, -122.2730, 121000, "94704"),
    _c("Ann Arbor", "US", "ARB", 42.2808, -83.7430, 122000, "48104"),
    _c("Madison", "US", "MSN", 43.0731, -89.4012, 270000, "53703"),
    _c("Boulder", "US", "WBU", 40.0150, -105.2705, 108000, "80302"),
    _c("Durham", "US", "RDM", 35.9940, -78.8986, 290000, "27701"),
    _c("Pasadena", "US", "PAS", 34.1478, -118.1445, 140000, "91101"),
    _c("Santa Barbara", "US", "SBA", 34.4208, -119.6982, 92000, "93101"),
    _c("Eugene", "US", "EUG", 44.0521, -123.0868, 172000, "97401"),
    _c("Tucson", "US", "TUS", 32.2226, -110.9747, 545000, "85701"),
    _c("El Paso", "US", "ELP", 31.7619, -106.4850, 680000, "79901"),
    _c("Omaha", "US", "OMA", 41.2565, -95.9345, 480000, "68102"),
    _c("Boise", "US", "BOI", 43.6150, -116.2023, 235000, "83702"),
    _c("Anchorage", "US", "ANC", 61.2181, -149.9003, 290000, "99501"),
    _c("Honolulu", "US", "HNL", 21.3069, -157.8583, 350000, "96813"),
    _c("Toronto", "CA", "YYZ", 43.6532, -79.3832, 6200000, "M5H"),
    _c("Montreal", "CA", "YUL", 45.5017, -73.5673, 4200000, "H2Y"),
    _c("Vancouver", "CA", "YVR", 49.2827, -123.1207, 2600000, "V6B"),
    _c("Ottawa", "CA", "YOW", 45.4215, -75.6972, 1400000, "K1P"),
    _c("Calgary", "CA", "YYC", 51.0447, -114.0719, 1500000, "T2P"),
    _c("Waterloo", "CA", "YKF", 43.4643, -80.5204, 580000, "N2L"),
    _c("Halifax", "CA", "YHZ", 44.6488, -63.5752, 440000, "B3J"),
    _c("Winnipeg", "CA", "YWG", 49.8951, -97.1384, 830000, "R3C"),
    _c("Edmonton", "CA", "YEG", 53.5461, -113.4938, 1400000, "T5J"),
)

#: Cities in Europe.
EUROPEAN_CITIES: tuple[City, ...] = (
    _c("London", "GB", "LHR", 51.5074, -0.1278, 14000000, "EC1A"),
    _c("Cambridge", "GB", "CBG", 52.2053, 0.1218, 130000, "CB2"),
    _c("Manchester", "GB", "MAN", 53.4808, -2.2426, 2800000, "M1"),
    _c("Edinburgh", "GB", "EDI", 55.9533, -3.1883, 540000, "EH1"),
    _c("Dublin", "IE", "DUB", 53.3498, -6.2603, 1400000, "D01"),
    _c("Paris", "FR", "CDG", 48.8566, 2.3522, 12500000, "75001"),
    _c("Lyon", "FR", "LYS", 45.7640, 4.8357, 2300000, "69001"),
    _c("Grenoble", "FR", "GNB", 45.1885, 5.7245, 690000, "38000"),
    _c("Sophia Antipolis", "FR", "NCE", 43.6169, 7.0548, 990000, "06560"),
    _c("Amsterdam", "NL", "AMS", 52.3676, 4.9041, 2480000, "1012"),
    _c("Delft", "NL", "DLF", 52.0116, 4.3571, 104000, "2611"),
    _c("Brussels", "BE", "BRU", 50.8503, 4.3517, 2100000, "1000"),
    _c("Frankfurt", "DE", "FRA", 50.1109, 8.6821, 2300000, "60311"),
    _c("Berlin", "DE", "BER", 52.5200, 13.4050, 3700000, "10115"),
    _c("Munich", "DE", "MUC", 48.1351, 11.5820, 2600000, "80331"),
    _c("Karlsruhe", "DE", "FKB", 49.0069, 8.4037, 310000, "76131"),
    _c("Hamburg", "DE", "HAM", 53.5511, 9.9937, 1850000, "20095"),
    _c("Zurich", "CH", "ZRH", 47.3769, 8.5417, 1400000, "8001"),
    _c("Geneva", "CH", "GVA", 46.2044, 6.1432, 600000, "1201"),
    _c("Lausanne", "CH", "QLS", 46.5197, 6.6323, 420000, "1003"),
    _c("Vienna", "AT", "VIE", 48.2082, 16.3738, 1900000, "1010"),
    _c("Milan", "IT", "MXP", 45.4642, 9.1900, 3200000, "20121"),
    _c("Rome", "IT", "FCO", 41.9028, 12.4964, 4300000, "00184"),
    _c("Pisa", "IT", "PSA", 43.7228, 10.4017, 90000, "56126"),
    _c("Bologna", "IT", "BLQ", 44.4949, 11.3426, 1000000, "40121"),
    _c("Madrid", "ES", "MAD", 40.4168, -3.7038, 6700000, "28013"),
    _c("Barcelona", "ES", "BCN", 41.3874, 2.1686, 5600000, "08002"),
    _c("Lisbon", "PT", "LIS", 38.7223, -9.1393, 2900000, "1100"),
    _c("Stockholm", "SE", "ARN", 59.3293, 18.0686, 2400000, "111 29"),
    _c("Lulea", "SE", "LLA", 65.5848, 22.1567, 78000, "972 38"),
    _c("Gothenburg", "SE", "GOT", 57.7089, 11.9746, 1050000, "411 06"),
    _c("Copenhagen", "DK", "CPH", 55.6761, 12.5683, 2100000, "1050"),
    _c("Oslo", "NO", "OSL", 59.9139, 10.7522, 1050000, "0151"),
    _c("Trondheim", "NO", "TRD", 63.4305, 10.3951, 200000, "7010"),
    _c("Helsinki", "FI", "HEL", 60.1699, 24.9384, 1500000, "00100"),
    _c("Warsaw", "PL", "WAW", 52.2297, 21.0122, 3100000, "00-001"),
    _c("Wroclaw", "PL", "WRO", 51.1079, 17.0385, 640000, "50-001"),
    _c("Prague", "CZ", "PRG", 50.0755, 14.4378, 1300000, "110 00"),
    _c("Budapest", "HU", "BUD", 47.4979, 19.0402, 1750000, "1011"),
    _c("Athens", "GR", "ATH", 37.9838, 23.7275, 3150000, "105 57"),
    _c("Moscow", "RU", "SVO", 55.7558, 37.6173, 12500000, "101000"),
    _c("St. Petersburg", "RU", "LED", 59.9311, 30.3609, 5400000, "190000"),
)

#: Cities in Asia, Oceania and South America.  Kept smaller, as the PlanetLab
#: footprint in 2006 was sparse there, but enough to exercise long routes.
OTHER_CITIES: tuple[City, ...] = (
    _c("Tokyo", "JP", "NRT", 35.6762, 139.6503, 37000000, "100-0001"),
    _c("Osaka", "JP", "KIX", 34.6937, 135.5023, 19000000, "530-0001"),
    _c("Seoul", "KR", "ICN", 37.5665, 126.9780, 25000000, "04524"),
    _c("Beijing", "CN", "PEK", 39.9042, 116.4074, 21500000, "100000"),
    _c("Shanghai", "CN", "PVG", 31.2304, 121.4737, 26300000, "200000"),
    _c("Hong Kong", "HK", "HKG", 22.3193, 114.1694, 7500000, "999077"),
    _c("Taipei", "TW", "TPE", 25.0330, 121.5654, 7000000, "100"),
    _c("Singapore", "SG", "SIN", 1.3521, 103.8198, 5700000, "018989"),
    _c("Bangalore", "IN", "BLR", 12.9716, 77.5946, 13000000, "560001"),
    _c("Mumbai", "IN", "BOM", 19.0760, 72.8777, 20400000, "400001"),
    _c("Sydney", "AU", "SYD", -33.8688, 151.2093, 5300000, "2000"),
    _c("Melbourne", "AU", "MEL", -37.8136, 144.9631, 5000000, "3000"),
    _c("Auckland", "NZ", "AKL", -36.8509, 174.7645, 1650000, "1010"),
    _c("Sao Paulo", "BR", "GRU", -23.5505, -46.6333, 22000000, "01000-000"),
    _c("Rio de Janeiro", "BR", "GIG", -22.9068, -43.1729, 13500000, "20000-000"),
    _c("Buenos Aires", "AR", "EZE", -34.6037, -58.3816, 15000000, "C1002"),
    _c("Santiago", "CL", "SCL", -33.4489, -70.6693, 6800000, "8320000"),
    _c("Mexico City", "MX", "MEX", 19.4326, -99.1332, 21800000, "06000"),
    _c("Tel Aviv", "IL", "TLV", 32.0853, 34.7818, 4000000, "6100000"),
    _c("Cairo", "EG", "CAI", 30.0444, 31.2357, 20900000, "11511"),
    _c("Johannesburg", "ZA", "JNB", -26.2041, 28.0473, 10000000, "2000"),
)

#: The complete city catalogue.
WORLD_CITIES: tuple[City, ...] = US_CITIES + EUROPEAN_CITIES + OTHER_CITIES

_CITIES_BY_CODE = {city.code: city for city in WORLD_CITIES}
_CITIES_BY_NAME = {city.name.lower(): city for city in WORLD_CITIES}


@dataclass(frozen=True)
class GeoRegion:
    """A named closed polygon on the globe used as a geographic constraint.

    Regions are stored as rings of geographic points.  The *coarse*
    catalogue keeps ocean and uninhabited regions convex, which historically
    kept the polygon algebra on its robust fast path; the *detailed*
    catalogue (``DETAILED_OCEAN_REGIONS`` / ``DETAILED_UNINHABITED_REGIONS``)
    follows coastlines with non-convex rings -- excluding strictly more open
    water and desert -- and relies on the solver's vectorized convex-mask
    decomposition of non-convex exclusions.  Both err on the side of smaller
    regions, which keeps the constraints sound (they never exclude land a
    target could occupy).
    """

    name: str
    ring: tuple[GeoPoint, ...]
    kind: str = "ocean"

    def __post_init__(self) -> None:
        if len(self.ring) < 3:
            raise ValueError(f"region {self.name!r} needs at least 3 boundary points")


def _region(name: str, kind: str, *latlon: tuple[float, float]) -> GeoRegion:
    return GeoRegion(name, tuple(GeoPoint(lat, lon) for lat, lon in latlon), kind)


#: Coarse convex polygons covering open ocean.  Used as negative constraints:
#: an Internet host is not in the middle of the North Atlantic.
OCEAN_REGIONS: tuple[GeoRegion, ...] = (
    _region(
        "north-atlantic",
        "ocean",
        (50.0, -40.0),
        (45.0, -20.0),
        (35.0, -20.0),
        (25.0, -45.0),
        (30.0, -65.0),
        (40.0, -60.0),
    ),
    _region(
        "mid-atlantic",
        "ocean",
        (25.0, -55.0),
        (20.0, -30.0),
        (5.0, -25.0),
        (0.0, -35.0),
        (10.0, -50.0),
    ),
    _region(
        "north-pacific-east",
        "ocean",
        (45.0, -150.0),
        (45.0, -130.0),
        (25.0, -122.0),
        (15.0, -135.0),
        (20.0, -155.0),
        (35.0, -160.0),
    ),
    _region(
        "north-pacific-west",
        "ocean",
        (42.0, 165.0),
        (42.0, 179.0),
        (15.0, 179.0),
        (10.0, 160.0),
        (25.0, 150.0),
    ),
    _region(
        "gulf-of-mexico",
        "ocean",
        (28.5, -94.0),
        (28.5, -86.0),
        (24.0, -84.0),
        (21.5, -90.0),
        (23.5, -96.0),
    ),
    _region(
        "hudson-bay",
        "ocean",
        (62.0, -92.0),
        (62.0, -80.0),
        (56.0, -78.0),
        (54.0, -84.0),
        (56.0, -92.0),
    ),
    _region(
        "labrador-sea",
        "ocean",
        (60.0, -60.0),
        (58.0, -48.0),
        (50.0, -45.0),
        (48.0, -52.0),
        (54.0, -58.0),
    ),
    _region(
        "norwegian-sea",
        "ocean",
        (70.0, -5.0),
        (68.0, 8.0),
        (63.0, 3.0),
        (62.0, -8.0),
        (66.0, -12.0),
    ),
    _region(
        "bay-of-biscay",
        "ocean",
        (47.5, -8.0),
        (47.5, -3.0),
        (44.5, -2.5),
        (44.0, -7.0),
    ),
    _region(
        "mediterranean-west",
        "ocean",
        (42.0, 4.0),
        (41.0, 9.5),
        (37.5, 9.0),
        (36.5, 2.0),
        (39.0, 0.5),
    ),
    _region(
        "south-atlantic",
        "ocean",
        (-10.0, -30.0),
        (-10.0, -10.0),
        (-35.0, 0.0),
        (-40.0, -30.0),
        (-25.0, -38.0),
    ),
    _region(
        "indian-ocean",
        "ocean",
        (-5.0, 65.0),
        (-5.0, 95.0),
        (-30.0, 100.0),
        (-35.0, 70.0),
        (-20.0, 60.0),
    ),
    _region(
        "tasman-sea",
        "ocean",
        (-32.0, 155.0),
        (-34.0, 170.0),
        (-45.0, 168.0),
        (-45.0, 152.0),
    ),
)

#: Coarse polygons for large, essentially uninhabited land areas.
UNINHABITED_REGIONS: tuple[GeoRegion, ...] = (
    _region(
        "greenland-interior",
        "uninhabited",
        (78.0, -55.0),
        (78.0, -30.0),
        (65.0, -35.0),
        (63.0, -48.0),
        (70.0, -52.0),
    ),
    _region(
        "northern-canada",
        "uninhabited",
        (72.0, -120.0),
        (72.0, -95.0),
        (63.0, -95.0),
        (62.0, -115.0),
        (66.0, -122.0),
    ),
    _region(
        "sahara-interior",
        "uninhabited",
        (28.0, -5.0),
        (28.0, 20.0),
        (18.0, 22.0),
        (16.0, -2.0),
        (22.0, -8.0),
    ),
    _region(
        "australian-outback",
        "uninhabited",
        (-20.0, 125.0),
        (-20.0, 137.0),
        (-29.0, 137.0),
        (-29.0, 124.0),
    ),
    _region(
        "siberian-north",
        "uninhabited",
        (72.0, 80.0),
        (72.0, 120.0),
        (64.0, 118.0),
        (63.0, 82.0),
    ),
)


#: Higher-fidelity *non-convex* ocean rings: each hugs its basin's
#: coastlines instead of inscribing a convex core, so it excludes strictly
#: more open water than its coarse counterpart while staying clear of land.
#: Selected by ``OctantConfig.geographic_detail="detailed"``; the solver
#: subtracts them through the convex-mask decomposition path.
DETAILED_OCEAN_REGIONS: tuple[GeoRegion, ...] = (
    _region(
        "north-atlantic-detailed",
        "ocean",
        (52.0, -38.0),
        (50.0, -18.0),
        (44.0, -14.0),
        (40.0, -16.0),  # concave bend off Iberia
        (34.0, -16.0),
        (26.0, -22.0),
        (23.0, -45.0),
        (27.0, -62.0),
        (33.0, -68.0),
        (36.0, -62.0),  # concave bend around Bermuda's longitude
        (40.0, -62.0),
        (44.0, -52.0),
    ),
    _region(
        "mid-atlantic-detailed",
        "ocean",
        (25.0, -58.0),
        (21.0, -32.0),
        (12.0, -26.0),  # concave step along the African bulge
        (6.0, -22.0),
        (0.0, -30.0),
        (4.0, -40.0),  # concave bend off the Brazilian shoulder
        (12.0, -52.0),
    ),
    _region(
        "north-pacific-detailed",
        "ocean",
        (48.0, -155.0),
        (46.0, -132.0),
        (36.0, -126.0),
        (30.0, -122.0),  # concave hug of the Californian coast
        (22.0, -130.0),
        (14.0, -140.0),
        (18.0, -152.0),  # concave bend north of Hawaii's longitude band
        (28.0, -162.0),
        (40.0, -165.0),
    ),
    _region(
        "gulf-of-mexico-detailed",
        "ocean",
        (28.8, -95.0),
        (28.8, -89.0),
        (26.8, -88.0),  # concave notch below the Mississippi fan
        (27.0, -85.5),
        (24.0, -84.5),
        (23.0, -86.0),  # concave sweep north of the Cuban shelf
        (21.5, -91.0),
        (23.0, -96.0),
        (25.5, -96.5),
    ),
    _region(
        "labrador-sea-detailed",
        "ocean",
        (61.0, -60.0),
        (59.5, -50.0),
        (55.0, -48.0),  # concave bend toward the Greenland tip
        (50.0, -46.0),
        (48.5, -51.0),
        (52.0, -54.0),  # concave hug of the Newfoundland shelf
        (56.0, -58.0),
    ),
    _region(
        "bay-of-biscay-detailed",
        "ocean",
        (47.8, -8.5),
        (47.5, -4.0),
        (46.0, -3.2),  # concave hug of the French coast
        (44.5, -2.2),
        (43.9, -5.0),
        (44.5, -7.5),
        (46.0, -7.0),  # concave bend back toward the shelf edge
    ),
)

#: Higher-fidelity *non-convex* uninhabited-land rings (see above).
DETAILED_UNINHABITED_REGIONS: tuple[GeoRegion, ...] = (
    _region(
        "greenland-interior-detailed",
        "uninhabited",
        (78.5, -55.0),
        (79.0, -40.0),
        (76.0, -28.0),
        (73.0, -36.0),  # concave step into the eastern fjords
        (70.0, -30.0),
        (66.0, -36.0),
        (63.5, -46.0),
        (67.0, -47.0),  # concave step along the western settlements
        (72.0, -54.0),
    ),
    _region(
        "sahara-interior-detailed",
        "uninhabited",
        (28.5, -6.0),
        (29.0, 8.0),
        (26.0, 14.0),  # concave bend around the Hoggar massif
        (27.0, 21.0),
        (19.0, 24.0),
        (16.5, 12.0),  # concave bend north of the Sahel towns
        (15.5, -1.0),
        (21.0, -9.0),
    ),
    _region(
        "australian-outback-detailed",
        "uninhabited",
        (-19.5, 124.5),
        (-20.0, 132.0),
        (-23.0, 134.5),  # concave notch around the Alice Springs corridor
        (-20.5, 137.5),
        (-27.0, 139.0),
        (-29.5, 130.0),
        (-26.0, 126.0),  # concave bend along the western desert tracks
    ),
)


def city_by_code(code: str) -> City:
    """Look a city up by its three-letter code; raises ``KeyError`` if unknown."""
    try:
        return _CITIES_BY_CODE[code.upper()]
    except KeyError:
        raise KeyError(f"unknown city code {code!r}") from None


def city_by_name(name: str) -> City:
    """Look a city up by (case-insensitive) name; raises ``KeyError`` if unknown."""
    try:
        return _CITIES_BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(f"unknown city name {name!r}") from None


def nearest_city(location: GeoPoint, candidates: Sequence[City] | None = None) -> City:
    """The catalogue city closest to ``location`` (great-circle distance)."""
    pool: Sequence[City] = candidates if candidates is not None else WORLD_CITIES
    if not pool:
        raise ValueError("no candidate cities supplied")
    return min(pool, key=lambda c: c.location.distance_km(location))


def cities_in_bbox(
    min_lat: float,
    max_lat: float,
    min_lon: float,
    max_lon: float,
    candidates: Iterable[City] | None = None,
) -> list[City]:
    """All catalogue cities whose coordinates fall in the given box."""
    pool = candidates if candidates is not None else WORLD_CITIES
    return [
        c
        for c in pool
        if min_lat <= c.location.lat <= max_lat and min_lon <= c.location.lon <= max_lon
    ]

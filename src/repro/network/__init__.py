"""Synthetic Internet substrate: topology, delay model, probes and datasets.

This package stands in for the paper's measurement infrastructure (PlanetLab
hosts probing each other across the 2006 Internet).  It produces the same
kinds of observations -- minimum RTTs, traceroutes with named routers, WHOIS
records -- with a known ground truth, so the localization algorithms can be
evaluated end to end on a laptop.
"""

from .agents import ProbeAgent, run_agents
from .dataset import (
    IngestDelta,
    IngestRecord,
    MeasurementDataset,
    NodeRecord,
    collect_dataset,
)
from .log import MeasurementLog
from .dns import DEFAULT_CITY_ALIASES, DnsLocationHint, UndnsParser
from .geodata import (
    EUROPEAN_CITIES,
    OCEAN_REGIONS,
    UNINHABITED_REGIONS,
    US_CITIES,
    WORLD_CITIES,
    City,
    GeoRegion,
    cities_in_bbox,
    city_by_code,
    city_by_name,
    nearest_city,
)
from .latency import LatencyConfig, LatencyModel
from .planetlab import (
    DEFAULT_HOST_COUNT,
    Deployment,
    DeploymentConfig,
    build_deployment,
    small_deployment,
)
from .probes import PingResult, Prober, TracerouteHop, TracerouteResult
from .topology import (
    Link,
    NetworkNode,
    NetworkTopology,
    NodeKind,
    Provider,
    TopologyConfig,
    build_topology,
)
from .whois import WhoisRecord, WhoisRegistry, build_registry_from_topology

__all__ = [
    # geodata
    "City",
    "GeoRegion",
    "WORLD_CITIES",
    "US_CITIES",
    "EUROPEAN_CITIES",
    "OCEAN_REGIONS",
    "UNINHABITED_REGIONS",
    "city_by_code",
    "city_by_name",
    "nearest_city",
    "cities_in_bbox",
    # topology
    "NodeKind",
    "NetworkNode",
    "Link",
    "Provider",
    "TopologyConfig",
    "NetworkTopology",
    "build_topology",
    # latency and probes
    "LatencyConfig",
    "LatencyModel",
    "PingResult",
    "TracerouteHop",
    "TracerouteResult",
    "Prober",
    # dns / whois
    "DnsLocationHint",
    "UndnsParser",
    "DEFAULT_CITY_ALIASES",
    "WhoisRecord",
    "WhoisRegistry",
    "build_registry_from_topology",
    # deployment and datasets
    "DeploymentConfig",
    "Deployment",
    "build_deployment",
    "small_deployment",
    "DEFAULT_HOST_COUNT",
    "NodeRecord",
    "MeasurementDataset",
    "collect_dataset",
    "IngestRecord",
    "IngestDelta",
    # streaming measurement plane
    "MeasurementLog",
    "ProbeAgent",
    "run_agents",
]

"""Write-optimized measurement log with background compaction.

The read path of the system is built around expensive derived state: the
index-mapped RTT matrices on :class:`~repro.network.dataset.MeasurementDataset`
and the warm caches stacked on top of them.  Extending that state inside every
``ingest()`` call puts matrix work on the writer's critical path and, under a
sharded service, inside the replication lock.

:class:`MeasurementLog` splits the write path in two, the way write-optimized
IP-keyed stores (TWIAD) do:

* **Append** -- producers call :meth:`MeasurementLog.append` (or
  :meth:`append_record`) which takes one short mutex hold to push the frozen
  payload onto a bounded in-memory delta buffer and returns a sequence number.
  No matrix work, no dataset lock, no cache invalidation happens here.
* **Compact** -- a single background thread drains the buffer, coalesces the
  pending payloads into one equivalent :class:`IngestRecord` (last-wins per
  key, min-merge for router samples -- see :meth:`IngestRecord.merge`) and
  hands it to the owner's ``apply_fn``, which runs the ordinary ingest and
  publishes a new copy-on-write snapshot.  One burst of N appends becomes one
  version bump and one invalidation pass.

The log itself is storage-agnostic: ``apply_fn(record) -> version`` is the
only contract, so the single-process service applies locally while the
sharded orchestrator replicates the same merged record to every worker before
acknowledging.  ``on_commit(version, record)`` fires after each successful
compaction for drift detection and metrics.

Durability is explicitly out of scope -- the buffer is process memory, like
the rest of this reproduction's measurement plane.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable, Mapping
from typing import Any

from .dataset import IngestRecord, NodeRecord
from .probes import PingResult, TracerouteResult

__all__ = ["MeasurementLog"]


class MeasurementLog:
    """Append-optimized buffer of ingest payloads with a compactor thread.

    Parameters
    ----------
    apply_fn:
        Called from the compactor thread with one merged
        :class:`IngestRecord`; must apply it and return the resulting dataset
        version.  Exceptions are captured, counted, and re-raised to the next
        :meth:`flush` caller; the failed batch is dropped (the measurements
        exist only in memory, so replaying them against a store whose apply
        path is broken would wedge the compactor).
    on_commit:
        Optional callback ``(version, record)`` after each successful apply.
    max_pending:
        Backpressure bound on buffered payloads: :meth:`append` blocks once
        the buffer holds this many un-compacted entries.
    poll_interval_s:
        Compaction cadence: appends accumulate for up to this long (measured
        from the oldest buffered one) before the compactor drains them, so
        sustained streams cost one snapshot rebuild per interval instead of
        one per append.  :meth:`flush` and :meth:`stop` force an immediate
        pass regardless.
    """

    def __init__(
        self,
        apply_fn: Callable[[IngestRecord], int],
        *,
        on_commit: Callable[[int, IngestRecord], None] | None = None,
        max_pending: int = 4096,
        poll_interval_s: float = 0.05,
    ) -> None:
        self._apply_fn = apply_fn
        self._on_commit = on_commit
        self.max_pending = max(1, max_pending)
        self.poll_interval_s = poll_interval_s
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._wakeup = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._pending: list[IngestRecord] = []
        self._oldest_pending_ts: float | None = None
        self._appended_seq = 0
        self._applied_seq = 0
        self._compactions = 0
        self._coalesced = 0
        self._apply_failures = 0
        self._last_error: BaseException | None = None
        self._last_version: int | None = None
        self._stopping = False
        self._flush_requested = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def append(
        self,
        hosts: Iterable[NodeRecord] = (),
        pings: Iterable[PingResult] = (),
        traceroutes: Iterable[TracerouteResult] = (),
        routers: Iterable[NodeRecord] = (),
        router_pings: Mapping[tuple[str, str], float] | None = None,
    ) -> int:
        """Freeze one ingest payload into the delta buffer; returns its seq.

        The payload signature mirrors :meth:`MeasurementDataset.ingest`.
        Freezing (tuple construction) happens before the lock; the critical
        section is a list append and a counter bump.  Blocks only when the
        buffer is at ``max_pending`` (backpressure, not lost data).
        """
        return self.append_record(
            IngestRecord.capture(
                hosts=hosts,
                pings=pings,
                traceroutes=traceroutes,
                routers=routers,
                router_pings=router_pings,
            )
        )

    def append_record(self, record: IngestRecord) -> int:
        """Append an already-frozen :class:`IngestRecord`; returns its seq."""
        with self._lock:
            while len(self._pending) >= self.max_pending and not self._stopping:
                self._not_full.wait()
            if self._stopping:
                raise RuntimeError("measurement log is stopped")
            self._pending.append(record)
            if self._oldest_pending_ts is None:
                self._oldest_pending_ts = time.monotonic()
            self._appended_seq += 1
            seq = self._appended_seq
            self._wakeup.notify()
        return seq

    # ------------------------------------------------------------------ #
    # Compactor side
    # ------------------------------------------------------------------ #
    def start(self) -> "MeasurementLog":
        """Start the background compactor thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stopping = False
            self._thread = threading.Thread(
                target=self._run, name="measurement-log-compactor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, drain: bool = True, timeout: float | None = 10.0) -> None:
        """Stop the compactor; by default drains buffered payloads first."""
        if drain:
            try:
                self.flush(timeout=timeout)
            except Exception:
                pass  # surfaced via stats/last_error; stop must still stop
        with self._lock:
            self._stopping = True
            self._wakeup.notify_all()
            self._not_full.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        with self._lock:
            self._thread = None

    def flush(self, timeout: float | None = None) -> int:
        """Block until everything appended so far has been compacted.

        Runs the compaction inline when no compactor thread is alive (so
        tests and synchronous callers can use the log without threads).
        Returns the dataset version of the last applied batch, and re-raises
        the compactor's error if the covering batch failed to apply.
        """
        with self._lock:
            target = self._appended_seq
            thread_alive = self._thread is not None and self._thread.is_alive()
            if thread_alive:
                # Skip the remaining batching window: compact now.
                self._flush_requested = True
                self._wakeup.notify_all()
        if not thread_alive:
            while self._compact_once():
                pass
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._applied_seq < target:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"measurement log flush timed out at seq "
                            f"{self._applied_seq}/{target}"
                        )
                self._drained.wait(timeout=remaining)
            if self._last_error is not None:
                error = self._last_error
                self._last_error = None
                raise RuntimeError("measurement log apply failed") from error
            return self._last_version if self._last_version is not None else -1

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._stopping:
                    self._flush_requested = False  # nothing to skip ahead to
                    self._wakeup.wait(timeout=self.poll_interval_s)
                if self._stopping and not self._pending:
                    return
                # Batching window: let the stream accumulate for up to the
                # poll interval (measured from the oldest buffered append)
                # so one compaction absorbs the whole burst.  A flush or
                # stop cuts the window short.
                while not self._flush_requested and not self._stopping:
                    assert self._oldest_pending_ts is not None
                    remaining = (
                        self._oldest_pending_ts + self.poll_interval_s
                    ) - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(timeout=remaining)
                self._flush_requested = False
            self._compact_once()

    def _compact_once(self) -> bool:
        """Drain and apply one batch; True when work was done."""
        with self._lock:
            if not self._pending:
                return False
            batch = self._pending
            batch_seq = self._appended_seq
            self._pending = []
            self._oldest_pending_ts = None
            self._not_full.notify_all()
        record = batch[0] if len(batch) == 1 else IngestRecord.merge(batch)
        try:
            version = self._apply_fn(record)
        except BaseException as exc:  # noqa: BLE001 - report via flush/stats
            with self._lock:
                self._apply_failures += 1
                self._last_error = exc
                self._applied_seq = batch_seq
                self._drained.notify_all()
            return True
        with self._lock:
            self._compactions += 1
            self._coalesced += len(batch) - 1
            self._applied_seq = batch_seq
            self._last_version = version
            self._drained.notify_all()
        on_commit = self._on_commit
        if on_commit is not None:
            on_commit(version, record)
        return True

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def lag_seconds(self) -> float:
        """Age of the oldest un-compacted append, 0.0 when fully drained."""
        with self._lock:
            if self._oldest_pending_ts is None:
                return 0.0
            return max(0.0, time.monotonic() - self._oldest_pending_ts)

    def stats(self) -> dict[str, Any]:
        """Counters for ``cache_stats()["ingest"]`` and readiness probes."""
        with self._lock:
            return {
                "appended": self._appended_seq,
                "applied": self._applied_seq,
                "pending": len(self._pending),
                "compactions": self._compactions,
                "coalesced": self._coalesced,
                "apply_failures": self._apply_failures,
                "last_version": self._last_version,
                "lag_seconds": (
                    0.0
                    if self._oldest_pending_ts is None
                    else max(0.0, time.monotonic() - self._oldest_pending_ts)
                ),
            }

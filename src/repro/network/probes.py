"""Measurement primitives: ping and traceroute over the synthetic substrate.

The paper's data collection is "10 time-dispersed round-trip measurements
using ICMP ping probes" between every pair of 51 PlanetLab nodes, plus full
traceroutes between every landmark pair and latency measurements between the
landmarks and intermediate routers.  These two classes produce exactly that
shape of data from the :class:`~repro.network.latency.LatencyModel`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from .latency import LatencyModel
from .topology import NetworkTopology

__all__ = ["PingResult", "TracerouteHop", "TracerouteResult", "Prober"]

#: Number of time-dispersed probes per measurement, as in the paper.
DEFAULT_PROBE_COUNT = 10


@dataclass(frozen=True)
class PingResult:
    """The outcome of probing one (source, destination) pair."""

    src: str
    dst: str
    rtts_ms: tuple[float, ...]

    @property
    def min_rtt_ms(self) -> float:
        """Minimum RTT over all probes -- the value Octant's constraints use."""
        return min(self.rtts_ms)

    @property
    def median_rtt_ms(self) -> float:
        """Median RTT over all probes."""
        return statistics.median(self.rtts_ms)

    @property
    def mean_rtt_ms(self) -> float:
        """Mean RTT over all probes."""
        return statistics.fmean(self.rtts_ms)

    @property
    def probe_count(self) -> int:
        """Number of probes taken."""
        return len(self.rtts_ms)


@dataclass(frozen=True)
class TracerouteHop:
    """One hop of a traceroute: the responding router and its probe RTTs."""

    hop_number: int
    node_id: str
    ip_address: str
    dns_name: str
    rtts_ms: tuple[float, ...]

    @property
    def min_rtt_ms(self) -> float:
        """Minimum RTT to this hop."""
        return min(self.rtts_ms)


@dataclass(frozen=True)
class TracerouteResult:
    """A full traceroute from a source host to a destination host."""

    src: str
    dst: str
    hops: tuple[TracerouteHop, ...] = field(default_factory=tuple)

    @property
    def hop_count(self) -> int:
        """Number of responding hops (the destination included)."""
        return len(self.hops)

    def router_hops(self) -> list[TracerouteHop]:
        """Hops that are intermediate routers (excludes the destination)."""
        return [h for h in self.hops if h.node_id != self.dst]

    def last_hop(self) -> TracerouteHop | None:
        """The final hop (normally the destination), or ``None`` if empty."""
        return self.hops[-1] if self.hops else None


class Prober:
    """Issues pings and traceroutes against the simulated network.

    A real deployment would run these measurements concurrently from each
    landmark; the simulator simply evaluates the latency model, so a full
    all-pairs collection over 50 hosts completes in well under a second.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        latency_model: LatencyModel,
        probe_count: int = DEFAULT_PROBE_COUNT,
    ):
        if probe_count < 1:
            raise ValueError(f"probe_count must be >= 1, got {probe_count!r}")
        self.topology = topology
        self.latency = latency_model
        self.probe_count = probe_count

    # ------------------------------------------------------------------ #
    # Ping
    # ------------------------------------------------------------------ #
    def ping(self, src: str, dst: str, probe_count: int | None = None) -> PingResult:
        """Probe ``dst`` from ``src`` with time-dispersed ICMP-like probes."""
        if src == dst:
            raise ValueError("source and destination must differ")
        count = probe_count or self.probe_count
        rtts = tuple(self.latency.probe_rtts_ms(src, dst, count))
        return PingResult(src, dst, rtts)

    def ping_matrix(
        self, node_ids: Sequence[str], probe_count: int | None = None
    ) -> dict[tuple[str, str], PingResult]:
        """All-pairs ping results over ``node_ids`` (both directions)."""
        results: dict[tuple[str, str], PingResult] = {}
        for src in node_ids:
            for dst in node_ids:
                if src == dst:
                    continue
                results[(src, dst)] = self.ping(src, dst, probe_count)
        return results

    # ------------------------------------------------------------------ #
    # Traceroute
    # ------------------------------------------------------------------ #
    def traceroute(self, src: str, dst: str, probe_count: int = 3) -> TracerouteResult:
        """Trace the routed path from ``src`` to ``dst``.

        Every node on the path answers (the simulator has no silent hops);
        each hop reports ``probe_count`` RTT samples, as real traceroute does.
        """
        if src == dst:
            raise ValueError("source and destination must differ")
        path = self.topology.route(src, dst)
        hops: list[TracerouteHop] = []
        for hop_index in range(1, len(path)):
            node = self.topology.node(path[hop_index])
            rtts = tuple(
                self.latency.partial_path_rtt_ms(src, dst, hop_index, probe_index=i)
                for i in range(probe_count)
            )
            hops.append(
                TracerouteHop(
                    hop_number=hop_index,
                    node_id=node.node_id,
                    ip_address=node.ip_address,
                    dns_name=node.dns_name,
                    rtts_ms=rtts,
                )
            )
        return TracerouteResult(src, dst, tuple(hops))

    def traceroute_matrix(
        self, node_ids: Sequence[str], probe_count: int = 3
    ) -> dict[tuple[str, str], TracerouteResult]:
        """All-pairs traceroutes over ``node_ids``."""
        results: dict[tuple[str, str], TracerouteResult] = {}
        for src in node_ids:
            for dst in node_ids:
                if src == dst:
                    continue
                results[(src, dst)] = self.traceroute(src, dst, probe_count)
        return results

"""Measurement datasets: the data Octant and the baselines actually consume.

A :class:`MeasurementDataset` is the boundary between the measurement plane
(the synthetic substrate, or in a real deployment, ping/traceroute against
the Internet) and the localization algorithms.  It contains exactly the
information the paper's study collected:

* the set of participating hosts and the ground-truth position of each
  (used for landmarks, and held back for a host while it plays the target),
* the all-pairs ping measurements (10 time-dispersed probes per pair),
* the all-pairs traceroutes, including per-hop RTTs, router IPs and DNS names,
* the WHOIS registry.

The dataset is a plain in-memory object with dictionary lookups so the
algorithms never touch the simulator, which keeps them honest: they can only
use information a real deployment would have.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..geometry import GeoPoint
from .planetlab import Deployment
from .probes import PingResult, TracerouteResult
from .whois import WhoisRecord, WhoisRegistry

__all__ = [
    "IngestDelta",
    "IngestRecord",
    "NodeRecord",
    "MeasurementDataset",
    "PairMatrixView",
    "collect_dataset",
]


class PairMatrixView(MappingABC):
    """Dict-compatible view over a symmetric pair matrix.

    The canonical representation of the full-cohort pairwise data is an
    index-mapped NumPy matrix (``np.nan`` marks unmeasured pairs) so that
    height estimation and calibration can read contiguous rows; this view
    keeps the historical ``{(a, b): value}`` mapping interface working on
    top of it.  Keys are ``(a, b)`` tuples with ``a < b``; iteration order
    matches the dict the view replaced (sorted ids, upper triangle).
    """

    __slots__ = ("_ids", "_index", "_matrix", "_pairs", "_values")

    def __init__(self, ids: Sequence[str], index: Mapping[str, int], matrix: np.ndarray):
        self._ids = list(ids)
        self._index = index
        self._matrix = matrix
        self._pairs: list[tuple[str, str]] | None = None
        self._values: list[float] | None = None

    def _materialize(self) -> None:
        """Build the key/value sequences once (sorted upper triangle).

        Iteration and ``items()`` then run at plain-list speed instead of
        paying per-pair index lookups and NaN checks -- the estimators that
        walk every pair per target stay as fast as with the dict this view
        replaced.
        """
        if self._pairs is not None:
            return
        ids = self._ids
        n = len(ids)
        pairs: list[tuple[str, str]] = []
        values: list[float] = []
        if n:
            iu, ju = np.triu_indices(n, k=1)
            upper = self._matrix[iu, ju]
            keep = ~np.isnan(upper)
            # Bulk construction instead of per-pair appends: one NaN filter,
            # one tolist() per array, one zip-driven comprehension.  Values
            # are the same float objects tolist() produced before, so the
            # view stays bit-identical to the dict it replaced.
            pairs = [
                (ids[i], ids[j])
                for i, j in zip(iu[keep].tolist(), ju[keep].tolist())
            ]
            values = upper[keep].tolist()
        self._pairs = pairs
        self._values = values

    def __getitem__(self, key: tuple[str, str]) -> float:
        a, b = key
        i = self._index.get(a)
        j = self._index.get(b)
        if i is None or j is None:
            raise KeyError(key)
        value = self._matrix[i, j]
        if np.isnan(value):
            raise KeyError(key)
        return float(value)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        self._materialize()
        return iter(self._pairs)

    def items(self):
        """Pairwise items at list speed (same order and values as iteration)."""
        self._materialize()
        return list(zip(self._pairs, self._values))

    def __len__(self) -> int:
        self._materialize()
        return len(self._pairs)

    @property
    def ids(self) -> list[str]:
        """Row/column labels, in index order (copy)."""
        return list(self._ids)

    @property
    def matrix(self) -> np.ndarray:
        """The backing ``(n, n)`` matrix (not a copy; treat as read-only)."""
        return self._matrix


@dataclass(frozen=True)
class NodeRecord:
    """Identity and metadata of a node appearing in the dataset."""

    node_id: str
    ip_address: str
    dns_name: str
    location: GeoPoint | None
    is_host: bool

    def with_location(self, location: GeoPoint | None) -> "NodeRecord":
        """Copy of this record with a different (possibly hidden) location."""
        return NodeRecord(self.node_id, self.ip_address, self.dns_name, location, self.is_host)


@dataclass(frozen=True)
class IngestRecord:
    """One :meth:`MeasurementDataset.ingest` payload, captured for replay.

    The sharded serving tier logs every replicated ingest as one of these
    (picklable, immutable) records: a worker restarted from a snapshot at
    version ``V`` replays the records after ``V`` and arrives, version for
    version and bit for bit, at the same dataset the surviving workers
    serve.  Applying a record is *exactly* an ingest call -- same touched
    set, same version bump -- so replay needs no second code path.
    """

    hosts: tuple[NodeRecord, ...] = ()
    pings: tuple[PingResult, ...] = ()
    traceroutes: tuple[TracerouteResult, ...] = ()
    routers: tuple[NodeRecord, ...] = ()
    router_pings: tuple[tuple[tuple[str, str], float], ...] = ()

    @classmethod
    def capture(
        cls,
        hosts: Iterable[NodeRecord] = (),
        pings: Iterable[PingResult] = (),
        traceroutes: Iterable[TracerouteResult] = (),
        routers: Iterable[NodeRecord] = (),
        router_pings: Mapping[tuple[str, str], float] | None = None,
    ) -> "IngestRecord":
        """Freeze one ingest payload (tuples, so the record hashes/pickles)."""
        return cls(
            hosts=tuple(hosts),
            pings=tuple(pings),
            traceroutes=tuple(traceroutes),
            routers=tuple(routers),
            router_pings=tuple(sorted((router_pings or {}).items())),
        )

    def apply(self, dataset: "MeasurementDataset") -> frozenset[str]:
        """Replay this record into ``dataset`` via its ordinary ingest path."""
        return dataset.ingest(
            hosts=self.hosts,
            pings=self.pings,
            traceroutes=self.traceroutes,
            routers=self.routers,
            router_pings=dict(self.router_pings),
        )

    @classmethod
    def merge(cls, records: Sequence["IngestRecord"]) -> "IngestRecord":
        """Coalesce a sequence of records into one equivalent record.

        Applying the merged record yields the same final dataset state as
        applying the sequence in order -- hosts/routers/pings/traceroutes
        last-wins per key, router latency samples min-merge (associative and
        commutative) -- in a single version bump.  This is what lets the
        measurement log compact a burst of appends into one ingest, and the
        sharded tier replicate the burst as one fan-out frame.
        """
        hosts: dict[str, NodeRecord] = {}
        routers: dict[str, NodeRecord] = {}
        pings: dict[tuple[str, str], PingResult] = {}
        traceroutes: dict[tuple[str, str], TracerouteResult] = {}
        router_pings: dict[tuple[str, str], float] = {}
        for record in records:
            for host in record.hosts:
                hosts[host.node_id] = host
            for router in record.routers:
                routers[router.node_id] = router
            for ping in record.pings:
                pings[(ping.src, ping.dst)] = ping
            for trace in record.traceroutes:
                traceroutes[(trace.src, trace.dst)] = trace
            for key, rtt in record.router_pings:
                current = router_pings.get(key)
                if current is None or rtt < current:
                    router_pings[key] = rtt
        return cls(
            hosts=tuple(hosts.values()),
            pings=tuple(pings.values()),
            traceroutes=tuple(traceroutes.values()),
            routers=tuple(routers.values()),
            router_pings=tuple(sorted(router_pings.items())),
        )


@dataclass(frozen=True)
class IngestDelta:
    """The exact scope of one ingest generation, for delta-scoped invalidation.

    :meth:`MeasurementDataset.touched_since` answers "which *hosts* changed"
    -- too coarse for the warm caches: a refreshed landmark-to-target probe
    touches both endpoints, so under leave-one-out pools every prepared
    derivation looks stale even though none of its inputs moved.  A delta
    records what an ingest changed at the granularity the caches actually
    depend on:

    * ``ping_pairs`` -- host pairs whose *combined min-RTT value changed*
      (canonical ``(a, b)`` with ``a < b``).  A re-probe that lands on the
      same minimum is invisible to every estimator and is not recorded.
    * ``record_hosts`` -- hosts whose :class:`NodeRecord` was added or
      actually changed (a re-ingested identical record is not recorded).
    * ``new_hosts`` -- the subset of ``record_hosts`` that joined the
      roster (they change every implicit leave-one-out landmark set).
    * ``router_observers`` -- hosts whose router latency table gained or
      lowered an entry (the min-merge can no-op; those are not recorded).
    * ``router_replaced`` -- an existing router record changed: DNS-derived
      router hints have no per-host scope, so this forces full invalidation.

    A derived cache entry whose landmark roster is disjoint from every
    recorded scope is untouched by the ingest and may be carried forward to
    the new version unchanged -- the carried object is bit-identical to a
    re-derivation because none of its inputs changed.
    """

    version: int
    touched: frozenset[str]
    record_hosts: frozenset[str] = frozenset()
    new_hosts: frozenset[str] = frozenset()
    location_hosts: frozenset[str] = frozenset()
    ping_pairs: frozenset[tuple[str, str]] = frozenset()
    router_observers: frozenset[str] = frozenset()
    router_replaced: bool = False

    def affects_roster(self, roster: frozenset[str]) -> bool:
        """Would a cache entry derived from exactly ``roster`` be stale?

        True when any changed host record, changed-value pair, or router
        observation lies *within* the roster.  Pairs with an endpoint
        outside the roster (e.g. a landmark-to-target probe, target not in
        the pool) leave the derivation's inputs untouched.
        """
        if self.router_replaced:
            return True
        if not self.record_hosts.isdisjoint(roster):
            return True
        if not self.router_observers.isdisjoint(roster):
            return True
        for a, b in self.ping_pairs:
            if a in roster and b in roster:
                return True
        return False


@dataclass
class MeasurementDataset:
    """All measurements collected for one study.

    ``hosts`` maps host id to its :class:`NodeRecord` (with ground-truth
    location); ``routers`` likewise for every router observed on any
    traceroute.  ``pings`` and ``traceroutes`` are keyed by ``(src, dst)``
    host-id pairs.  ``router_pings`` holds landmark-to-router latency derived
    from traceroute hop timings, keyed by ``(host_id, router_id)``.
    """

    hosts: dict[str, NodeRecord] = field(default_factory=dict)
    routers: dict[str, NodeRecord] = field(default_factory=dict)
    pings: dict[tuple[str, str], PingResult] = field(default_factory=dict)
    traceroutes: dict[tuple[str, str], TracerouteResult] = field(default_factory=dict)
    router_pings: dict[tuple[str, str], float] = field(default_factory=dict)
    whois: WhoisRegistry = field(default_factory=WhoisRegistry)

    # Lazily-built full-cohort matrices shared by the batch localization
    # engine (see repro.core.batch).  The dataset is immutable between
    # :meth:`ingest` calls; ingest extends the matrices incrementally (only
    # rows of touched hosts are recomputed) and bumps :attr:`version` so
    # derived caches can invalidate selectively.  The canonical storage is
    # index-mapped NumPy matrices (contiguous rows for the estimators);
    # PairMatrixView keeps the historical dict interface working on top of
    # them.
    _rtt_view: "PairMatrixView | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _rtt_index: dict[str, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _distance_view: "PairMatrixView | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _distance_index: dict[str, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _rtt_degree: dict[str, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # Measurement-ingest state: a monotonically increasing version, a bounded
    # log of which hosts each ingest touched (for selective cache
    # invalidation downstream), snapshot bookkeeping for copy-on-write.
    _version: int = field(default=0, init=False, repr=False, compare=False)
    _frozen: bool = field(default=False, init=False, repr=False, compare=False)
    _cow_pending: bool = field(default=False, init=False, repr=False, compare=False)
    _touched_log: list[tuple[int, frozenset[str]]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _delta_log: list[IngestDelta] = field(
        default_factory=list, init=False, repr=False, compare=False
    )

    #: How many ingest generations :meth:`touched_since` (and the structured
    #: :meth:`deltas_since`) can answer about before reporting "unknown"
    #: (callers then invalidate everything).
    TOUCHED_LOG_LIMIT = 64

    # ------------------------------------------------------------------ #
    # Node accessors
    # ------------------------------------------------------------------ #
    @property
    def host_ids(self) -> list[str]:
        """All host ids, sorted for determinism."""
        return sorted(self.hosts)

    def node(self, node_id: str) -> NodeRecord:
        """Record for a host or router id."""
        if node_id in self.hosts:
            return self.hosts[node_id]
        return self.routers[node_id]

    def true_location(self, node_id: str) -> GeoPoint:
        """Ground-truth position of a node; raises when unknown."""
        record = self.node(node_id)
        if record.location is None:
            raise KeyError(f"no ground-truth location recorded for {node_id!r}")
        return record.location

    def whois_lookup(self, node_id: str) -> WhoisRecord | None:
        """WHOIS record covering the node's IP address, if any."""
        return self.whois.lookup(self.node(node_id).ip_address)

    # ------------------------------------------------------------------ #
    # Measurement accessors
    # ------------------------------------------------------------------ #
    def ping(self, src: str, dst: str) -> PingResult | None:
        """The ping result for ``(src, dst)``, or ``None`` when not measured."""
        return self.pings.get((src, dst))

    def min_rtt_ms(self, a: str, b: str) -> float | None:
        """Minimum RTT between two hosts over both probing directions."""
        candidates = []
        forward = self.pings.get((a, b))
        backward = self.pings.get((b, a))
        if forward is not None:
            candidates.append(forward.min_rtt_ms)
        if backward is not None:
            candidates.append(backward.min_rtt_ms)
        if not candidates:
            return None
        return min(candidates)

    def traceroute(self, src: str, dst: str) -> TracerouteResult | None:
        """Traceroute from ``src`` to ``dst``, or ``None`` when not collected."""
        return self.traceroutes.get((src, dst))

    def router_min_rtt_ms(self, host_id: str, router_id: str) -> float | None:
        """Minimum observed RTT from a host to a router (from traceroute hops)."""
        return self.router_pings.get((host_id, router_id))

    def routers_measured_from(self, host_id: str) -> list[str]:
        """Router ids for which ``host_id`` has a latency measurement."""
        return sorted(r for (h, r) in self.router_pings if h == host_id)

    # ------------------------------------------------------------------ #
    # Full-cohort shared matrices (batch localization)
    # ------------------------------------------------------------------ #
    def pairwise_min_rtt(self) -> Mapping[tuple[str, str], float]:
        """Symmetric min-RTT matrix over all host pairs, built once.

        Returns a :class:`PairMatrixView` over the index-mapped NumPy matrix
        (see :meth:`pairwise_min_rtt_matrix`): keys are ``(a, b)`` with
        ``a < b``, values equal :meth:`min_rtt_ms` for the pair, unmeasured
        pairs are absent -- exactly the dict this method used to return.
        """
        if self._rtt_view is None:
            ids = self.host_ids
            index = {h: i for i, h in enumerate(ids)}
            matrix = np.full((len(ids), len(ids)), np.nan)
            for i, a in enumerate(ids):
                for j in range(i + 1, len(ids)):
                    rtt = self.min_rtt_ms(a, ids[j])
                    if rtt is not None:
                        matrix[i, j] = rtt
                        matrix[j, i] = rtt
            self._rtt_index = index
            self._rtt_view = PairMatrixView(ids, index, matrix)
        return self._rtt_view

    def pairwise_min_rtt_matrix(self) -> tuple[list[str], np.ndarray]:
        """The min-RTT matrix as ``(ids, (n, n) array)`` for contiguous reads.

        ``np.nan`` marks unmeasured pairs; row/column order is the sorted
        host-id order.  The array is the live cache -- treat it as read-only.
        """
        view = self.pairwise_min_rtt()
        return view.ids, view.matrix

    def cached_min_rtt_ms(self, a: str, b: str) -> float | None:
        """Matrix-backed equivalent of :meth:`min_rtt_ms` for host pairs.

        A direct index lookup into the contiguous matrix -- no tuple hashing.
        """
        if a == b:
            return None
        view = self.pairwise_min_rtt()
        index = self._rtt_index
        i = index.get(a)
        j = index.get(b)
        if i is None or j is None:
            return None
        value = view.matrix[i, j]
        if np.isnan(value):
            return None
        return float(value)

    def measured_pair_degree(self) -> Mapping[str, int]:
        """Number of measured host pairs each host participates in.

        Lets the batch engine decide in O(1) whether a leave-one-out landmark
        set still has enough measured pairs for height estimation, instead of
        re-enumerating the O(n^2) pairs per target.
        """
        if self._rtt_degree is None:
            ids, matrix = self.pairwise_min_rtt_matrix()
            counts = np.count_nonzero(~np.isnan(matrix), axis=1)
            self._rtt_degree = {h: int(c) for h, c in zip(ids, counts)}
        return self._rtt_degree

    def pairwise_distance_km(self) -> Mapping[tuple[str, str], float]:
        """Great-circle distance matrix over located host pairs, built once.

        Keys are ``(a, b)`` with ``a < b``.  Values are bitwise-identical to
        ``true_location(a).distance_km(true_location(b))`` (the haversine is
        symmetric down to IEEE rounding), so algorithms may substitute the
        cached value for a direct computation without changing results.
        """
        if self._distance_view is None:
            located = [
                (h, record.location)
                for h, record in sorted(self.hosts.items())
                if record.location is not None
            ]
            ids = [h for h, _ in located]
            index = {h: i for i, h in enumerate(ids)}
            matrix = np.full((len(ids), len(ids)), np.nan)
            for i, (_a, loc_a) in enumerate(located):
                for j in range(i + 1, len(located)):
                    d = loc_a.distance_km(located[j][1])
                    matrix[i, j] = d
                    matrix[j, i] = d
            self._distance_index = index
            self._distance_view = PairMatrixView(ids, index, matrix)
        return self._distance_view

    def pairwise_distance_matrix(self) -> tuple[list[str], np.ndarray]:
        """The distance matrix as ``(ids, (n, n) array)`` for contiguous reads."""
        view = self.pairwise_distance_km()
        return view.ids, view.matrix

    def cached_distance_km(self, a: str, b: str) -> float:
        """Matrix-backed great-circle distance between two located hosts."""
        view = self.pairwise_distance_km()
        index = self._distance_index
        i = index.get(a)
        j = index.get(b)
        if i is not None and j is not None and i != j:
            value = view.matrix[i, j]
            if not np.isnan(value):
                return float(value)
        return self.true_location(a).distance_km(self.true_location(b))

    # ------------------------------------------------------------------ #
    # Versioning, snapshots and incremental measurement ingest
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotonic measurement version; bumped by every :meth:`ingest`."""
        return self._version

    @property
    def is_snapshot(self) -> bool:
        """True for immutable snapshots returned by :meth:`snapshot`."""
        return self._frozen

    def touched_since(self, version: int) -> frozenset[str] | None:
        """Host ids touched by ingests after ``version``.

        Returns an empty set when nothing changed, or ``None`` when the
        bounded mutation log no longer covers ``version`` (the caller must
        then treat every derived cache entry as stale).  Touched hosts cover
        everything an ingest can affect: new/updated host records, both
        endpoints of new pings and traceroutes, and the observing host of
        new router latency samples.
        """
        if version >= self._version:
            return frozenset()
        if not self._touched_log or self._touched_log[0][0] > version + 1:
            return None
        touched: set[str] = set()
        for entry_version, hosts in self._touched_log:
            if entry_version > version:
                touched |= hosts
        return frozenset(touched)

    def deltas_since(self, version: int) -> tuple[IngestDelta, ...] | None:
        """Per-ingest :class:`IngestDelta` records applied after ``version``.

        The fine-grained companion to :meth:`touched_since`: instead of a
        single union of touched hosts, each returned delta scopes one ingest
        down to the measurements that actually *changed value* -- refreshed
        pings landing on the same combined minimum, or host records replayed
        unchanged, produce no scope at all.  Cache layers use
        :meth:`IngestDelta.affects_roster` to keep entries whose inputs
        provably did not move.

        Returns an empty tuple when nothing changed, or ``None`` when the
        bounded log no longer covers ``version`` (including after a router
        metadata replacement, which clears the log to force full
        invalidation).
        """
        if version >= self._version:
            return ()
        if not self._delta_log or self._delta_log[0].version > version + 1:
            return None
        return tuple(d for d in self._delta_log if d.version > version)

    def snapshot(self) -> "MeasurementDataset":
        """An immutable copy-on-write snapshot of the current measurements.

        The snapshot shares every measurement container and every built
        matrix cache with the live dataset -- O(1), no data copied.  The
        *next* :meth:`ingest` on the live dataset replaces (rather than
        mutates) the shared containers, so the snapshot keeps observing
        exactly the data that existed when it was taken.  Snapshots refuse
        :meth:`ingest` themselves.
        """
        snap = MeasurementDataset(
            hosts=self.hosts,
            routers=self.routers,
            pings=self.pings,
            traceroutes=self.traceroutes,
            router_pings=self.router_pings,
            whois=self.whois,
        )
        snap._rtt_view = self._rtt_view
        snap._rtt_index = self._rtt_index
        snap._distance_view = self._distance_view
        snap._distance_index = self._distance_index
        snap._rtt_degree = self._rtt_degree
        snap._version = self._version
        snap._frozen = True
        self._cow_pending = True
        return snap

    def thaw(self) -> "MeasurementDataset":
        """A live (ingestable) dataset observing this dataset's measurements.

        The inverse of :meth:`snapshot`, and like it O(1): the thawed copy
        shares every container and built matrix with ``self`` in
        copy-on-write mode, carries the version forward, and accepts
        :meth:`ingest`.  This is how a sharded worker process boots -- the
        orchestrator pickles a frozen snapshot across the process boundary
        and the worker thaws it into its own live dataset, replaying any
        ingests that landed while it was starting (:meth:`replay`).  The
        original (frozen or live) dataset is never affected by ingests into
        the thawed copy.
        """
        live = MeasurementDataset(
            hosts=self.hosts,
            routers=self.routers,
            pings=self.pings,
            traceroutes=self.traceroutes,
            router_pings=self.router_pings,
            whois=self.whois,
        )
        live._rtt_view = self._rtt_view
        live._rtt_index = self._rtt_index
        live._distance_view = self._distance_view
        live._distance_index = self._distance_index
        live._rtt_degree = self._rtt_degree
        live._version = self._version
        # The containers are shared with self (and possibly with snapshots
        # of self); the first ingest must replace, not mutate, them.
        live._cow_pending = True
        return live

    def replay(self, records: Iterable[IngestRecord]) -> frozenset[str]:
        """Apply a sequence of captured ingests in order; union of touched ids.

        Each record bumps :attr:`version` by one, exactly as the original
        ingest did, so a worker replaying the orchestrator's log converges
        on the orchestrator's version number as well as its data.
        """
        touched: set[str] = set()
        for record in records:
            touched |= record.apply(self)
        return frozenset(touched)

    def ingest(
        self,
        hosts: Iterable[NodeRecord] = (),
        pings: Iterable[PingResult] = (),
        traceroutes: Iterable[TracerouteResult] = (),
        routers: Iterable[NodeRecord] = (),
        router_pings: Mapping[tuple[str, str], float] | None = None,
    ) -> frozenset[str]:
        """Append new measurements and extend the cohort matrices in place.

        This is the write path of the online service: a continuous stream of
        new targets and refreshed measurements is absorbed without rebuilding
        the full-cohort state.  Already-built pairwise matrices are extended
        incrementally -- untouched entries are carried over by a block copy
        and only the rows of touched hosts re-read the measurement store --
        so an ingest costs O(touched x hosts) measurement reads instead of
        O(hosts^2).  Router latency samples merge by minimum, matching
        :func:`collect_dataset`.

        Returns the set of touched host ids (also recorded in the bounded
        mutation log that backs :meth:`touched_since`).  Raises
        :class:`RuntimeError` on snapshots.
        """
        if self._frozen:
            raise RuntimeError(
                "cannot ingest into a snapshot; ingest on the live dataset"
            )
        if self._cow_pending:
            # A snapshot shares the current containers: replace them with
            # shallow copies so the snapshot keeps its view (copy-on-write).
            self.hosts = dict(self.hosts)
            self.routers = dict(self.routers)
            self.pings = dict(self.pings)
            self.traceroutes = dict(self.traceroutes)
            self.router_pings = dict(self.router_pings)
            self._cow_pending = False

        touched: set[str] = set()
        location_touched: set[str] = set()
        record_hosts: set[str] = set()
        new_hosts: set[str] = set()
        router_observers: set[str] = set()
        router_replaced = False
        for record in hosts:
            existing = self.hosts.get(record.node_id)
            if existing is None:
                new_hosts.add(record.node_id)
            if existing is None or existing.location != record.location:
                location_touched.add(record.node_id)
            if existing is None or existing != record:
                record_hosts.add(record.node_id)
            self.hosts[record.node_id] = record
            touched.add(record.node_id)
        for record in routers:
            existing = self.routers.get(record.node_id)
            if existing is not None and existing != record:
                # Router metadata (the DNS name feeding position hints) has
                # no per-host scope, so a changed record cannot be expressed
                # as a touched-host set; force full downstream invalidation.
                router_replaced = True
            self.routers[record.node_id] = record
        # Per canonical pair: combined min-RTT before the batch lands, so the
        # delta records only pairs whose *value* an estimator could observe
        # changing (a re-probe landing on the same minimum is a no-op).
        ping_list = list(pings)
        old_pair_min: dict[tuple[str, str], float | None] = {}
        for ping in ping_list:
            key = (ping.src, ping.dst) if ping.src < ping.dst else (ping.dst, ping.src)
            if key not in old_pair_min:
                old_pair_min[key] = self.min_rtt_ms(*key)
        for ping in ping_list:
            self.pings[(ping.src, ping.dst)] = ping
            touched.add(ping.src)
            touched.add(ping.dst)
        ping_pairs = {
            key
            for key, old in old_pair_min.items()
            if self.min_rtt_ms(*key) != old
        }
        for trace in traceroutes:
            self.traceroutes[(trace.src, trace.dst)] = trace
            touched.add(trace.src)
            touched.add(trace.dst)
        for (host_id, router_id), rtt in (router_pings or {}).items():
            current = self.router_pings.get((host_id, router_id))
            if current is None or rtt < current:
                self.router_pings[(host_id, router_id)] = rtt
                router_observers.add(host_id)
            touched.add(host_id)

        frozen_touched = frozenset(touched)
        self._extend_matrices(frozen_touched, frozenset(location_touched))
        self._version += 1
        if router_replaced:
            # An empty log not covering the new version makes touched_since
            # report "unknown" for every earlier version, which is the
            # conservative full invalidation this mutation requires.
            self._touched_log.clear()
            self._delta_log.clear()
        else:
            self._touched_log.append((self._version, frozen_touched))
            del self._touched_log[: -self.TOUCHED_LOG_LIMIT]
            self._delta_log.append(
                IngestDelta(
                    version=self._version,
                    touched=frozen_touched,
                    record_hosts=frozenset(record_hosts),
                    new_hosts=frozenset(new_hosts),
                    location_hosts=frozenset(location_touched),
                    ping_pairs=frozenset(ping_pairs),
                    router_observers=frozenset(router_observers),
                )
            )
            del self._delta_log[: -self.TOUCHED_LOG_LIMIT]
        return frozen_touched

    def _extend_matrices(
        self, touched: frozenset[str], location_touched: frozenset[str]
    ) -> None:
        """Extend the built pairwise matrices after an ingest.

        New matrices are allocated (snapshots may still hold the old ones);
        values between two untouched hosts are block-copied, and only
        touched hosts' rows are recomputed from the measurement store --
        yielding entries bit-identical to a from-scratch rebuild, since both
        read the same :meth:`min_rtt_ms` / haversine values.  The distance
        matrix depends only on host locations, so the common ping-only
        ingest (``location_touched`` empty) leaves it untouched entirely.
        """
        if self._rtt_view is not None:
            ids = self.host_ids
            index = {h: i for i, h in enumerate(ids)}
            matrix = np.full((len(ids), len(ids)), np.nan)
            old_index = self._rtt_index or {}
            carried = [h for h in ids if h in old_index]
            if carried:
                new_pos = [index[h] for h in carried]
                old_pos = [old_index[h] for h in carried]
                matrix[np.ix_(new_pos, new_pos)] = self._rtt_view.matrix[
                    np.ix_(old_pos, old_pos)
                ]
            n = len(ids)
            get = self.pings.get
            for host in sorted(touched):
                i = index.get(host)
                if i is None:
                    continue
                # Whole-row recompute: gather both probing directions into
                # flat arrays and combine with fmin (NaN = unmeasured, and
                # fmin(x, nan) == x), which reproduces min_rtt_ms exactly for
                # positive RTTs.  Row and column are assigned in bulk.
                fwd = np.fromiter(
                    (
                        r.min_rtt_ms if (r := get((host, other))) is not None else np.nan
                        for other in ids
                    ),
                    dtype=np.float64,
                    count=n,
                )
                bwd = np.fromiter(
                    (
                        r.min_rtt_ms if (r := get((other, host))) is not None else np.nan
                        for other in ids
                    ),
                    dtype=np.float64,
                    count=n,
                )
                row = np.fmin(fwd, bwd)
                row[i] = np.nan
                matrix[i, :] = row
                matrix[:, i] = row
            self._rtt_index = index
            self._rtt_view = PairMatrixView(ids, index, matrix)
            self._rtt_degree = None

        if self._distance_view is not None and location_touched:
            located = [
                (h, record.location)
                for h, record in sorted(self.hosts.items())
                if record.location is not None
            ]
            ids = [h for h, _ in located]
            index = {h: i for i, h in enumerate(ids)}
            matrix = np.full((len(ids), len(ids)), np.nan)
            old_index = self._distance_index or {}
            carried = [h for h in ids if h in old_index]
            if carried:
                new_pos = [index[h] for h in carried]
                old_pos = [old_index[h] for h in carried]
                matrix[np.ix_(new_pos, new_pos)] = self._distance_view.matrix[
                    np.ix_(old_pos, old_pos)
                ]
            locations = dict(located)
            for host in sorted(location_touched):
                i = index.get(host)
                if i is None:
                    continue
                loc = locations[host]
                for j, other in enumerate(ids):
                    if other == host:
                        matrix[i, j] = np.nan
                        continue
                    d = loc.distance_km(locations[other])
                    matrix[i, j] = matrix[j, i] = d
            self._distance_index = index
            self._distance_view = PairMatrixView(ids, index, matrix)

    # ------------------------------------------------------------------ #
    # Views for leave-one-out evaluation
    # ------------------------------------------------------------------ #
    def landmark_ids_excluding(self, target_id: str) -> list[str]:
        """All hosts except the target -- the landmark set the paper uses."""
        return [h for h in self.host_ids if h != target_id]

    def restrict_landmarks(self, landmark_ids: Sequence[str]) -> "MeasurementDataset":
        """A dataset view containing only the given hosts as landmarks.

        Targets can still be probed (their ping rows/columns are retained for
        pairs that involve a kept landmark), which is what a deployment with a
        reduced landmark population would observe.
        """
        keep = set(landmark_ids)
        hosts = {h: r for h, r in self.hosts.items() if h in keep or True}
        pings = {
            (s, d): p
            for (s, d), p in self.pings.items()
            if s in keep or d in keep
        }
        traceroutes = {
            (s, d): t
            for (s, d), t in self.traceroutes.items()
            if s in keep or d in keep
        }
        router_pings = {
            (h, r): v for (h, r), v in self.router_pings.items() if h in keep
        }
        return MeasurementDataset(
            hosts=hosts,
            routers=dict(self.routers),
            pings=pings,
            traceroutes=traceroutes,
            router_pings=router_pings,
            whois=self.whois,
        )


def collect_dataset(
    deployment: Deployment,
    host_ids: Iterable[str] | None = None,
    probe_count: int | None = None,
    collect_traceroutes: bool = True,
) -> MeasurementDataset:
    """Run the full measurement collection against a deployment.

    Mirrors the paper's methodology: all-pairs pings with time-dispersed
    probes, all-pairs traceroutes, and latency measurements to intermediate
    routers (derived from traceroute hop timings).
    """
    ids = sorted(host_ids) if host_ids is not None else sorted(deployment.host_ids)
    prober = deployment.prober
    topology = deployment.topology
    dataset = MeasurementDataset(whois=deployment.whois)

    for host_id in ids:
        node = topology.node(host_id)
        dataset.hosts[host_id] = NodeRecord(
            node_id=host_id,
            ip_address=node.ip_address,
            dns_name=node.dns_name,
            location=node.location,
            is_host=True,
        )

    count = probe_count or deployment.config.probe_count
    for src in ids:
        for dst in ids:
            if src == dst:
                continue
            dataset.pings[(src, dst)] = prober.ping(src, dst, count)

    if not collect_traceroutes:
        return dataset

    for src in ids:
        for dst in ids:
            if src == dst:
                continue
            trace = prober.traceroute(src, dst)
            dataset.traceroutes[(src, dst)] = trace
            for hop in trace.hops:
                if hop.node_id == dst:
                    continue
                router = topology.node(hop.node_id)
                if hop.node_id not in dataset.routers:
                    dataset.routers[hop.node_id] = NodeRecord(
                        node_id=hop.node_id,
                        ip_address=router.ip_address,
                        dns_name=router.dns_name,
                        location=router.location,
                        is_host=False,
                    )
                key = (src, hop.node_id)
                current = dataset.router_pings.get(key)
                if current is None or hop.min_rtt_ms < current:
                    dataset.router_pings[key] = hop.min_rtt_ms
    return dataset

"""A PlanetLab-like deployment on top of the synthetic substrate.

The paper's evaluation uses 51 PlanetLab nodes with externally determined
positions, no two of which share an institution.  :func:`build_deployment`
reproduces that setup: it builds a topology, places one host per selected
city (universities and research labs are effectively one-per-city at
PlanetLab scale), wires them to provider PoPs, and bundles the topology with
a latency model and prober into a single :class:`Deployment` object the
measurement collection and the evaluation harness operate on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from .geodata import EUROPEAN_CITIES, US_CITIES, City
from .latency import LatencyConfig, LatencyModel
from .probes import Prober
from .topology import NetworkTopology, TopologyConfig, build_topology
from .whois import WhoisRegistry, build_registry_from_topology

__all__ = ["DeploymentConfig", "Deployment", "build_deployment", "DEFAULT_HOST_COUNT"]

#: Number of hosts in the paper's measurement study.
DEFAULT_HOST_COUNT = 51


def default_topology_config(seed: int = 42) -> TopologyConfig:
    """Topology parameters matching the paper's measurement footprint.

    The providers operating between PlanetLab sites are North American and
    European carriers, so the router substrate is restricted to those
    continents; this keeps route inflation in the realistic 1.1-2x range
    instead of detouring transatlantic traffic through unrelated regions.
    """
    return TopologyConfig(
        seed=seed,
        num_providers=4,
        pops_per_provider=38,
        peering_city_count=8,
        cities=US_CITIES + EUROPEAN_CITIES,
    )


@dataclass
class DeploymentConfig:
    """Parameters of a PlanetLab-like deployment.

    ``us_fraction`` controls the continental mix; the 2006 PlanetLab footprint
    was roughly three-quarters North American, and the remainder mostly
    European.
    """

    host_count: int = DEFAULT_HOST_COUNT
    us_fraction: float = 0.72
    seed: int = 42
    topology: TopologyConfig = field(default_factory=default_topology_config)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    probe_count: int = 10
    whois_inaccurate_fraction: float = 0.2


@dataclass
class Deployment:
    """A built deployment: topology, delay model, prober and host list."""

    config: DeploymentConfig
    topology: NetworkTopology
    latency_model: LatencyModel
    prober: Prober
    host_ids: list[str]
    whois: WhoisRegistry

    def host_cities(self) -> list[City]:
        """The city of every deployed host, in host order."""
        return [self.topology.node(h).city for h in self.host_ids]

    def true_location(self, node_id: str):
        """Ground-truth coordinates of any node (host or router)."""
        return self.topology.node(node_id).location


def _select_host_cities(config: DeploymentConfig) -> list[City]:
    """Choose distinct cities for the hosts, biased like the PlanetLab footprint.

    PlanetLab sites live at universities and research labs, which puts most of
    them in mid-sized metros and college towns rather than in the handful of
    largest cities where carrier infrastructure is densest; the selection
    therefore excludes the mega-metros.
    """
    rng = random.Random(config.seed)
    us_pool = [c for c in US_CITIES if c.population <= 5_000_000]
    eu_pool = [c for c in EUROPEAN_CITIES if c.population <= 5_000_000]
    rng.shuffle(us_pool)
    rng.shuffle(eu_pool)

    target_us = round(config.host_count * config.us_fraction)
    target_eu = config.host_count - target_us
    if target_us > len(us_pool) or target_eu > len(eu_pool):
        raise ValueError(
            "host_count too large for the city catalogue: "
            f"need {target_us} US and {target_eu} European cities"
        )
    return us_pool[:target_us] + eu_pool[:target_eu]


def build_deployment(config: DeploymentConfig | None = None) -> Deployment:
    """Build the complete simulated deployment.

    Hosts are named ``host-<citycode>`` (lower case) and spread across the
    providers of the underlying topology round-robin, so that measurements
    between hosts routinely cross provider boundaries -- the situation that
    produces indirect routes.
    """
    cfg = config or DeploymentConfig()
    if cfg.host_count < 3:
        raise ValueError("a deployment needs at least 3 hosts to be useful")

    topology = build_topology(cfg.topology)
    rng = random.Random(cfg.seed + 1)
    cities = _select_host_cities(cfg)

    provider_names = sorted(topology.providers)
    host_ids: list[str] = []
    for i, city in enumerate(cities):
        host_id = f"host-{city.code.lower()}"
        provider = provider_names[i % len(provider_names)]
        topology.attach_host(
            host_id,
            city,
            rng,
            provider_name=provider,
            dns_name=f"planetlab1.{city.code.lower()}.edu",
        )
        host_ids.append(host_id)

    latency_model = LatencyModel(topology, cfg.latency)
    prober = Prober(topology, latency_model, probe_count=cfg.probe_count)
    whois = build_registry_from_topology(
        topology, seed=cfg.seed + 2, inaccurate_fraction=cfg.whois_inaccurate_fraction
    )
    return Deployment(
        config=cfg,
        topology=topology,
        latency_model=latency_model,
        prober=prober,
        host_ids=host_ids,
        whois=whois,
    )


def small_deployment(host_count: int = 12, seed: int = 42) -> Deployment:
    """A reduced deployment for fast tests and examples."""
    config = DeploymentConfig(
        host_count=host_count,
        seed=seed,
        topology=TopologyConfig(
            seed=seed,
            num_providers=3,
            pops_per_provider=26,
            peering_city_count=8,
            cities=US_CITIES + EUROPEAN_CITIES,
        ),
    )
    return build_deployment(config)

"""Convex decomposition of simple polygons (the geographic mask layer).

Octant's negative geographic constraints -- oceans, uninhabited regions --
are arbitrary rings that may project to *non-convex* planar polygons.  The
solver's fast paths (batched Sutherland-Hodgman passes, the wedge
decomposition of convex subtraction) all require a convex operand, so a
non-convex exclusion used to fall back to per-piece Greiner-Hormann
clipping, the single most expensive residual in the solve.

This module turns a non-convex exclusion into a *mask*: an exact partition
of the polygon into convex cells.  Subtracting the polygon is then the fold
of subtracting each convex cell in sequence --

    piece \\ (C1 | C2 | ... | Ck)  ==  ((piece \\ C1) \\ C2) ... \\ Ck

-- and every step rides the already-vectorized convex machinery.  The
decomposition is:

1. **Ear clipping** on the CCW ring (triangles use only original vertices,
   so the partition introduces no new coordinates and its union is exactly
   the polygon).
2. **Greedy convex merge** (Hertel-Mehlhorn flavoured): adjacent cells
   sharing a diagonal merge whenever the union stays convex, keeping the
   cell count near the number of reflex vertices instead of ``n - 2``
   triangles.

The decomposition is a deterministic pure function of the vertex
coordinates; both solver engines call the same function, so the mask fold
is one shared semantics (pinned by the engine-equivalence suites).  Rings
that are not simple (a projected ring that self-intersects, e.g. across
the antimeridian) make ear clipping fail; :func:`convex_decompose` detects
this -- no ear available, or the partition's area not matching the ring's
-- and returns ``None`` so callers keep the exact Greiner-Hormann path for
them.
"""

from __future__ import annotations

from .._lru import BoundedLRU
from .polygon import Polygon

__all__ = ["convex_decompose", "convex_cells_for", "mask_cache_stats"]

#: Relative tolerance on "partition area == polygon area"; a mismatch means
#: the ring was not simple (ear clipping silently mis-partitions bowties).
_AREA_RTOL = 1e-9

#: Cross products with magnitude below this are treated as collinear when
#: classifying reflex vertices and checking merged-cell convexity.  Matches
#: ``Polygon._compute_is_convex``'s collinearity threshold.
_COLLINEAR_EPS = 1e-12


def _cross(ox: float, oy: float, ax: float, ay: float, bx: float, by: float) -> float:
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


def _point_in_triangle(
    px: float, py: float,
    ax: float, ay: float,
    bx: float, by: float,
    cx: float, cy: float,
) -> bool:
    """Strict interior-or-boundary test for a CCW triangle."""
    d1 = _cross(ax, ay, bx, by, px, py)
    d2 = _cross(bx, by, cx, cy, px, py)
    d3 = _cross(cx, cy, ax, ay, px, py)
    return d1 >= -_COLLINEAR_EPS and d2 >= -_COLLINEAR_EPS and d3 >= -_COLLINEAR_EPS


def _ear_clip(coords: list[tuple[float, float]]) -> list[list[int]] | None:
    """Triangulate a simple CCW ring into index triangles, or ``None``.

    Classic O(n^2) ear clipping over vertex indices.  Failing to find an
    ear on a non-degenerate remainder means the ring is not simple (or is
    numerically degenerate); the caller treats that as "not decomposable".
    """
    n = len(coords)
    indices = list(range(n))
    triangles: list[list[int]] = []
    guard = 0
    while len(indices) > 3:
        guard += 1
        if guard > 4 * n:
            return None
        clipped = False
        m = len(indices)
        for k in range(m):
            i_prev = indices[(k - 1) % m]
            i_cur = indices[k]
            i_next = indices[(k + 1) % m]
            ax, ay = coords[i_prev]
            bx, by = coords[i_cur]
            cx, cy = coords[i_next]
            turn = _cross(ax, ay, bx, by, cx, cy)
            if turn <= _COLLINEAR_EPS:
                if abs(turn) <= _COLLINEAR_EPS:
                    # Collinear vertex: drop it without emitting a sliver
                    # triangle (the boundary is unchanged).
                    indices.pop(k)
                    clipped = True
                    break
                continue  # reflex vertex, not an ear
            contains_other = False
            for j in indices:
                if j in (i_prev, i_cur, i_next):
                    continue
                px, py = coords[j]
                if _point_in_triangle(px, py, ax, ay, bx, by, cx, cy):
                    contains_other = True
                    break
            if contains_other:
                continue
            triangles.append([i_prev, i_cur, i_next])
            indices.pop(k)
            clipped = True
            break
        if not clipped:
            return None
    if len(indices) == 3:
        ax, ay = coords[indices[0]]
        bx, by = coords[indices[1]]
        cx, cy = coords[indices[2]]
        if _cross(ax, ay, bx, by, cx, cy) > _COLLINEAR_EPS:
            triangles.append(list(indices))
    return triangles if triangles else None


def _cell_is_convex(cell: list[int], coords: list[tuple[float, float]]) -> bool:
    n = len(cell)
    for i in range(n):
        ax, ay = coords[cell[i]]
        bx, by = coords[cell[(i + 1) % n]]
        cx, cy = coords[cell[(i + 2) % n]]
        if _cross(ax, ay, bx, by, cx, cy) < -_COLLINEAR_EPS:
            return False
    return True


def _merge_cells(
    cells: list[list[int]], coords: list[tuple[float, float]]
) -> list[list[int]]:
    """Greedily merge cells across shared diagonals while the union is convex.

    Two CCW cells sharing directed edge ``(a, b)`` / ``(b, a)`` merge into
    the ring "cell A from ``b`` around to ``a``, then cell B's interior path
    from ``a`` forward to ``b``".  Deterministic: candidate diagonals are
    visited in sorted order and the edge index is rebuilt after every merge,
    so the same input always produces the same cells (the mask fold's order
    is part of the solver's shared semantics).
    """
    pool: list[list[int] | None] = [list(cell) for cell in cells]
    changed = True
    while changed:
        changed = False
        edge_owner: dict[tuple[int, int], int] = {}
        for cid, cell in enumerate(pool):
            if cell is None:
                continue
            n = len(cell)
            for i in range(n):
                edge_owner[(cell[i], cell[(i + 1) % n])] = cid
        for (a, b) in sorted(edge_owner):
            cid = edge_owner[(a, b)]
            other = edge_owner.get((b, a))
            if other is None or other == cid:
                continue
            cell_a = pool[cid]
            cell_b = pool[other]
            if cell_a is None or cell_b is None:
                continue
            na, nb = len(cell_a), len(cell_b)
            ia = cell_a.index(a)
            if cell_a[(ia + 1) % na] != b:
                continue
            ib = cell_b.index(b)
            if cell_b[(ib + 1) % nb] != a:
                continue
            # A's full cycle starting at b (ends at a), then B's vertices
            # strictly between a and b walking forward.
            path_a = [cell_a[(ia + 1 + k) % na] for k in range(na)]
            interior_b = [cell_b[(ib + 2 + k) % nb] for k in range(nb - 2)]
            merged = path_a + interior_b
            if len(set(merged)) != len(merged):
                continue
            if not _cell_is_convex(merged, coords):
                continue
            pool[cid] = merged
            pool[other] = None
            changed = True
            break  # the edge index is stale; rebuild and rescan
    return [cell for cell in pool if cell is not None]


def convex_decompose(polygon: Polygon) -> list[Polygon] | None:
    """Exact partition of ``polygon`` into convex cells, or ``None``.

    The cells use only the polygon's own vertices (ear clipping + convex
    merge), are CCW oriented, and their areas sum to the polygon's area
    (checked; a mismatch -- the signature of a non-simple ring -- returns
    ``None``).  A convex input returns ``[polygon]`` unchanged.
    """
    if polygon.is_convex():
        return [polygon]
    ccw = polygon.ensure_ccw()
    coords = list(ccw.coords)
    triangles = _ear_clip(coords)
    if triangles is None:
        return None
    cells = _merge_cells(triangles, coords)
    polygons: list[Polygon] = []
    total = 0.0
    from .point import Point2D

    for cell in cells:
        pts = [Point2D(*coords[i]) for i in cell]
        try:
            cell_polygon = Polygon(pts)
        except ValueError:
            continue  # degenerate sliver cell: contributes no area
        total += cell_polygon.area()
        polygons.append(cell_polygon)
    if not polygons:
        return None
    area = ccw.area()
    if area <= 0.0 or abs(total - area) > _AREA_RTOL * max(area, 1.0):
        # Partition does not reproduce the ring's area: the ring was not
        # simple (bowtie / antimeridian fold) and the "cells" are garbage.
        return None
    return polygons


# --------------------------------------------------------------------------- #
# Cross-solve memo
# --------------------------------------------------------------------------- #
#: Decompositions keyed by polygon identity.  Entries hold the polygon
#: itself, which keeps the id from being recycled while the entry lives; a
#: lookup re-verifies identity so a recycled id can never alias.  Planar
#: constraint polygons come out of the content-addressed ``CircleCache``,
#: so the same geographic ring under the same projection is the same object
#: across solves, requests and snapshots -- one decomposition serves all.
_MASK_MEMO: BoundedLRU[tuple[Polygon, list[Polygon] | None]] = BoundedLRU(256)
_MASK_HITS = 0
_MASK_MISSES = 0


def convex_cells_for(polygon: Polygon) -> list[Polygon] | None:
    """Memoized :func:`convex_decompose` (identity-keyed, LRU-bounded)."""
    global _MASK_HITS, _MASK_MISSES
    key = id(polygon)
    entry = _MASK_MEMO.get(key)
    if entry is not None and entry[0] is polygon:
        _MASK_HITS += 1
        return entry[1]
    _MASK_MISSES += 1
    cells = convex_decompose(polygon)
    _MASK_MEMO.put(key, (polygon, cells))
    return cells


def mask_cache_stats() -> dict[str, int]:
    """Hit/miss counters and size of the decomposition memo."""
    return {
        "entries": len(_MASK_MEMO),
        "hits": _MASK_HITS,
        "misses": _MASK_MISSES,
    }


def reset_mask_cache() -> None:
    """Drop every memoized decomposition and zero the counters."""
    global _MASK_MEMO, _MASK_HITS, _MASK_MISSES
    _MASK_MEMO = BoundedLRU(_MASK_MEMO.capacity)
    _MASK_HITS = 0
    _MASK_MISSES = 0

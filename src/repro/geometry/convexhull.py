"""Convex hulls and hull facets.

Two distinct parts of Octant need convex hulls:

* The region algebra occasionally needs the hull of a planar point cloud
  (e.g. to bound a secondary landmark's location region).
* The calibration step of Section 2.1 computes the convex hull of the
  (latency, distance) scatter plot of inter-landmark measurements and uses its
  *upper* and *lower* facets as the functions ``R_L(d)`` and ``r_L(d)``.

Both use Andrew's monotone-chain algorithm, which is simple, deterministic and
O(n log n).
"""

from __future__ import annotations

from typing import Sequence

from .point import Point2D, cross

__all__ = [
    "convex_hull",
    "upper_hull",
    "lower_hull",
    "is_point_in_convex_hull",
]


def _sorted_unique(points: Sequence[Point2D]) -> list[Point2D]:
    """Sort points lexicographically and drop exact duplicates."""
    seen: set[tuple[float, float]] = set()
    unique: list[Point2D] = []
    for p in sorted(points, key=lambda q: (q.x, q.y)):
        key = (p.x, p.y)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def _half_hull(points: list[Point2D]) -> list[Point2D]:
    """Build one chain of the monotone-chain hull (points must be sorted)."""
    chain: list[Point2D] = []
    for p in points:
        while len(chain) >= 2 and cross(chain[-1] - chain[-2], p - chain[-2]) <= 0:
            chain.pop()
        chain.append(p)
    return chain


def lower_hull(points: Sequence[Point2D]) -> list[Point2D]:
    """Lower chain of the convex hull, ordered by increasing x.

    For the calibration scatter (x = latency, y = distance) this chain is the
    function ``r_L`` mapping a latency to the *minimum* plausible distance.
    """
    pts = _sorted_unique(points)
    if len(pts) <= 2:
        return pts
    return _half_hull(pts)


def upper_hull(points: Sequence[Point2D]) -> list[Point2D]:
    """Upper chain of the convex hull, ordered by increasing x.

    For the calibration scatter this chain is the function ``R_L`` mapping a
    latency to the *maximum* plausible distance.
    """
    pts = _sorted_unique(points)
    if len(pts) <= 2:
        return pts
    upper = _half_hull(list(reversed(pts)))
    upper.reverse()
    return upper


def convex_hull(points: Sequence[Point2D]) -> list[Point2D]:
    """Convex hull of a point set in counter-clockwise order.

    Degenerate inputs (fewer than three distinct points, or all points
    collinear) return the sorted distinct points, which callers treat as a
    degenerate hull.
    """
    pts = _sorted_unique(points)
    if len(pts) <= 2:
        return pts
    lower = _half_hull(pts)
    upper = _half_hull(list(reversed(pts)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return pts
    return hull


def is_point_in_convex_hull(p: Point2D, hull: Sequence[Point2D], tol: float = 1e-9) -> bool:
    """True when ``p`` lies inside or on the boundary of a CCW convex hull."""
    n = len(hull)
    if n == 0:
        return False
    if n == 1:
        return p.almost_equal(hull[0], tol=max(tol, 1e-9))
    if n == 2:
        a, b = hull
        ab = b - a
        ap = p - a
        if abs(cross(ab, ap)) > tol * max(1.0, ab.norm()):
            return False
        t = (ap.x * ab.x + ap.y * ab.y) / max(ab.norm() ** 2, 1e-18)
        return -tol <= t <= 1.0 + tol
    for i in range(n):
        a = hull[i]
        b = hull[(i + 1) % n]
        if cross(b - a, p - a) < -tol:
            return False
    return True

"""Geometric substrate for the Octant reproduction.

Everything the constraint solver needs to reason about areas on the globe:
spherical primitives (:class:`GeoPoint`, great-circle math), the projection
between the globe and the local working plane, Bezier curves and paths (the
paper's compact boundary representation), simple polygons with boolean
algebra, disks/annuli, and the weighted :class:`Region` abstraction that holds
an estimated location region.
"""

from .bbox import BoundingBox
from .bezier import KAPPA, BezierPath, CubicBezier
from .circles import (
    DEFAULT_CIRCLE_SEGMENTS,
    CircleCache,
    annulus_polygon,
    dilate_polygon,
    disk_bezier,
    disk_polygon,
    erode_polygon,
    geodesic_circle_points,
    planar_circle_polygon,
    polygon_from_geopoints,
)
from .clipping import (
    ClippingError,
    clip_convex,
    clip_halfplane,
    intersect_polygons,
    subtract_convex,
    subtract_polygons,
    union_polygons,
)
from .convexhull import convex_hull, is_point_in_convex_hull, lower_hull, upper_hull
from .point import (
    Point2D,
    centroid_of_points,
    cross,
    dot,
    orientation,
    point_segment_distance,
    segment_intersection,
)
from .polygon import Polygon
from .projection import (
    AzimuthalEquidistantProjection,
    EquirectangularProjection,
    Projection,
    projection_for_points,
)
from .region import Region, RegionPiece
from .sphere import (
    EARTH_CIRCUMFERENCE_KM,
    EARTH_RADIUS_KM,
    FIBER_SPEED_KM_PER_MS,
    KM_PER_MILE,
    MILES_PER_KM,
    SPEED_OF_LIGHT_KM_PER_MS,
    GeoPoint,
    destination_arrays,
    destination_point,
    distance_km_to_min_rtt_ms,
    geographic_midpoint,
    haversine_km,
    haversine_miles,
    initial_bearing_deg,
    km_to_miles,
    miles_to_km,
    normalize_latitude,
    normalize_longitude,
    rtt_ms_to_max_distance_km,
)

__all__ = [
    # sphere
    "GeoPoint",
    "EARTH_RADIUS_KM",
    "EARTH_CIRCUMFERENCE_KM",
    "KM_PER_MILE",
    "MILES_PER_KM",
    "SPEED_OF_LIGHT_KM_PER_MS",
    "FIBER_SPEED_KM_PER_MS",
    "haversine_km",
    "haversine_miles",
    "km_to_miles",
    "miles_to_km",
    "rtt_ms_to_max_distance_km",
    "distance_km_to_min_rtt_ms",
    "initial_bearing_deg",
    "destination_arrays",
    "destination_point",
    "geographic_midpoint",
    "normalize_latitude",
    "normalize_longitude",
    # planar primitives
    "Point2D",
    "dot",
    "cross",
    "orientation",
    "segment_intersection",
    "point_segment_distance",
    "centroid_of_points",
    "BoundingBox",
    "convex_hull",
    "upper_hull",
    "lower_hull",
    "is_point_in_convex_hull",
    # bezier
    "CubicBezier",
    "BezierPath",
    "KAPPA",
    # polygons and clipping
    "Polygon",
    "clip_convex",
    "clip_halfplane",
    "subtract_convex",
    "intersect_polygons",
    "union_polygons",
    "subtract_polygons",
    "ClippingError",
    # projections
    "Projection",
    "AzimuthalEquidistantProjection",
    "EquirectangularProjection",
    "projection_for_points",
    # disks and regions
    "DEFAULT_CIRCLE_SEGMENTS",
    "CircleCache",
    "geodesic_circle_points",
    "disk_polygon",
    "disk_bezier",
    "planar_circle_polygon",
    "annulus_polygon",
    "dilate_polygon",
    "erode_polygon",
    "polygon_from_geopoints",
    "Region",
    "RegionPiece",
]

"""Axis-aligned bounding boxes.

Bounding boxes are used as a fast rejection test before the (comparatively
expensive) polygon clipping operations in :mod:`repro.geometry.clipping`, and
as the sampling window for the grid-based solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .point import Point2D

__all__ = ["BoundingBox"]


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "bounding box min corner must not exceed max corner: "
                f"({self.min_x}, {self.min_y}) vs ({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, points: Iterable[Point2D]) -> "BoundingBox":
        """Smallest box containing every point; raises on empty input."""
        pts = list(points)
        if not pts:
            raise ValueError("BoundingBox.from_points requires at least one point")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    @property
    def center(self) -> Point2D:
        """Center point of the rectangle."""
        return Point2D((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def contains_point(self, p: Point2D, tol: float = 0.0) -> bool:
        """True when ``p`` lies inside (or within ``tol`` of) the box."""
        return (
            self.min_x - tol <= p.x <= self.max_x + tol
            and self.min_y - tol <= p.y <= self.max_y + tol
        )

    def intersects(self, other: "BoundingBox", tol: float = 0.0) -> bool:
        """True when the two boxes overlap (touching counts as overlapping)."""
        return not (
            self.max_x + tol < other.min_x
            or other.max_x + tol < self.min_x
            or self.max_y + tol < other.min_y
            or other.max_y + tol < self.min_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` is entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #
    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """Overlapping box, or ``None`` when the boxes are disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return BoundingBox(min_x, min_y, max_x, max_y)

    def expanded(self, margin: float) -> "BoundingBox":
        """Box grown by ``margin`` on every side (negative margins shrink)."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def corners(self) -> list[Point2D]:
        """The four corners in counter-clockwise order."""
        return [
            Point2D(self.min_x, self.min_y),
            Point2D(self.max_x, self.min_y),
            Point2D(self.max_x, self.max_y),
            Point2D(self.min_x, self.max_y),
        ]

"""Boolean operations on simple polygons.

The Octant constraint solver needs three boolean operations on region pieces:

* ``intersection`` -- combining positive constraints,
* ``difference``   -- removing negative constraints (annulus inner disks,
  oceans, uninhabited areas),
* ``union``        -- merging the weighted pieces of the final estimate.

The general (possibly non-convex) case is handled with the Greiner-Hormann
clipping algorithm on doubly linked vertex lists.  Greiner-Hormann is exact
for polygons in *general position*; degenerate inputs (an intersection point
coinciding with a vertex, collinear overlapping edges) are handled by retrying
with a tiny deterministic perturbation of the clip polygon -- the perturbation
is orders of magnitude below the kilometre-scale resolution that matters for
geolocalization.

A Sutherland-Hodgman fast path is used when the clip polygon is convex (the
overwhelmingly common case: constraint disks are convex), because it is
simpler, faster and immune to the degeneracies above.

All functions return a *list* of simple polygons because boolean operations on
non-convex operands can produce several disconnected pieces -- exactly the
disjoint-region situation the paper's Figure 1 illustrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .point import EPSILON, Point2D, segment_intersection
from .polygon import Polygon

__all__ = [
    "intersect_polygons",
    "union_polygons",
    "subtract_polygons",
    "subtract_polygons_with_hits",
    "clip_convex",
    "subtract_convex",
    "clip_halfplane",
    "ClippingError",
]

#: Perturbation step (km) used to nudge degenerate inputs into general
#: position.  A metre-scale nudge is invisible at geolocation resolution.
_PERTURBATION_KM = 1e-3

#: Number of perturbation retries before giving up on exact clipping.
_MAX_RETRIES = 5

#: Polygon pieces with area below this (km^2) are dropped from results; they
#: are numerical slivers produced by nearly-tangent boundaries.
_MIN_PIECE_AREA_KM2 = 1e-6


class ClippingError(RuntimeError):
    """Raised when a boolean operation cannot be completed robustly."""


# --------------------------------------------------------------------------- #
# Sutherland-Hodgman: clip an arbitrary subject against a *convex* clip
# --------------------------------------------------------------------------- #
def _ccw_coords(polygon: Polygon) -> tuple[tuple[float, float], ...]:
    """Raw CCW-ordered coordinates, equal to ``polygon.ensure_ccw().vertices``.

    Avoids constructing the reversed :class:`Polygon` copy on the hot path:
    reversing preserves consecutive-vertex distinctness, so the reversed
    copy's cleaned vertex list is exactly the reversed list.
    """
    coords = polygon.coords
    if polygon.signed_area() > 0.0:
        return coords
    return tuple(reversed(coords))


def _clip_pass(
    points: list[tuple[float, float]],
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> list[tuple[float, float]]:
    """One Sutherland-Hodgman half-plane pass on raw coordinates.

    Keeps the part of the (cyclic) vertex chain on the left of the directed
    line ``(ax, ay) -> (bx, by)``.  The arithmetic mirrors ``_cross`` /
    ``_line_intersection`` on :class:`Point2D` operand-for-operand, so the
    output coordinates are bitwise identical to the boxed implementation.

    This function is the conformance reference for *every* batched form of
    the pass: the NumPy row kernel (``repro.geometry.kernel._clip_pass_rows``)
    and the compiled per-row loop (``repro.geometry.kernel_compiled._clip_ring``)
    both replicate its operand order, its ``>= -EPSILON`` side predicate,
    the ``abs(denom) < 1e-15`` degenerate-edge guard and the
    intersection-then-vertex emission order exactly -- any change here must
    land in all three (pinned by the randomized equivalence suites).
    """
    ex = bx - ax
    ey = by - ay
    m = len(points)
    sides = [ex * (y - ay) - ey * (x - ax) >= -EPSILON for x, y in points]
    # Fast paths: a chain entirely inside the half-plane is returned as-is
    # (the general loop below would copy it verbatim: every vertex is kept
    # and no intersection is ever emitted); a chain entirely outside yields
    # nothing (no vertex kept, no inside/outside transition to intersect).
    if all(sides):
        return points
    if not any(sides):
        return []
    output: list[tuple[float, float]] = []
    for j in range(m):
        cx, cy = points[j]
        cur_inside = sides[j]
        prev_inside = sides[j - 1]
        if cur_inside:
            if not prev_inside:
                px, py = points[j - 1]
                rx = cx - px
                ry = cy - py
                denom = rx * ey - ry * ex
                if not abs(denom) < 1e-15:
                    t = ((ax - px) * ey - (ay - py) * ex) / denom
                    output.append((px + rx * t, py + ry * t))
            output.append((cx, cy))
        elif prev_inside:
            px, py = points[j - 1]
            rx = cx - px
            ry = cy - py
            denom = rx * ey - ry * ex
            if not abs(denom) < 1e-15:
                t = ((ax - px) * ey - (ay - py) * ex) / denom
                output.append((px + rx * t, py + ry * t))
    return output


def _polygon_from_coords(points: list[tuple[float, float]]) -> Polygon | None:
    """Build the result polygon from raw coordinates, dropping slivers."""
    if len(points) < 3:
        return None
    try:
        result = Polygon([Point2D(x, y) for x, y in points])
    except ValueError:
        return None
    if result.area() < _MIN_PIECE_AREA_KM2:
        return None
    return result


def clip_convex(subject: Polygon, convex_clip: Polygon) -> Polygon | None:
    """Intersection of ``subject`` with a convex ``convex_clip`` polygon.

    Uses Sutherland-Hodgman, which requires the clip polygon to be convex but
    places no constraints on the subject.  Returns ``None`` when the
    intersection is empty.  The output of Sutherland-Hodgman on a non-convex
    subject may contain coincident (zero-width) bridge edges; these do not
    affect area or containment under the even-odd rule used by
    :class:`~repro.geometry.polygon.Polygon`.
    """
    clip_coords = _ccw_coords(convex_clip)
    output = list(_ccw_coords(subject))
    n = len(clip_coords)

    for i in range(n):
        if len(output) < 3:
            return None
        ax, ay = clip_coords[i]
        bx, by = clip_coords[(i + 1) % n]
        output = _clip_pass(output, ax, ay, bx, by)

    return _polygon_from_coords(output)


def clip_halfplane(subject: Polygon, a: Point2D, b: Point2D, keep_left: bool = True) -> Polygon | None:
    """Clip ``subject`` against the half-plane bounded by the line through ``a, b``.

    ``keep_left=True`` keeps the part of the subject to the left of the
    directed line ``a -> b`` (the inside of a CCW polygon's edge);
    ``keep_left=False`` keeps the right side.  Returns ``None`` when nothing
    of the subject remains.  This is a single Sutherland-Hodgman step and is
    the robust building block for :func:`subtract_convex`.
    """
    if not keep_left:
        a, b = b, a
    output = _clip_pass(list(_ccw_coords(subject)), a.x, a.y, b.x, b.y)
    return _polygon_from_coords(output)


def subtract_convex(subject: Polygon, convex_clip: Polygon) -> list[Polygon]:
    """Difference ``subject MINUS convex_clip`` via half-plane decomposition.

    The complement of a convex polygon with CCW edges ``e_1 ... e_n`` (inside
    half-planes ``H_1 ... H_n``) partitions into the disjoint wedges
    ``W_i = complement(H_i) intersect H_1 ... H_{i-1}``.  Clipping the subject
    against each wedge therefore yields disjoint pieces whose union is exactly
    ``subject \\ convex_clip``.  Every step is a single half-plane clip, which
    is immune to the degeneracies that trouble general polygon clipping.
    """
    if not subject.bounding_box().intersects(convex_clip.bounding_box()):
        return [subject]
    clip = convex_clip.ensure_ccw()
    verts = clip.vertices
    n = len(verts)
    pieces: list[Polygon] = []
    for i in range(n):
        a = verts[i]
        b = verts[(i + 1) % n]
        # Outside of edge i.
        piece = clip_halfplane(subject, a, b, keep_left=False)
        if piece is None:
            continue
        # Inside of all previous edges, making the wedges disjoint.
        for j in range(i):
            pa = verts[j]
            pb = verts[(j + 1) % n]
            piece = clip_halfplane(piece, pa, pb, keep_left=True)
            if piece is None:
                break
        if piece is not None and piece.area() >= _MIN_PIECE_AREA_KM2:
            pieces.append(piece)
    return pieces


def _cross(a: Point2D, b: Point2D) -> float:
    return a.x * b.y - a.y * b.x


def _line_intersection(p1: Point2D, p2: Point2D, a: Point2D, b: Point2D) -> Point2D | None:
    """Intersection of segment ``p1p2`` with the infinite line through ``ab``."""
    r = p2 - p1
    s = b - a
    denom = _cross(r, s)
    if abs(denom) < 1e-15:
        return None
    t = _cross(a - p1, s) / denom
    return p1 + r * t


# --------------------------------------------------------------------------- #
# Greiner-Hormann general clipping
# --------------------------------------------------------------------------- #
@dataclass
class _Vertex:
    """A node in the Greiner-Hormann doubly linked vertex list."""

    point: Point2D
    next: "_Vertex | None" = field(default=None, repr=False)
    prev: "_Vertex | None" = field(default=None, repr=False)
    neighbour: "_Vertex | None" = field(default=None, repr=False)
    is_intersection: bool = False
    is_entry: bool = False
    visited: bool = False
    alpha: float = 0.0


class _Ring:
    """Circular doubly linked list of :class:`_Vertex` nodes."""

    def __init__(self, points: Sequence[Point2D]):
        self.first: _Vertex | None = None
        for p in points:
            self.append(_Vertex(p))

    def append(self, vertex: _Vertex) -> None:
        if self.first is None:
            self.first = vertex
            vertex.next = vertex
            vertex.prev = vertex
            return
        last = self.first.prev
        assert last is not None
        last.next = vertex
        vertex.prev = last
        vertex.next = self.first
        self.first.prev = vertex

    def insert_between(self, vertex: _Vertex, start: _Vertex, end: _Vertex) -> None:
        """Insert an intersection vertex between ``start`` and ``end`` sorted by alpha."""
        current = start
        while current is not end and current.next is not None:
            nxt = current.next
            if not nxt.is_intersection or nxt is end or nxt.alpha > vertex.alpha:
                break
            current = nxt
        nxt = current.next
        assert nxt is not None
        current.next = vertex
        vertex.prev = current
        vertex.next = nxt
        nxt.prev = vertex

    def iter_vertices(self) -> list[_Vertex]:
        out: list[_Vertex] = []
        if self.first is None:
            return out
        v = self.first
        while True:
            out.append(v)
            assert v.next is not None
            v = v.next
            if v is self.first:
                break
        return out

    def original_vertices(self) -> list[_Vertex]:
        return [v for v in self.iter_vertices() if not v.is_intersection]


def _build_rings(
    subject: Polygon,
    clip: Polygon,
    precomputed: Sequence[tuple[int, int, float, float]] | None = None,
) -> tuple[_Ring, _Ring, int]:
    """Build linked rings for both polygons with intersection vertices inserted.

    Returns the two rings and the number of intersection pairs found.  Raises
    :class:`ClippingError` when a degenerate intersection (endpoint touching)
    is detected, so the caller can perturb and retry.

    ``precomputed`` optionally supplies the intersections as
    ``(subject_edge, clip_edge, alpha, beta)`` tuples in the scan order of
    the double loop below (subject-edge major, clip-edge minor) -- the
    batched kernel computes them for many subjects in one tensor with the
    very ``segment_intersection`` arithmetic, so the assembled rings are
    node-for-node identical to the scan's.
    """
    ring_s = _Ring(subject.ensure_ccw().vertices)
    ring_c = _Ring(clip.ensure_ccw().vertices)

    subject_orig = ring_s.original_vertices()
    clip_orig = ring_c.original_vertices()

    count = 0
    degenerate_tol = 1e-7
    if precomputed is not None:
        ns = len(subject_orig)
        nc = len(clip_orig)
        for i, j, alpha, beta in precomputed:
            if (
                alpha < degenerate_tol
                or alpha > 1.0 - degenerate_tol
                or beta < degenerate_tol
                or beta > 1.0 - degenerate_tol
            ):
                raise ClippingError("degenerate intersection at a vertex")
            sv = subject_orig[i]
            s_next = subject_orig[(i + 1) % ns]
            cv = clip_orig[j]
            c_next = clip_orig[(j + 1) % nc]
            point = sv.point + (s_next.point - sv.point) * alpha
            vs = _Vertex(point, is_intersection=True, alpha=alpha)
            vc = _Vertex(point, is_intersection=True, alpha=beta)
            vs.neighbour = vc
            vc.neighbour = vs
            ring_s.insert_between(vs, sv, s_next)
            ring_c.insert_between(vc, cv, c_next)
            count += 1
        return ring_s, ring_c, count
    for i, sv in enumerate(subject_orig):
        s_next = subject_orig[(i + 1) % len(subject_orig)]
        for j, cv in enumerate(clip_orig):
            c_next = clip_orig[(j + 1) % len(clip_orig)]
            hit = segment_intersection(sv.point, s_next.point, cv.point, c_next.point)
            if hit is None:
                continue
            alpha, beta = hit
            if (
                alpha < degenerate_tol
                or alpha > 1.0 - degenerate_tol
                or beta < degenerate_tol
                or beta > 1.0 - degenerate_tol
            ):
                raise ClippingError("degenerate intersection at a vertex")
            point = sv.point + (s_next.point - sv.point) * alpha
            vs = _Vertex(point, is_intersection=True, alpha=alpha)
            vc = _Vertex(point, is_intersection=True, alpha=beta)
            vs.neighbour = vc
            vc.neighbour = vs
            ring_s.insert_between(vs, sv, s_next)
            ring_c.insert_between(vc, cv, c_next)
            count += 1
    return ring_s, ring_c, count


def _mark_entries(ring: _Ring, other: Polygon, forward: bool) -> None:
    """Mark each intersection vertex on ``ring`` as entry or exit w.r.t. ``other``."""
    if ring.first is None:
        return
    start = ring.first
    inside = other.contains_point(start.point, include_boundary=False)
    entry = not inside if forward else inside
    for v in ring.iter_vertices():
        if v.is_intersection:
            v.is_entry = entry
            entry = not entry


def _trace(ring_s: _Ring) -> list[Polygon]:
    """Walk the marked rings and emit result polygons."""
    results: list[Polygon] = []
    unvisited = [v for v in ring_s.iter_vertices() if v.is_intersection and not v.visited]
    while unvisited:
        current = unvisited[0]
        pts: list[Point2D] = []
        v = current
        while True:
            v.visited = True
            if v.neighbour is not None:
                v.neighbour.visited = True
            if v.is_entry:
                while True:
                    assert v.next is not None
                    v = v.next
                    pts.append(v.point)
                    if v.is_intersection:
                        break
            else:
                while True:
                    assert v.prev is not None
                    v = v.prev
                    pts.append(v.point)
                    if v.is_intersection:
                        break
            assert v.neighbour is not None
            v = v.neighbour
            if v is current or v.neighbour is current or v.visited and v is not current and v.point.almost_equal(current.point, tol=1e-9):
                break
            if v.visited:
                break
        if len(pts) >= 3:
            try:
                poly = Polygon(pts)
            except ValueError:
                poly = None
            if poly is not None and poly.area() >= _MIN_PIECE_AREA_KM2:
                results.append(poly)
        unvisited = [v for v in ring_s.iter_vertices() if v.is_intersection and not v.visited]
    return results


def _greiner_hormann(
    subject: Polygon,
    clip: Polygon,
    subject_forward: bool,
    clip_forward: bool,
    no_crossing: Callable[[Polygon, Polygon], list[Polygon]],
) -> list[Polygon]:
    """Run one Greiner-Hormann pass with perturbation retries."""
    current_clip = clip
    rng_shift = 0
    for attempt in range(_MAX_RETRIES):
        try:
            ring_s, ring_c, count = _build_rings(subject, current_clip)
        except ClippingError:
            rng_shift += 1
            offset = Point2D(
                _PERTURBATION_KM * math.cos(1.0 + 2.399963 * rng_shift),
                _PERTURBATION_KM * math.sin(1.0 + 2.399963 * rng_shift),
            )
            current_clip = current_clip.translated(offset)
            continue
        if count == 0:
            return no_crossing(subject, current_clip)
        _mark_entries(ring_s, current_clip, subject_forward)
        _mark_entries(ring_c, subject, clip_forward)
        pieces = _trace(ring_s)
        if pieces or count > 0:
            return pieces
    # All retries hit degeneracies; fall back to the no-crossing classification
    # of the perturbed operands, which is the most conservative answer.
    return no_crossing(subject, current_clip)


# --------------------------------------------------------------------------- #
# No-crossing fallbacks (containment / disjoint classification)
# --------------------------------------------------------------------------- #
def _no_crossing_intersection(subject: Polygon, clip: Polygon) -> list[Polygon]:
    if clip.contains_point(subject.centroid()) and clip.contains_polygon(subject):
        return [subject]
    if subject.contains_point(clip.centroid()) and subject.contains_polygon(clip):
        return [clip]
    return []


def _no_crossing_union(subject: Polygon, clip: Polygon) -> list[Polygon]:
    if clip.contains_polygon(subject):
        return [clip]
    if subject.contains_polygon(clip):
        return [subject]
    return [subject, clip]


def _no_crossing_difference(subject: Polygon, clip: Polygon) -> list[Polygon]:
    if clip.contains_polygon(subject):
        return []
    if subject.contains_polygon(clip) and subject.contains_point(clip.centroid()):
        # Clip is a hole strictly inside the subject: keyhole it.
        return [subject.with_hole(clip)]
    return [subject]


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
def intersect_polygons(subject: Polygon, clip: Polygon) -> list[Polygon]:
    """Intersection ``subject AND clip`` as a list of simple polygons."""
    if not subject.bounding_box().intersects(clip.bounding_box()):
        return []
    if clip.is_convex():
        piece = clip_convex(subject, clip)
        return [piece] if piece is not None else []
    if subject.is_convex():
        piece = clip_convex(clip, subject)
        return [piece] if piece is not None else []
    return _greiner_hormann(
        subject,
        clip,
        subject_forward=True,
        clip_forward=True,
        no_crossing=_no_crossing_intersection,
    )


def union_polygons(subject: Polygon, clip: Polygon) -> list[Polygon]:
    """Union ``subject OR clip`` as a list of simple polygons.

    Disjoint operands are returned as separate pieces (a multi-polygon), which
    is how the weighted region algebra represents disconnected estimates.
    """
    if not subject.bounding_box().intersects(clip.bounding_box()):
        return [subject, clip]
    return _greiner_hormann(
        subject,
        clip,
        subject_forward=False,
        clip_forward=False,
        no_crossing=_no_crossing_union,
    )


def subtract_polygons(subject: Polygon, clip: Polygon) -> list[Polygon]:
    """Difference ``subject MINUS clip`` as a list of simple polygons."""
    if not subject.bounding_box().intersects(clip.bounding_box()):
        return [subject]
    if clip.is_convex():
        return subtract_convex(subject, clip)
    return _greiner_hormann(
        subject,
        clip,
        subject_forward=False,
        clip_forward=True,
        no_crossing=_no_crossing_difference,
    )


def subtract_polygons_with_hits(
    subject: Polygon,
    clip: Polygon,
    hits: Sequence[tuple[int, int, float, float]],
) -> list[Polygon]:
    """Greiner-Hormann difference with precomputed clean intersections.

    ``hits`` is the full intersection set as ``(subject_edge, clip_edge,
    alpha, beta)`` in scan order, all non-degenerate (the batched caller
    routes degenerate cases to :func:`subtract_polygons`, whose
    perturb-and-retry loop re-detects them identically).  Replicates the
    first -- and, for clean hits, only -- attempt of the scalar
    ``_greiner_hormann`` difference; any surprise degeneracy falls back to
    the full scalar path, keeping the outcome identical by construction.
    """
    try:
        ring_s, ring_c, count = _build_rings(subject, clip, precomputed=hits)
    except ClippingError:
        return subtract_polygons(subject, clip)
    if count == 0:
        return _no_crossing_difference(subject, clip)
    _mark_entries(ring_s, clip, False)
    _mark_entries(ring_c, subject, True)
    pieces = _trace(ring_s)
    if pieces or count > 0:
        return pieces
    return _no_crossing_difference(subject, clip)

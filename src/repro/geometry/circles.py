"""Geodesic disks, rings and their planar representations.

The raw material of Octant's constraint system is the *disk*: a positive
constraint from a landmark with calibrated bound ``R_L(d)`` is "the target is
inside the disk of radius ``R_L(d)`` centred at the landmark", and a negative
constraint with bound ``r_L(d)`` removes the disk of radius ``r_L(d)``.

Disks live on the sphere but are clipped and accumulated on the projected
plane.  This module constructs them in both representations:

* :func:`geodesic_circle_points` -- points of a circle of constant
  great-circle radius around a geographic centre (computed with destination
  points so the circle is correct on the sphere, not merely in projection).
* :func:`disk_polygon` / :func:`disk_bezier` -- planar polygon / Bezier-path
  representation of such a disk under a given projection.
* :func:`annulus_polygon` -- the ring between an outer (positive) and inner
  (negative) bound from the same landmark, keyholed into a simple polygon.
* :func:`dilate_polygon` / :func:`erode_polygon` -- approximate Minkowski
  sum/difference with a disk, used to turn a *secondary* landmark's location
  region into positive/negative constraints (Section 2 of the paper).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .bezier import KAPPA, BezierPath, CubicBezier
from .convexhull import convex_hull
from .point import Point2D
from .polygon import Polygon
from .projection import Projection
from .sphere import GeoPoint

__all__ = [
    "DEFAULT_CIRCLE_SEGMENTS",
    "CircleCache",
    "geodesic_circle_points",
    "disk_polygon",
    "disk_bezier",
    "annulus_polygon",
    "planar_circle_polygon",
    "dilate_polygon",
    "erode_polygon",
    "polygon_from_geopoints",
]

#: Number of boundary vertices used when flattening a disk to a polygon.  At
#: 64 segments the polygon under-estimates the true disk radius by less than
#: 0.13 %, far below measurement noise.
DEFAULT_CIRCLE_SEGMENTS = 64


def geodesic_circle_points(
    center: GeoPoint,
    radius_km: float,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
) -> list[GeoPoint]:
    """Points of the circle of great-circle radius ``radius_km`` around ``center``.

    Points are returned in counter-clockwise order (as seen looking down on
    the northern hemisphere) starting from due north of the centre.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km!r}")
    if segments < 3:
        raise ValueError(f"need at least 3 segments, got {segments!r}")
    points = []
    for i in range(segments):
        bearing = 360.0 * i / segments
        points.append(center.destination(bearing, radius_km))
    # Destination bearings advance clockwise; reverse for CCW planar order.
    points.reverse()
    return points


class CircleCache:
    """Cross-target cache of geodesic circle boundary points.

    A circle's boundary on the sphere depends only on its centre, radius and
    segment count -- never on the projection a particular localization works
    in.  Batch studies therefore compute each boundary once per cohort,
    keyed ``(lat, lon, radius_km, segments)``, and re-project the cached
    coordinate arrays per target as one vectorized array operation
    (:meth:`Projection.forward_array`).  Entries are bounded FIFO; values
    are immutable and deterministic, so a shared instance is safe under
    concurrent use (a racing insert or evict at worst recomputes or
    re-evicts an entry) and pickles into process-pool workers with whatever
    it has accumulated.
    """

    __slots__ = ("_entries", "capacity")

    def __init__(self, capacity: int = 4096):
        self._entries: dict[
            tuple[float, float, float, int], tuple[np.ndarray, np.ndarray]
        ] = {}
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self._entries)

    def boundary_arrays(
        self, center: GeoPoint, radius_km: float, segments: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latitude/longitude arrays of the circle boundary (cached)."""
        key = (center.lat, center.lon, radius_km, segments)
        cached = self._entries.get(key)
        if cached is not None:
            return cached
        boundary = geodesic_circle_points(center, radius_km, segments)
        lats = np.array([p.lat for p in boundary])
        lons = np.array([p.lon for p in boundary])
        while len(self._entries) >= self.capacity:
            # Tolerate racing evictors: thread-pool workers share this cache
            # and two of them may target the same oldest key.
            try:
                self._entries.pop(next(iter(self._entries)))
            except (KeyError, StopIteration, RuntimeError):
                break
        self._entries[key] = (lats, lons)
        return lats, lons


def disk_polygon(
    center: GeoPoint,
    radius_km: float,
    projection: Projection,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
    cache: CircleCache | None = None,
) -> Polygon:
    """Planar polygon approximating the geodesic disk under ``projection``.

    ``cache`` optionally supplies the geodesic boundary from a
    :class:`CircleCache`; the cached path projects the whole boundary as one
    array operation and produces a polygon bitwise-identical to the uncached
    one (``forward_array`` matches ``forward`` point for point).
    """
    if cache is not None:
        lats, lons = cache.boundary_arrays(center, radius_km, segments)
        planar = projection.forward_array(lats, lons)
        return Polygon([Point2D(x, y) for x, y in planar.tolist()]).ensure_ccw()
    boundary = geodesic_circle_points(center, radius_km, segments)
    return Polygon(projection.forward_many(boundary)).ensure_ccw()


def disk_bezier(
    center: GeoPoint,
    radius_km: float,
    projection: Projection,
    arcs: int = 8,
) -> BezierPath:
    """Bezier-bounded representation of the geodesic disk under ``projection``.

    The disk boundary is sampled at ``arcs`` geodesic points and each arc is
    fitted with a cubic segment whose control points follow the local tangent
    directions -- the compact representation the paper advocates.
    """
    if arcs < 3:
        raise ValueError(f"need at least 3 arcs, got {arcs!r}")
    boundary = geodesic_circle_points(center, radius_km, arcs)
    planar = projection.forward_many(boundary)
    center_planar = projection.forward(center)

    segments: list[CubicBezier] = []
    # The KAPPA handle length is exact for quarter-circle arcs; scale it to
    # the actual arc angle for other segment counts.
    arc_angle = 2.0 * math.pi / arcs
    handle = (4.0 / 3.0) * math.tan(arc_angle / 4.0)
    for i in range(arcs):
        p0 = planar[i]
        p3 = planar[(i + 1) % arcs]
        r0 = p0 - center_planar
        r3 = p3 - center_planar
        # Tangents are perpendicular to the local radius, oriented CCW.
        t0 = r0.perpendicular()
        t3 = r3.perpendicular()
        p1 = p0 + t0 * handle
        p2 = p3 - t3 * handle
        segments.append(CubicBezier(p0, p1, p2, p3))
    return BezierPath(segments)


def planar_circle_polygon(
    center: Point2D,
    radius_km: float,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
) -> Polygon:
    """Plain planar circle polygon (no projection involved)."""
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km!r}")
    return Polygon.regular(center, radius_km, segments)


def annulus_polygon(
    center: GeoPoint,
    outer_radius_km: float,
    inner_radius_km: float,
    projection: Projection,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
) -> Polygon:
    """The ring ``inner_radius <= distance <= outer_radius`` as a keyholed polygon.

    This is exactly the constraint a single landmark with calibrated bounds
    ``r_L(d) < R_L(d)`` contributes: the target is inside the outer disk but
    outside the inner one.  When ``inner_radius_km`` is zero or negative the
    plain outer disk is returned.
    """
    if outer_radius_km <= 0:
        raise ValueError(f"outer radius must be positive, got {outer_radius_km!r}")
    if inner_radius_km >= outer_radius_km:
        raise ValueError(
            "inner radius must be smaller than outer radius: "
            f"{inner_radius_km!r} >= {outer_radius_km!r}"
        )
    outer = disk_polygon(center, outer_radius_km, projection, segments)
    if inner_radius_km <= 0:
        return outer
    inner = disk_polygon(center, inner_radius_km, projection, segments)
    return outer.with_hole(inner)


def dilate_polygon(polygon: Polygon, radius_km: float, segments: int = 16) -> Polygon:
    """Convex over-approximation of the Minkowski sum of ``polygon`` with a disk.

    A positive constraint observed from a *secondary* landmark whose own
    position is only known to be somewhere inside a region beta is the union
    of disks of radius ``d`` centred at every point of beta -- i.e. the
    Minkowski sum of beta with the disk.  Octant approximates this by the
    convex hull of disks placed at the region's vertices, which always
    *contains* the exact sum (so the constraint stays sound) and is convex,
    keeping the downstream clipping on the fast path.
    """
    if radius_km < 0:
        raise ValueError(f"radius must be non-negative, got {radius_km!r}")
    if radius_km == 0:
        return polygon
    points: list[Point2D] = []
    for v in polygon.vertices:
        for i in range(segments):
            angle = 2.0 * math.pi * i / segments
            points.append(
                Point2D(v.x + radius_km * math.cos(angle), v.y + radius_km * math.sin(angle))
            )
    hull = convex_hull(points)
    return Polygon(hull)


def erode_polygon(polygon: Polygon, radius_km: float) -> Polygon | None:
    """Approximate Minkowski erosion of ``polygon`` by a disk of ``radius_km``.

    A negative constraint observed from a secondary landmark must only exclude
    points that are within distance ``d`` of *every* possible landmark
    position -- the erosion of the exclusion disk by the landmark's region.
    Octant approximates the erosion by shrinking the polygon about its
    centroid so that the maximum vertex distance decreases by ``radius_km``.
    The approximation under-estimates the eroded area, so the resulting
    negative constraint never excludes a point it should not (it stays sound).
    Returns ``None`` when the erosion is empty.
    """
    if radius_km < 0:
        raise ValueError(f"radius must be non-negative, got {radius_km!r}")
    if radius_km == 0:
        return polygon
    centroid = polygon.centroid()
    max_extent = polygon.max_distance_to_point(centroid)
    if max_extent <= radius_km:
        return None
    factor = (max_extent - radius_km) / max_extent
    return polygon.scaled(factor, origin=centroid)


def polygon_from_geopoints(points: Sequence[GeoPoint], projection: Projection) -> Polygon:
    """Project a closed ring of geographic points into a planar polygon."""
    if len(points) < 3:
        raise ValueError("need at least three geographic points")
    return Polygon(projection.forward_many(points))

"""Geodesic disks, rings and their planar representations.

The raw material of Octant's constraint system is the *disk*: a positive
constraint from a landmark with calibrated bound ``R_L(d)`` is "the target is
inside the disk of radius ``R_L(d)`` centred at the landmark", and a negative
constraint with bound ``r_L(d)`` removes the disk of radius ``r_L(d)``.

Disks live on the sphere but are clipped and accumulated on the projected
plane.  This module constructs them in both representations:

* :func:`geodesic_circle_points` -- points of a circle of constant
  great-circle radius around a geographic centre (computed with destination
  points so the circle is correct on the sphere, not merely in projection).
* :func:`disk_polygon` / :func:`disk_bezier` -- planar polygon / Bezier-path
  representation of such a disk under a given projection.
* :func:`annulus_polygon` -- the ring between an outer (positive) and inner
  (negative) bound from the same landmark, keyholed into a simple polygon.
* :func:`dilate_polygon` / :func:`erode_polygon` -- approximate Minkowski
  sum/difference with a disk, used to turn a *secondary* landmark's location
  region into positive/negative constraints (Section 2 of the paper).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .._lru import BoundedLRU

from .bezier import KAPPA, BezierPath, CubicBezier
from .convexhull import convex_hull
from .point import Point2D
from .polygon import Polygon
from .projection import Projection
from .sphere import GeoPoint

__all__ = [
    "DEFAULT_CIRCLE_SEGMENTS",
    "CircleCache",
    "geodesic_circle_points",
    "disk_polygon",
    "disk_bezier",
    "annulus_polygon",
    "planar_circle_polygon",
    "dilate_polygon",
    "erode_polygon",
    "polygon_from_geopoints",
]

#: Number of boundary vertices used when flattening a disk to a polygon.  At
#: 64 segments the polygon under-estimates the true disk radius by less than
#: 0.13 %, far below measurement noise.
DEFAULT_CIRCLE_SEGMENTS = 64


def geodesic_circle_points(
    center: GeoPoint,
    radius_km: float,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
) -> list[GeoPoint]:
    """Points of the circle of great-circle radius ``radius_km`` around ``center``.

    Points are returned in counter-clockwise order (as seen looking down on
    the northern hemisphere) starting from due north of the centre.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km!r}")
    if segments < 3:
        raise ValueError(f"need at least 3 segments, got {segments!r}")
    points = []
    for i in range(segments):
        bearing = 360.0 * i / segments
        points.append(center.destination(bearing, radius_km))
    # Destination bearings advance clockwise; reverse for CCW planar order.
    points.reverse()
    return points


class CircleCache:
    """Cross-target cache of circle geometry, geodesic and planar.

    Two content-addressed layers, both bounded LRU:

    * **Geodesic boundaries.**  A circle's boundary on the sphere depends
      only on its centre, radius and segment count -- never on the
      projection a particular localization works in.  Batch studies
      therefore compute each boundary once per cohort, keyed
      ``(lat, lon, radius_km, segments)``, and re-project the cached
      coordinate arrays per target as one vectorized array operation
      (:meth:`Projection.forward_array`).
    * **Planar polygons.**  Repeated-target serving re-realizes the *same*
      circles under the *same* projection on every request (the projection
      is derived from the landmark set and the target, both stable between
      requests).  :meth:`planar_disk` therefore memoizes the fully projected
      constraint polygon keyed ``(projection_key, circle_key)``, where
      ``projection_key`` comes from :meth:`Projection.cache_key`;
      :meth:`planar_ring` does the same for fixed geographic rings (oceans,
      uninhabited areas).  Entries are exactly the polygons the uncached
      path would construct, so cache hits are bit-identical by construction
      (polygons are immutable).

    Because every entry is immutable and deterministic, a shared instance is
    safe under concurrent use (the :class:`~repro._lru.BoundedLRU` layers
    tolerate racing inserts/evicts; hit/miss counters may undercount under
    races, which only affects reporting) and pickles into process-pool
    workers with whatever it has accumulated.  ``capacity`` bounds each
    layer independently so an online service cannot leak geometry without
    bound (``SolverConfig.circle_cache_size`` is the usual source of the
    bound).
    """

    __slots__ = (
        "_entries",
        "_planar",
        "boundary_hits",
        "boundary_misses",
        "planar_hits",
        "planar_misses",
        "mask_prewarms",
    )

    def __init__(self, capacity: int = 4096):
        self._entries: BoundedLRU[tuple[np.ndarray, np.ndarray]] = BoundedLRU(capacity)
        self._planar: BoundedLRU[Polygon] = BoundedLRU(capacity)
        self.boundary_hits = 0
        self.boundary_misses = 0
        self.planar_hits = 0
        self.planar_misses = 0
        #: Non-convex rings whose convex mask cells were pre-realized at
        #: planarization time (see :meth:`planar_ring`).
        self.mask_prewarms = 0

    @property
    def capacity(self) -> int:
        """The per-layer entry bound."""
        return self._entries.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def boundary_arrays(
        self, center: GeoPoint, radius_km: float, segments: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latitude/longitude arrays of the circle boundary (cached, LRU)."""
        key = (center.lat, center.lon, radius_km, segments)
        cached = self._entries.get(key)
        if cached is not None:
            self.boundary_hits += 1
            return cached
        self.boundary_misses += 1
        boundary = geodesic_circle_points(center, radius_km, segments)
        lats = np.array([p.lat for p in boundary])
        lons = np.array([p.lon for p in boundary])
        self._entries.put(key, (lats, lons))
        return lats, lons

    def warm_boundaries(
        self, specs: "Sequence[tuple[GeoPoint, float, int]]"
    ) -> int:
        """Realize missing geodesic boundaries in one pooled vectorized pass.

        ``specs`` is an iterable of ``(center, radius_km, segments)``.  The
        cohort-axis pipeline collects every circle an entire batch of targets
        will realize (constraint disks, router localization disks) and warms
        them here with a single :func:`~repro.geometry.sphere.destination_arrays`
        call instead of ``segments`` scalar destination points per circle.
        Warmed entries are bitwise identical to what
        :meth:`boundary_arrays` would build on a miss (pinned by the batched
        equivalence suites), so scalar and batched callers stay
        interchangeable.  Invalid specs (non-positive radius, too few
        segments) are skipped -- the scalar path is the one that raises.
        Returns the number of boundaries realized.
        """
        from .sphere import destination_arrays

        missing: dict[tuple, tuple[GeoPoint, float, int]] = {}
        for center, radius_km, segments in specs:
            if radius_km <= 0 or segments < 3:
                continue
            key = (center.lat, center.lon, radius_km, segments)
            if key in missing or self._entries.get(key) is not None:
                continue
            missing[key] = (center, radius_km, segments)
        if not missing:
            return 0

        lats: list[float] = []
        lons: list[float] = []
        bearings: list[float] = []
        dists: list[float] = []
        for center, radius_km, segments in missing.values():
            for i in range(segments):
                lats.append(center.lat)
                lons.append(center.lon)
                bearings.append(360.0 * i / segments)
                dists.append(radius_km)
        out_lat, out_lon = destination_arrays(lats, lons, bearings, dists)

        offset = 0
        for key, (_center, _radius, segments) in missing.items():
            # Scalar geodesic_circle_points reverses into CCW planar order.
            chunk_lat = out_lat[offset : offset + segments][::-1].copy()
            chunk_lon = out_lon[offset : offset + segments][::-1].copy()
            offset += segments
            self.boundary_misses += 1
            self._entries.put(key, (chunk_lat, chunk_lon))
        return len(missing)

    # ------------------------------------------------------------------ #
    # Planar layer: (projection, circle) -> constraint polygon
    # ------------------------------------------------------------------ #
    def planar_disk(
        self,
        center: GeoPoint,
        radius_km: float,
        projection: Projection,
        segments: int,
    ) -> Polygon:
        """The projected disk polygon, memoized per ``(projection, circle)``.

        Falls back to an uncached build (still using the cached geodesic
        boundary) when the projection does not expose a cache key.
        """
        projection_key = projection.cache_key()
        if projection_key is None:
            return self._project_disk(center, radius_km, projection, segments)
        key = (projection_key, center.lat, center.lon, radius_km, segments)
        cached = self._planar.get(key)
        if cached is not None:
            self.planar_hits += 1
            return cached
        self.planar_misses += 1
        polygon = self._project_disk(center, radius_km, projection, segments)
        self._planar.put(key, polygon)
        return polygon

    def planar_ring(
        self, ring: tuple[GeoPoint, ...], projection: Projection
    ) -> Polygon:
        """A projected fixed geographic ring, memoized per ``(projection, ring)``.

        The ring tuple itself is the circle key: geographic constraint rings
        (oceans, uninhabited areas) are module-level constants, so hashing
        the coordinates is cheap relative to re-projecting them.

        A ring that projects to a *non-convex* polygon gets its convex mask
        cells pre-realized here (once per ``(projection, region)``, the
        decomposition memo is keyed by the polygon this cache hands out), so
        the solver's first exclusion pass under this projection finds the
        geographic mask ready instead of paying the ear-clip + merge on the
        hot path.
        """
        projection_key = projection.cache_key()
        if projection_key is None:
            return polygon_from_geopoints(list(ring), projection)
        key = (projection_key, ring)
        cached = self._planar.get(key)
        if cached is not None:
            self.planar_hits += 1
            return cached
        self.planar_misses += 1
        polygon = polygon_from_geopoints(list(ring), projection)
        if not polygon.is_convex():
            from .decompose import convex_cells_for

            convex_cells_for(polygon)
            self.mask_prewarms += 1
        self._planar.put(key, polygon)
        return polygon

    def warm_planar_disks(
        self,
        projection: Projection,
        specs: "Sequence[tuple[GeoPoint, float, int]]",
    ) -> int:
        """Project missing disk polygons under ``projection`` in one pooled pass.

        The per-projection companion of :meth:`warm_boundaries`: all missing
        ``(center, radius_km, segments)`` disks are projected through a
        single ``forward_array`` call over the concatenated boundaries, and
        the resulting polygons (identical to :meth:`planar_disk` misses) are
        memoized.  No-op (returns 0) when the projection exposes no cache
        key.  Returns the number of polygons realized.
        """
        projection_key = projection.cache_key()
        if projection_key is None:
            return 0
        missing: dict[tuple, tuple[GeoPoint, float, int]] = {}
        for center, radius_km, segments in specs:
            if radius_km <= 0 or segments < 3:
                continue
            key = (projection_key, center.lat, center.lon, radius_km, segments)
            if key in missing or self._planar.get(key) is not None:
                continue
            missing[key] = (center, radius_km, segments)
        if not missing:
            return 0

        boundaries = [
            self.boundary_arrays(center, radius_km, segments)
            for center, radius_km, segments in missing.values()
        ]
        planar = projection.forward_array(
            np.concatenate([lats for lats, _ in boundaries]),
            np.concatenate([lons for _, lons in boundaries]),
        )
        offset = 0
        for key, (lats, _lons) in zip(missing, boundaries):
            count = len(lats)
            chunk = planar[offset : offset + count]
            offset += count
            polygon = Polygon(
                [Point2D(x, y) for x, y in chunk.tolist()]
            ).ensure_ccw()
            self.planar_misses += 1
            self._planar.put(key, polygon)
        return len(missing)

    def _project_disk(
        self,
        center: GeoPoint,
        radius_km: float,
        projection: Projection,
        segments: int,
    ) -> Polygon:
        """Project the cached geodesic boundary in one array operation."""
        lats, lons = self.boundary_arrays(center, radius_km, segments)
        planar = projection.forward_array(lats, lons)
        return Polygon([Point2D(x, y) for x, y in planar.tolist()]).ensure_ccw()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def planar_entries(self) -> int:
        """Number of cached planar polygons (both disks and rings)."""
        return len(self._planar)

    def stats(self) -> dict[str, int]:
        """Hit/miss counters and sizes for cache-effectiveness reporting."""
        return {
            "boundary_entries": len(self._entries),
            "planar_entries": len(self._planar),
            "boundary_hits": self.boundary_hits,
            "boundary_misses": self.boundary_misses,
            "planar_hits": self.planar_hits,
            "planar_misses": self.planar_misses,
            "mask_prewarms": self.mask_prewarms,
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        self.boundary_hits = 0
        self.boundary_misses = 0
        self.planar_hits = 0
        self.planar_misses = 0
        self.mask_prewarms = 0


def disk_polygon(
    center: GeoPoint,
    radius_km: float,
    projection: Projection,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
    cache: CircleCache | None = None,
) -> Polygon:
    """Planar polygon approximating the geodesic disk under ``projection``.

    ``cache`` optionally supplies the geometry from a :class:`CircleCache`:
    the geodesic boundary comes from the boundary layer and the fully
    projected polygon is memoized per ``(projection, circle)`` in the planar
    layer.  Both cached paths produce a polygon bitwise-identical to the
    uncached one (``forward_array`` matches ``forward`` point for point, and
    a planar hit returns the very polygon a miss would have built).
    """
    if cache is not None:
        return cache.planar_disk(center, radius_km, projection, segments)
    boundary = geodesic_circle_points(center, radius_km, segments)
    return Polygon(projection.forward_many(boundary)).ensure_ccw()


def disk_bezier(
    center: GeoPoint,
    radius_km: float,
    projection: Projection,
    arcs: int = 8,
) -> BezierPath:
    """Bezier-bounded representation of the geodesic disk under ``projection``.

    The disk boundary is sampled at ``arcs`` geodesic points and each arc is
    fitted with a cubic segment whose control points follow the local tangent
    directions -- the compact representation the paper advocates.
    """
    if arcs < 3:
        raise ValueError(f"need at least 3 arcs, got {arcs!r}")
    boundary = geodesic_circle_points(center, radius_km, arcs)
    planar = projection.forward_many(boundary)
    center_planar = projection.forward(center)

    segments: list[CubicBezier] = []
    # The KAPPA handle length is exact for quarter-circle arcs; scale it to
    # the actual arc angle for other segment counts.
    arc_angle = 2.0 * math.pi / arcs
    handle = (4.0 / 3.0) * math.tan(arc_angle / 4.0)
    for i in range(arcs):
        p0 = planar[i]
        p3 = planar[(i + 1) % arcs]
        r0 = p0 - center_planar
        r3 = p3 - center_planar
        # Tangents are perpendicular to the local radius, oriented CCW.
        t0 = r0.perpendicular()
        t3 = r3.perpendicular()
        p1 = p0 + t0 * handle
        p2 = p3 - t3 * handle
        segments.append(CubicBezier(p0, p1, p2, p3))
    return BezierPath(segments)


def planar_circle_polygon(
    center: Point2D,
    radius_km: float,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
) -> Polygon:
    """Plain planar circle polygon (no projection involved)."""
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km!r}")
    return Polygon.regular(center, radius_km, segments)


def annulus_polygon(
    center: GeoPoint,
    outer_radius_km: float,
    inner_radius_km: float,
    projection: Projection,
    segments: int = DEFAULT_CIRCLE_SEGMENTS,
) -> Polygon:
    """The ring ``inner_radius <= distance <= outer_radius`` as a keyholed polygon.

    This is exactly the constraint a single landmark with calibrated bounds
    ``r_L(d) < R_L(d)`` contributes: the target is inside the outer disk but
    outside the inner one.  When ``inner_radius_km`` is zero or negative the
    plain outer disk is returned.
    """
    if outer_radius_km <= 0:
        raise ValueError(f"outer radius must be positive, got {outer_radius_km!r}")
    if inner_radius_km >= outer_radius_km:
        raise ValueError(
            "inner radius must be smaller than outer radius: "
            f"{inner_radius_km!r} >= {outer_radius_km!r}"
        )
    outer = disk_polygon(center, outer_radius_km, projection, segments)
    if inner_radius_km <= 0:
        return outer
    inner = disk_polygon(center, inner_radius_km, projection, segments)
    return outer.with_hole(inner)


def dilate_polygon(polygon: Polygon, radius_km: float, segments: int = 16) -> Polygon:
    """Convex over-approximation of the Minkowski sum of ``polygon`` with a disk.

    A positive constraint observed from a *secondary* landmark whose own
    position is only known to be somewhere inside a region beta is the union
    of disks of radius ``d`` centred at every point of beta -- i.e. the
    Minkowski sum of beta with the disk.  Octant approximates this by the
    convex hull of disks placed at the region's vertices, which always
    *contains* the exact sum (so the constraint stays sound) and is convex,
    keeping the downstream clipping on the fast path.
    """
    if radius_km < 0:
        raise ValueError(f"radius must be non-negative, got {radius_km!r}")
    if radius_km == 0:
        return polygon
    points: list[Point2D] = []
    for v in polygon.vertices:
        for i in range(segments):
            angle = 2.0 * math.pi * i / segments
            points.append(
                Point2D(v.x + radius_km * math.cos(angle), v.y + radius_km * math.sin(angle))
            )
    hull = convex_hull(points)
    return Polygon(hull)


def erode_polygon(polygon: Polygon, radius_km: float) -> Polygon | None:
    """Approximate Minkowski erosion of ``polygon`` by a disk of ``radius_km``.

    A negative constraint observed from a secondary landmark must only exclude
    points that are within distance ``d`` of *every* possible landmark
    position -- the erosion of the exclusion disk by the landmark's region.
    Octant approximates the erosion by shrinking the polygon about its
    centroid so that the maximum vertex distance decreases by ``radius_km``.
    The approximation under-estimates the eroded area, so the resulting
    negative constraint never excludes a point it should not (it stays sound).
    Returns ``None`` when the erosion is empty.
    """
    if radius_km < 0:
        raise ValueError(f"radius must be non-negative, got {radius_km!r}")
    if radius_km == 0:
        return polygon
    centroid = polygon.centroid()
    max_extent = polygon.max_distance_to_point(centroid)
    if max_extent <= radius_km:
        return None
    factor = (max_extent - radius_km) / max_extent
    return polygon.scaled(factor, origin=centroid)


def polygon_from_geopoints(
    points: Sequence[GeoPoint],
    projection: Projection,
    cache: CircleCache | None = None,
) -> Polygon:
    """Project a closed ring of geographic points into a planar polygon.

    ``cache`` memoizes the projected ring per ``(projection, ring)`` in the
    planar layer of a :class:`CircleCache` (rings used as constraints are
    fixed module-level data, so repeated-target serving re-projects them
    constantly).
    """
    if len(points) < 3:
        raise ValueError("need at least three geographic points")
    if cache is not None:
        return cache.planar_ring(tuple(points), projection)
    return Polygon(projection.forward_many(points))

"""Map projections between the globe and the local working plane.

Octant's region algebra (disk construction, polygon clipping, weighted
accumulation) is carried out on a plane.  For the continental scales the paper
deals with (PlanetLab nodes spread over North America and Europe), an
*azimuthal equidistant* projection centred near the constraint system is an
excellent fit: great-circle distances from the projection centre are preserved
exactly, and distances between arbitrary nearby points are distorted by well
under a percent for regions a few thousand kilometres across.

The :class:`AzimuthalEquidistantProjection` provides ``forward`` (lat/lon to
planar km) and ``inverse`` (planar km to lat/lon) mappings.  A simpler
:class:`EquirectangularProjection` is provided for comparison and for the
latency-model internals where only approximate planar coordinates are needed.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ._exact import NUMPY_TRIG_MATCHES_LIBM, acos_elementwise
from .point import Point2D
from .sphere import (
    EARTH_RADIUS_KM,
    GeoPoint,
    geographic_midpoint,
    normalize_latitude,
    normalize_longitude,
)

__all__ = [
    "Projection",
    "AzimuthalEquidistantProjection",
    "EquirectangularProjection",
    "projection_for_points",
]


# The probe lives in ._exact so every vectorized fast path (projection,
# batched destination points, batched height estimation) gates on the same
# build check; the historical module-level name is kept as an alias.
_NUMPY_TRIG_MATCHES_LIBM = NUMPY_TRIG_MATCHES_LIBM


class Projection:
    """Abstract interface for the two-way globe/plane mapping.

    Concrete projections implement :meth:`forward` and :meth:`inverse`; the
    convenience batch methods are shared.
    """

    def forward(self, point: GeoPoint) -> Point2D:
        """Project a geographic point onto the plane (coordinates in km)."""
        raise NotImplementedError

    def inverse(self, point: Point2D) -> GeoPoint:
        """Map a planar point (km) back to geographic coordinates."""
        raise NotImplementedError

    def cache_key(self) -> tuple | None:
        """A hashable value identifying this projection's forward mapping.

        Two projections with equal keys must project every point to bitwise
        identical planar coordinates, which is what lets the planar geometry
        cache (:class:`~repro.geometry.circles.CircleCache`) share clipped
        constraint polygons across localizations keyed by
        ``(projection_key, circle_key)``.  Returns ``None`` when the
        projection cannot guarantee that (the safe default for custom
        subclasses), in which case callers must skip the cache.
        """
        return None

    # ------------------------------------------------------------------ #
    # Batch helpers
    # ------------------------------------------------------------------ #
    def forward_many(self, points: Iterable[GeoPoint]) -> list[Point2D]:
        """Project a sequence of geographic points."""
        return [self.forward(p) for p in points]

    def forward_array(self, lats_deg: np.ndarray, lons_deg: np.ndarray) -> np.ndarray:
        """Project coordinate arrays to an ``(n, 2)`` planar array.

        The generic implementation loops over :meth:`forward`; projections
        with a vectorized fast path override it.  Results are bitwise equal
        to projecting point by point, so callers may mix the two freely.
        """
        out = np.empty((len(lats_deg), 2))
        for i, (lat, lon) in enumerate(zip(lats_deg.tolist(), lons_deg.tolist())):
            p = self.forward(GeoPoint(lat, lon))
            out[i, 0] = p.x
            out[i, 1] = p.y
        return out

    def inverse_many(self, points: Iterable[Point2D]) -> list[GeoPoint]:
        """Un-project a sequence of planar points."""
        return [self.inverse(p) for p in points]

    def roundtrip_error_km(self, point: GeoPoint) -> float:
        """Great-circle distance between ``point`` and its forward/inverse image.

        Useful in tests and for sanity-checking that a projection is adequate
        for the extent of a particular constraint system.
        """
        return point.distance_km(self.inverse(self.forward(point)))


class AzimuthalEquidistantProjection(Projection):
    """Azimuthal equidistant projection centred on a reference point.

    All distances and azimuths measured *from the centre* are preserved
    exactly.  Distortion between two non-central points grows with their
    distance from the centre but stays small for continental extents, which is
    why Octant re-centres the projection on the constraint system for every
    localization (see :func:`projection_for_points`).
    """

    __slots__ = ("_center", "_sin_phi0", "_cos_phi0", "_lambda0")

    def __init__(self, center: GeoPoint):
        self._center = center
        phi0 = math.radians(center.lat)
        self._sin_phi0 = math.sin(phi0)
        self._cos_phi0 = math.cos(phi0)
        self._lambda0 = math.radians(center.lon)

    @property
    def center(self) -> GeoPoint:
        """The geographic point that maps to the planar origin."""
        return self._center

    def cache_key(self) -> tuple:
        """The forward mapping is fully determined by the centre coordinates."""
        return ("aeqd", self._center.lat, self._center.lon)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AzimuthalEquidistantProjection(center={self._center})"

    # ------------------------------------------------------------------ #
    # Forward / inverse
    # ------------------------------------------------------------------ #
    def forward(self, point: GeoPoint) -> Point2D:
        """Project ``point``; the centre maps to ``(0, 0)``."""
        phi = math.radians(point.lat)
        lam = math.radians(point.lon)
        dlam = lam - self._lambda0

        sin_phi = math.sin(phi)
        cos_phi = math.cos(phi)
        cos_c = self._sin_phi0 * sin_phi + self._cos_phi0 * cos_phi * math.cos(dlam)
        cos_c = min(1.0, max(-1.0, cos_c))
        c = math.acos(cos_c)

        if c < 1e-12:
            return Point2D(0.0, 0.0)

        # k is the scale factor along the radial direction.
        k = c / math.sin(c)
        x = EARTH_RADIUS_KM * k * cos_phi * math.sin(dlam)
        y = EARTH_RADIUS_KM * k * (
            self._cos_phi0 * sin_phi - self._sin_phi0 * cos_phi * math.cos(dlam)
        )
        return Point2D(x, y)

    def forward_many(self, points: Iterable[GeoPoint]) -> list[Point2D]:
        """Project a sequence of geographic points (vectorized)."""
        pts = list(points)
        if not pts:
            return []
        arr = self.forward_array(
            np.array([p.lat for p in pts]), np.array([p.lon for p in pts])
        )
        return [Point2D(x, y) for x, y in arr.tolist()]

    def forward_array(self, lats_deg: np.ndarray, lons_deg: np.ndarray) -> np.ndarray:
        """Vectorized projection of coordinate arrays to ``(n, 2)`` planar km.

        Every step runs as a NumPy array operation except the ``acos``,
        which goes through ``math.acos`` per element: NumPy's ``arccos`` is
        not bitwise-identical to the C library's, and this method guarantees
        results equal to :meth:`forward` point for point (pinned by the
        projection tests), so scalar and batch callers can never diverge.
        On NumPy builds whose vectorized sin/cos are not libm-identical
        either (SVML dispatch), the whole method falls back to the scalar
        loop -- correctness over speed.
        """
        if not _NUMPY_TRIG_MATCHES_LIBM:
            return Projection.forward_array(self, lats_deg, lons_deg)
        phi = np.radians(np.asarray(lats_deg, dtype=float))
        lam = np.radians(np.asarray(lons_deg, dtype=float))
        dlam = lam - self._lambda0

        sin_phi = np.sin(phi)
        cos_phi = np.cos(phi)
        cos_dlam = np.cos(dlam)
        cos_c = self._sin_phi0 * sin_phi + self._cos_phi0 * cos_phi * cos_dlam
        cos_c = np.minimum(1.0, np.maximum(-1.0, cos_c))
        c = acos_elementwise(cos_c)

        small = c < 1e-12
        with np.errstate(divide="ignore", invalid="ignore"):
            k = c / np.sin(c)
        x = EARTH_RADIUS_KM * k * cos_phi * np.sin(dlam)
        y = EARTH_RADIUS_KM * k * (
            self._cos_phi0 * sin_phi - self._sin_phi0 * cos_phi * cos_dlam
        )
        if small.any():
            x = np.where(small, 0.0, x)
            y = np.where(small, 0.0, y)
        return np.column_stack([x, y])

    def inverse(self, point: Point2D) -> GeoPoint:
        """Map a planar point back to latitude/longitude."""
        rho = point.norm()
        if rho < 1e-9:
            return self._center
        c = rho / EARTH_RADIUS_KM
        sin_c = math.sin(c)
        cos_c = math.cos(c)

        sin_phi = cos_c * self._sin_phi0 + (point.y * sin_c * self._cos_phi0) / rho
        sin_phi = min(1.0, max(-1.0, sin_phi))
        phi = math.asin(sin_phi)

        num = point.x * sin_c
        den = rho * self._cos_phi0 * cos_c - point.y * self._sin_phi0 * sin_c
        lam = self._lambda0 + math.atan2(num, den)

        return GeoPoint(
            normalize_latitude(math.degrees(phi)),
            normalize_longitude(math.degrees(lam)),
        )


class EquirectangularProjection(Projection):
    """Equirectangular (plate carree) projection scaled at a reference latitude.

    Cheap and adequate for quick distance estimates; distances along parallels
    are distorted away from the reference latitude, so the main Octant solver
    prefers :class:`AzimuthalEquidistantProjection`.
    """

    __slots__ = ("_center", "_cos_phi0")

    def __init__(self, center: GeoPoint):
        self._center = center
        self._cos_phi0 = math.cos(math.radians(center.lat))

    @property
    def center(self) -> GeoPoint:
        """The geographic point that maps to the planar origin."""
        return self._center

    def cache_key(self) -> tuple:
        """The forward mapping is fully determined by the centre coordinates."""
        return ("eqc", self._center.lat, self._center.lon)

    def forward(self, point: GeoPoint) -> Point2D:
        """Project ``point``; the centre maps to ``(0, 0)``."""
        dlon = normalize_longitude(point.lon - self._center.lon)
        x = math.radians(dlon) * EARTH_RADIUS_KM * self._cos_phi0
        y = math.radians(point.lat - self._center.lat) * EARTH_RADIUS_KM
        return Point2D(x, y)

    def inverse(self, point: Point2D) -> GeoPoint:
        """Map a planar point back to latitude/longitude."""
        lat = self._center.lat + math.degrees(point.y / EARTH_RADIUS_KM)
        denom = EARTH_RADIUS_KM * self._cos_phi0
        if abs(denom) < 1e-9:
            lon = self._center.lon
        else:
            lon = self._center.lon + math.degrees(point.x / denom)
        return GeoPoint(normalize_latitude(lat), normalize_longitude(lon))


def projection_for_points(
    points: Sequence[GeoPoint] | Iterable[GeoPoint],
) -> AzimuthalEquidistantProjection:
    """Azimuthal equidistant projection centred on the midpoint of ``points``.

    This is how Octant picks its working plane for a localization: the
    constraint system (landmarks plus any prior region for the target) is
    projected about its own geographic midpoint so projection distortion is
    minimized where the constraints actually interact.
    """
    pts = list(points)
    if not pts:
        raise ValueError("projection_for_points requires at least one point")
    return AzimuthalEquidistantProjection(geographic_midpoint(pts))

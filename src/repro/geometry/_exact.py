"""Bitwise libm-exact building blocks for vectorized geometry.

Octant's conformance discipline requires every batched/vectorized code path
to produce results bitwise identical to its scalar reference (the property
the equivalence suites pin).  Elementwise IEEE arithmetic (+, -, *, /,
sqrt, min/max, comparisons) is exact by definition, but transcendentals are
not: some NumPy builds dispatch double-precision trig to SIMD kernels
(SVML) that differ from the C library in the last ulp, and NumPy's
``arcsin``/``arccos``/``arctan2`` differ from ``math.asin``/``acos``/
``atan2`` even on builds whose ``sin``/``cos`` agree.

This module centralizes the two tools every vectorized fast path needs:

* :data:`NUMPY_TRIG_MATCHES_LIBM` -- a probe-derived flag that is ``True``
  only when NumPy's array ``sin``/``cos``/``radians`` round exactly like
  libm's scalars on this build.  Fast paths must fall back to their scalar
  loops when it is ``False``.
* :func:`asin_elementwise` / :func:`acos_elementwise` /
  :func:`atan2_elementwise` -- inverse trig applied through ``math.*`` per
  element (never ``np.arcsin`` et al.), so vectorized pipelines can keep
  every other step as an array operation while the inverse-trig step stays
  bit-for-bit the scalar one.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "NUMPY_TRIG_MATCHES_LIBM",
    "probe_numpy_trig",
    "asin_elementwise",
    "acos_elementwise",
    "atan2_elementwise",
]


def probe_numpy_trig() -> bool:
    """True when NumPy's array sin/cos are bitwise-identical to libm's.

    Ulp-level divergence, when present, shows up immediately on a spread of
    probe values this size; the degree conversion is probed too because fast
    paths use ``np.radians`` where scalar references use ``math.radians``.
    """
    probe = np.linspace(-2.0 * math.pi, 2.0 * math.pi, 257)
    sins = np.sin(probe)
    coss = np.cos(probe)
    for value, s, c in zip(probe.tolist(), sins.tolist(), coss.tolist()):
        if s != math.sin(value) or c != math.cos(value):
            return False
    degrees = np.linspace(-180.0, 180.0, 181)
    for value, r in zip(degrees.tolist(), np.radians(degrees).tolist()):
        if r != math.radians(value):
            return False
        if math.degrees(r) != np.degrees(np.float64(r)):
            return False
    return True


NUMPY_TRIG_MATCHES_LIBM = probe_numpy_trig()


def asin_elementwise(values: np.ndarray) -> np.ndarray:
    """``math.asin`` applied per element (bitwise libm; never ``np.arcsin``)."""
    flat = np.asarray(values, dtype=float)
    out = np.array([math.asin(v) for v in flat.ravel().tolist()])
    return out.reshape(flat.shape)


def acos_elementwise(values: np.ndarray) -> np.ndarray:
    """``math.acos`` applied per element (bitwise libm; never ``np.arccos``)."""
    flat = np.asarray(values, dtype=float)
    out = np.array([math.acos(v) for v in flat.ravel().tolist()])
    return out.reshape(flat.shape)


def atan2_elementwise(y: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``math.atan2`` applied per element (bitwise libm; never ``np.arctan2``)."""
    ya = np.asarray(y, dtype=float)
    xa = np.asarray(x, dtype=float)
    out = np.array(
        [math.atan2(yv, xv) for yv, xv in zip(ya.ravel().tolist(), xa.ravel().tolist())]
    )
    return out.reshape(ya.shape)

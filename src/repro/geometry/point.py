"""Planar points and small vector helpers.

Octant performs its region algebra (intersection, union, subtraction of
constraint areas) in a local planar coordinate system obtained by projecting
latitude/longitude onto a plane (see :mod:`repro.geometry.projection`).  This
module provides the planar :class:`Point2D` primitive and the handful of
vector operations the polygon and Bezier machinery needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Point2D",
    "cross",
    "dot",
    "orientation",
    "segment_intersection",
    "point_segment_distance",
    "centroid_of_points",
]

#: Tolerance used for geometric predicates on planar coordinates expressed in
#: kilometres.  One centimetre is far below any meaningful geolocation error.
EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Point2D:
    """An immutable planar point (or 2-D vector), coordinates in kilometres."""

    x: float
    y: float

    # -- vector arithmetic ------------------------------------------------ #
    def __add__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point2D":
        return Point2D(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point2D":
        return Point2D(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point2D":
        return Point2D(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # -- geometry --------------------------------------------------------- #
    def norm(self) -> float:
        """Euclidean length of the vector from the origin to this point."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point2D") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Point2D":
        """Unit vector in the same direction; raises on the zero vector."""
        n = self.norm()
        if n < EPSILON:
            raise ValueError("cannot normalize a zero-length vector")
        return Point2D(self.x / n, self.y / n)

    def perpendicular(self) -> "Point2D":
        """The vector rotated 90 degrees counter-clockwise."""
        return Point2D(-self.y, self.x)

    def rotated(self, angle_rad: float) -> "Point2D":
        """The vector rotated ``angle_rad`` radians counter-clockwise."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Point2D(c * self.x - s * self.y, s * self.x + c * self.y)

    def almost_equal(self, other: "Point2D", tol: float = 1e-6) -> bool:
        """True when both coordinates agree within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)


def dot(a: Point2D, b: Point2D) -> float:
    """Dot product of two vectors."""
    return a.x * b.x + a.y * b.y


def cross(a: Point2D, b: Point2D) -> float:
    """Z-component of the 3-D cross product of two planar vectors."""
    return a.x * b.y - a.y * b.x


def orientation(a: Point2D, b: Point2D, c: Point2D) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns ``+1`` for a counter-clockwise turn, ``-1`` for clockwise and
    ``0`` for (numerically) collinear points.
    """
    val = cross(b - a, c - a)
    if val > EPSILON:
        return 1
    if val < -EPSILON:
        return -1
    return 0


def segment_intersection(
    p1: Point2D,
    p2: Point2D,
    q1: Point2D,
    q2: Point2D,
) -> tuple[float, float] | None:
    """Intersection of segments ``p1p2`` and ``q1q2`` as interpolation parameters.

    Returns ``(alpha, beta)`` such that the intersection point is
    ``p1 + alpha * (p2 - p1)`` and also ``q1 + beta * (q2 - q1)``, with both
    parameters strictly inside ``(0, 1)`` up to a small tolerance.  Returns
    ``None`` when the segments do not properly intersect (including parallel
    and collinear-overlap cases, which callers handle via perturbation).
    """
    r = p2 - p1
    s = q2 - q1
    denom = cross(r, s)
    if abs(denom) < EPSILON:
        return None
    qp = q1 - p1
    alpha = cross(qp, s) / denom
    beta = cross(qp, r) / denom
    lo, hi = -EPSILON, 1.0 + EPSILON
    if lo < alpha < hi and lo < beta < hi:
        return (min(1.0, max(0.0, alpha)), min(1.0, max(0.0, beta)))
    return None


def point_segment_distance(p: Point2D, a: Point2D, b: Point2D) -> float:
    """Euclidean distance from point ``p`` to the segment ``ab``."""
    ab = b - a
    ab_len2 = dot(ab, ab)
    if ab_len2 < EPSILON * EPSILON:
        return p.distance_to(a)
    t = dot(p - a, ab) / ab_len2
    t = max(0.0, min(1.0, t))
    proj = a + ab * t
    return p.distance_to(proj)


def centroid_of_points(points: Sequence[Point2D] | Iterable[Point2D]) -> Point2D:
    """Arithmetic mean of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid_of_points requires at least one point")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point2D(sx / len(pts), sy / len(pts))

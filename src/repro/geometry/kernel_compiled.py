"""Compiled (GIL-free) backend for the flat-buffer clip kernel core.

The NumPy kernel in :mod:`repro.geometry.kernel` spends its time in per-pass
*dispatch*, not arithmetic (DESIGN_SOLVER_KERNEL.md): every half-plane pass
costs a fixed number of NumPy trips over small matrices, and the passes hold
the GIL, so fused cohorts cannot use more than one core.  This module ports
the row primitives that virtually all clip work funnels through -- the
Sutherland-Hodgman pass with its three drivers (``_clip_convex_rows``,
``_clip_convex_rows_multi``, ``_halfplane_chain_run``) and the batched
Greiner-Hormann intersection scan (``_gh_subtract_rows``) -- to scalar row
loops compiled with ``numba.njit(nogil=True, cache=True, fastmath=False)``.

Contract and discipline:

* **Bit identity.**  Every arithmetic operand mirrors the scalar reference
  (``clipping._clip_pass`` -> per-pass clean -> sequential shoelace) in the
  same order with the same guards (``EPSILON`` sidedness, the ``1e-15``
  denominator gate, ``MERGE_TOLERANCE_KM`` cleaning, the
  ``_MIN_PIECE_AREA_KM2`` sliver kill).  ``fastmath=False`` keeps LLVM from
  contracting multiplies and adds into FMAs or reassociating sums, so the
  compiled rounding equals NumPy's C loops operation for operation.  The one
  knowing deviation: the NumPy path's ``cumsum`` shoelace normalizes a
  ``-0.0`` total to ``+0.0`` when padding lanes follow; a ``+/-0.0`` signed
  area is always below the sliver threshold, so the row dies either way and
  the difference is unobservable (see DESIGN_SOLVER_KERNEL.md).
* **Row independence.**  Each driver processes one row through its *entire*
  edge sequence before the next row, where the NumPy drivers advance all
  rows one pass at a time.  Rows never interact (established by the batched
  kernel's own equivalence suites), so the reordering preserves per-row
  results bitwise; per-pass stats are reconstructed from per-row
  participation counts (a row participates at consecutive pass indices from
  0 until death, hence ``clip_passes = max`` and ``rows_clipped = sum``).
* **Layout portability.**  Kernels take plain padded C-contiguous
  ``float64``/``int64`` buffers and return packed coordinate arrays --
  exactly the struct-of-arrays layout a Cython/C or CUDA port would take,
  so swapping the JIT for an extension module is a relinking exercise.
* **GIL release.**  ``nogil=True`` lets the fused chunk threads started by
  :class:`repro.core.batch.BatchLocalizer` overlap their clip passes on
  separate cores while sharing one warm geometry/circle cache (no process
  pickling).  The pure-Python/NumPy paths keep the GIL; only this backend
  makes the thread executor scale.

Backend selection is explicit: :func:`resolve_backend` maps
``SolverConfig.kernel_backend`` (``"auto"``/``"compiled"``/``"numpy"``) to a
:class:`KernelBackend`, falling back to the NumPy path with a recorded
reason when numba is not importable.  ``OCTANT_KERNEL_FORCE=purepy`` runs
the *same* kernel bodies uncompiled (the functions are single-source:
decoration is conditional), which is how the bit-identity suites validate
the compiled logic on hosts without numba; ``OCTANT_KERNEL_FORCE=numpy``
disables the backend outright.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Sequence

import numpy as np

from .clipping import _MIN_PIECE_AREA_KM2 as MIN_SLIVER_AREA_KM2
from .point import EPSILON
from .polygon import MERGE_TOLERANCE_KM

__all__ = [
    "NUMBA_AVAILABLE",
    "KernelBackend",
    "resolve_backend",
    "reset_backends",
    "kernel_runtime_stats",
    "reset_kernel_runtime",
]

try:  # pragma: no cover - absent in the pinned local environment
    import numba
except ImportError:  # pragma: no cover
    numba = None

NUMBA_AVAILABLE = numba is not None

#: Environment override: ``numpy`` disables the compiled backend outright,
#: ``purepy`` selects the compiled code path with uncompiled (pure-Python)
#: kernel bodies -- the test hook that validates the port without numba.
FORCE_ENV = "OCTANT_KERNEL_FORCE"

_DENOM_GUARD = 1e-15
_GH_DEGENERATE_TOL = 1e-7


# --------------------------------------------------------------------------- #
# Row kernels (single source: compiled when numba is available)
# --------------------------------------------------------------------------- #
def _reverse_ring(wx, wy, c):
    """Reverse the first ``c`` lanes of a ring in place."""
    half = c // 2
    for i in range(half):
        j = c - 1 - i
        tx = wx[i]
        wx[i] = wx[j]
        wx[j] = tx
        ty = wy[i]
        wy[i] = wy[j]
        wy[j] = ty


def _clip_ring(wx, wy, c, ax, ay, bx, by, eps, sides, ox, oy):
    """One half-plane pass over one ring; mirrors ``clipping._clip_pass``.

    Returns ``(n_out, crossed)``.  When ``crossed`` is False the ring was
    kept verbatim (``n_out == c``) or emptied (``n_out == 0``) and ``ox``,
    ``oy`` are untouched; when True the clipped ring is in ``ox``/``oy``.
    Emit order per lane matches the scalar pass: the edge intersection
    (subject to the ``1e-15`` denominator gate) precedes the inside vertex.
    """
    ex = bx - ax
    ey = by - ay
    all_in = True
    any_in = False
    for j in range(c):
        cr = ex * (wy[j] - ay) - ey * (wx[j] - ax)
        inside = cr >= -eps
        if inside:
            sides[j] = 1
            any_in = True
        else:
            sides[j] = 0
            all_in = False
    if all_in:
        return c, False
    if not any_in:
        return 0, False
    n = 0
    prev = sides[c - 1]
    for j in range(c):
        s = sides[j]
        if s != prev:
            pj = j - 1 if j > 0 else c - 1
            px = wx[pj]
            py = wy[pj]
            rx = wx[j] - px
            ry = wy[j] - py
            denom = rx * ey - ry * ex
            if not (abs(denom) < _DENOM_GUARD):
                t = ((ax - px) * ey - (ay - py) * ex) / denom
                ox[n] = px + rx * t
                oy[n] = py + ry * t
                n += 1
        if s == 1:
            ox[n] = wx[j]
            oy[n] = wy[j]
            n += 1
        prev = s
    return n, True


def _clean_ring(sx, sy, n, wx, wy, tol):
    """``_clean_coords`` replica: forward dedup, then pop the closing tail.

    Writes the cleaned ring into ``wx``/``wy`` (safe when ``sx is wx``: the
    write index never passes the read index) and returns the kept count.
    Running it on an already-clean ring is the identity, which is why the
    compiled drivers may clean unconditionally where the NumPy path only
    cleans rows flagged dirty.
    """
    if n == 0:
        return 0
    lastx = sx[0]
    lasty = sy[0]
    wx[0] = lastx
    wy[0] = lasty
    m = 1
    for j in range(1, n):
        vx = sx[j]
        vy = sy[j]
        if not (abs(vx - lastx) <= tol and abs(vy - lasty) <= tol):
            wx[m] = vx
            wy[m] = vy
            m += 1
            lastx = vx
            lasty = vy
    while m > 1 and abs(wx[m - 1] - wx[0]) <= tol and abs(wy[m - 1] - wy[0]) <= tol:
        m -= 1
    return m


def _ring_area(wx, wy, m):
    """Sequential shoelace, term order identical to ``_shoelace``."""
    total = 0.0
    for i in range(m):
        j = i + 1 if i + 1 < m else 0
        total += wx[i] * wy[j] - wx[j] * wy[i]
    return total / 2.0


def _convex_rows(X, Y, counts, signed, edge_arr, seq_lens, eps, tol, sliver):
    """Compiled ``_clip_convex_rows``/``_clip_convex_rows_multi`` core.

    Each row is oriented CCW once, clipped through its own edge sequence
    (raw pass output chains into the next pass -- no inter-pass cleaning,
    exactly like the NumPy drivers), killed the moment its count drops
    below 3, and finalized with the scalar-exact clean/measure/sliver
    check.  Returns packed surviving rings plus per-row participation
    counters for stats reconstruction.
    """
    R, V = X.shape
    out_cap = R * (V + 8) + 16
    out_xs = np.empty(out_cap)
    out_ys = np.empty(out_cap)
    out_off = np.zeros(R + 1, np.int64)
    out_signed = np.zeros(R)
    out_alive = np.zeros(R, np.uint8)
    row_passes = np.zeros(R, np.int64)
    row_verts = np.zeros(R, np.int64)
    pos = 0
    for r in range(R):
        c = counts[r]
        cap = 2 * V + 4
        wx = np.empty(cap)
        wy = np.empty(cap)
        ox = np.empty(cap)
        oy = np.empty(cap)
        sides = np.empty(cap, np.uint8)
        for j in range(c):
            wx[j] = X[r, j]
            wy[j] = Y[r, j]
        if not (signed[r] > 0.0):
            _reverse_ring(wx, wy, c)
        n_edges = seq_lens[r]
        for e in range(n_edges):
            if c < 3:
                c = 0
                break
            row_passes[r] += 1
            row_verts[r] += c
            if 2 * c > cap:
                cap = 2 * c + 4
                nwx = np.empty(cap)
                nwy = np.empty(cap)
                for j in range(c):
                    nwx[j] = wx[j]
                    nwy[j] = wy[j]
                wx = nwx
                wy = nwy
                ox = np.empty(cap)
                oy = np.empty(cap)
                sides = np.empty(cap, np.uint8)
            n, crossed = _clip_ring(
                wx,
                wy,
                c,
                edge_arr[r, e, 0],
                edge_arr[r, e, 1],
                edge_arr[r, e, 2],
                edge_arr[r, e, 3],
                eps,
                sides,
                ox,
                oy,
            )
            if crossed:
                tx = wx
                wx = ox
                ox = tx
                ty = wy
                wy = oy
                oy = ty
            c = n
        if c >= 3:
            m = _clean_ring(wx, wy, c, wx, wy, tol)
            area = _ring_area(wx, wy, m)
            if m >= 3 and not (abs(area) < sliver):
                need = pos + m
                if need > out_cap:
                    out_cap = 2 * need + 16
                    nxs = np.empty(out_cap)
                    nys = np.empty(out_cap)
                    for j in range(pos):
                        nxs[j] = out_xs[j]
                        nys[j] = out_ys[j]
                    out_xs = nxs
                    out_ys = nys
                for j in range(m):
                    out_xs[pos + j] = wx[j]
                    out_ys[pos + j] = wy[j]
                pos += m
                out_signed[r] = area
                out_alive[r] = 1
        out_off[r + 1] = pos
    return out_xs, out_ys, out_off, out_signed, out_alive, row_passes, row_verts


def _chain_rows(X, Y, counts, signed, edge_arr, seq_lens, eps, tol, sliver):
    """Compiled ``_halfplane_chain_run`` core.

    Every pass replicates one scalar ``clip_halfplane``: re-orient the ring
    CCW from its *current* signed area, clip, then -- only when the ring was
    flipped or actually crossed the edge -- clean/measure/validate exactly
    like the per-pass ``_polygon_from_coords``.  Verbatim-kept CCW rows skip
    the rebuild (cleaning a clean ring is the identity), mirroring the
    NumPy driver's ``need = flip | changed`` fast path.
    """
    R, V = X.shape
    out_cap = R * (V + 8) + 16
    out_xs = np.empty(out_cap)
    out_ys = np.empty(out_cap)
    out_off = np.zeros(R + 1, np.int64)
    out_signed = np.zeros(R)
    out_alive = np.zeros(R, np.uint8)
    row_passes = np.zeros(R, np.int64)
    row_verts = np.zeros(R, np.int64)
    pos = 0
    for r in range(R):
        c = counts[r]
        s = signed[r]
        alive = c >= 3
        cap = 2 * V + 4
        wx = np.empty(cap)
        wy = np.empty(cap)
        ox = np.empty(cap)
        oy = np.empty(cap)
        sides = np.empty(cap, np.uint8)
        for j in range(c):
            wx[j] = X[r, j]
            wy[j] = Y[r, j]
        n_edges = seq_lens[r]
        for k in range(n_edges):
            if not alive:
                break
            row_passes[r] += 1
            row_verts[r] += c
            flip = not (s > 0.0)
            if flip:
                _reverse_ring(wx, wy, c)
            if 2 * c > cap:
                cap = 2 * c + 4
                nwx = np.empty(cap)
                nwy = np.empty(cap)
                for j in range(c):
                    nwx[j] = wx[j]
                    nwy[j] = wy[j]
                wx = nwx
                wy = nwy
                ox = np.empty(cap)
                oy = np.empty(cap)
                sides = np.empty(cap, np.uint8)
            n, crossed = _clip_ring(
                wx,
                wy,
                c,
                edge_arr[r, k, 0],
                edge_arr[r, k, 1],
                edge_arr[r, k, 2],
                edge_arr[r, k, 3],
                eps,
                sides,
                ox,
                oy,
            )
            if n < 3:
                n = 0
            if not (flip or crossed):
                if n == 0:
                    alive = False
                    c = 0
                continue
            if crossed:
                m = _clean_ring(ox, oy, n, wx, wy, tol)
            else:
                m = _clean_ring(wx, wy, n, wx, wy, tol)
            area = _ring_area(wx, wy, m)
            good = m >= 3 and not (abs(area) < sliver)
            s = area
            if good:
                c = m
            else:
                c = 0
            alive = good
        if alive:
            need = pos + c
            if need > out_cap:
                out_cap = 2 * need + 16
                nxs = np.empty(out_cap)
                nys = np.empty(out_cap)
                for j in range(pos):
                    nxs[j] = out_xs[j]
                    nys[j] = out_ys[j]
                out_xs = nxs
                out_ys = nys
            for j in range(c):
                out_xs[pos + j] = wx[j]
                out_ys[pos + j] = wy[j]
            pos += c
            out_signed[r] = s
            out_alive[r] = 1
        out_off[r + 1] = pos
    return out_xs, out_ys, out_off, out_signed, out_alive, row_passes, row_verts


def _gh_scan(X, Y, counts, clipx, clipy, eps, dtol):
    """Compiled ``_gh_subtract_rows`` intersection scan.

    Per (row, subject lane, clip edge) mirrors ``segment_intersection``
    operand for operand: the ``EPSILON`` denominator gate, the open
    in-range predicates, and the [0, 1] clamp.  Hits are emitted in the
    NumPy scan's ``np.nonzero`` order (subject-lane major), per-row flags
    classify the routing: 0 = no hit, 1 = clean hits, 2 = degenerate (the
    scalar fallback re-detects the degeneracy; recorded hits are dropped).
    """
    R, V = X.shape
    E = clipx.shape[0]
    flags = np.zeros(R, np.uint8)
    cap = 256
    h_row = np.empty(cap, np.int64)
    h_i = np.empty(cap, np.int64)
    h_j = np.empty(cap, np.int64)
    h_a = np.empty(cap)
    h_b = np.empty(cap)
    nh = 0
    for r in range(R):
        c = counts[r]
        start = nh
        anyhit = False
        deg = False
        for i in range(c):
            ni = i + 1 if i + 1 < c else 0
            rx = X[r, ni] - X[r, i]
            ry = Y[r, ni] - Y[r, i]
            for j in range(E):
                nj = j + 1 if j + 1 < E else 0
                sx = clipx[nj] - clipx[j]
                sy = clipy[nj] - clipy[j]
                denom = rx * sy - ry * sx
                if abs(denom) >= eps:
                    qpx = clipx[j] - X[r, i]
                    qpy = clipy[j] - Y[r, i]
                    alpha = (qpx * sy - qpy * sx) / denom
                    beta = (qpx * ry - qpy * rx) / denom
                    if (
                        alpha > -eps
                        and alpha < 1.0 + eps
                        and beta > -eps
                        and beta < 1.0 + eps
                    ):
                        anyhit = True
                        a_c = min(1.0, max(0.0, alpha))
                        b_c = min(1.0, max(0.0, beta))
                        if (
                            a_c < dtol
                            or a_c > 1.0 - dtol
                            or b_c < dtol
                            or b_c > 1.0 - dtol
                        ):
                            deg = True
                        if nh == cap:
                            cap = 2 * cap
                            nrow = np.empty(cap, np.int64)
                            nii = np.empty(cap, np.int64)
                            njj = np.empty(cap, np.int64)
                            na = np.empty(cap)
                            nb = np.empty(cap)
                            for q in range(nh):
                                nrow[q] = h_row[q]
                                nii[q] = h_i[q]
                                njj[q] = h_j[q]
                                na[q] = h_a[q]
                                nb[q] = h_b[q]
                            h_row = nrow
                            h_i = nii
                            h_j = njj
                            h_a = na
                            h_b = nb
                        h_row[nh] = r
                        h_i[nh] = i
                        h_j[nh] = j
                        h_a[nh] = a_c
                        h_b[nh] = b_c
                        nh += 1
        if deg:
            flags[r] = 2
            nh = start
        elif anyhit:
            flags[r] = 1
    return flags, h_row, h_i, h_j, h_a, h_b, nh


# Keep handles to the uncompiled bodies (the ``purepy`` force mode and the
# no-numba fallback exercise exactly these), then rebind the module globals
# to their jitted versions so the compiled drivers call compiled helpers.
_PURE_IMPLS = {
    "convex_rows": _convex_rows,
    "chain_rows": _chain_rows,
    "gh_scan": _gh_scan,
}

if NUMBA_AVAILABLE:  # pragma: no cover - exercised in the numba CI leg
    _jit = numba.njit(nogil=True, cache=True, fastmath=False)
    _reverse_ring = _jit(_reverse_ring)
    _clip_ring = _jit(_clip_ring)
    _clean_ring = _jit(_clean_ring)
    _ring_area = _jit(_ring_area)
    _convex_rows = _jit(_convex_rows)
    _chain_rows = _jit(_chain_rows)
    _gh_scan = _jit(_gh_scan)
    _JIT_IMPLS = {
        "convex_rows": _convex_rows,
        "chain_rows": _chain_rows,
        "gh_scan": _gh_scan,
    }
else:
    _JIT_IMPLS = None


# --------------------------------------------------------------------------- #
# Runtime accounting (observability: cache_stats()["kernel"])
# --------------------------------------------------------------------------- #
class _KernelRuntime:
    """Process-wide counters for compiled-kernel calls (thread-safe)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.kernels: dict[str, dict[str, float]] = {}
        self.nogil_passes = 0
        self.rows_clipped = 0

    def record(self, name: str, seconds: float, passes: int, rows: int) -> None:
        with self.lock:
            entry = self.kernels.get(name)
            if entry is None:
                # The first call pays JIT compilation (amortized across the
                # process by numba's on-disk cache); track it apart from the
                # warm steady state so the split is visible in stats.
                self.kernels[name] = {
                    "calls": 1,
                    "first_call_s": seconds,
                    "warm_s": 0.0,
                }
            else:
                entry["calls"] += 1
                entry["warm_s"] += seconds
            self.nogil_passes += passes
            self.rows_clipped += rows


_RUNTIME = _KernelRuntime()


def reset_kernel_runtime() -> None:
    """Clear the accumulated kernel call counters (tests, benchmarks)."""
    global _RUNTIME
    _RUNTIME = _KernelRuntime()


def kernel_runtime_stats(requested: str = "auto") -> dict:
    """Snapshot of backend resolution + compiled-kernel call counters."""
    backend = resolve_backend(requested)
    with _RUNTIME.lock:
        kernels = {
            name: {
                "calls": int(entry["calls"]),
                "first_call_s": round(float(entry["first_call_s"]), 6),
                "warm_s": round(float(entry["warm_s"]), 6),
            }
            for name, entry in _RUNTIME.kernels.items()
        }
        nogil_passes = _RUNTIME.nogil_passes
        rows_clipped = _RUNTIME.rows_clipped
    return {
        "backend": backend.name,
        "requested": backend.requested,
        "compiled": backend.use_compiled,
        "jit": backend.jitted,
        "numba_available": NUMBA_AVAILABLE,
        "fallback_reason": backend.fallback_reason,
        "nogil_passes": nogil_passes,
        "rows_clipped": rows_clipped,
        "kernels": kernels,
    }


# --------------------------------------------------------------------------- #
# Backend object + resolution
# --------------------------------------------------------------------------- #
def _pad_rows(
    parts: Sequence[tuple],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack parts into padded row arrays; layout identical to ``_pad_parts``."""
    counts = np.array([len(p[0]) for p in parts], dtype=np.int64)
    width = int(counts.max()) if len(counts) else 0
    X = np.zeros((len(parts), max(width, 1)))
    Y = np.zeros_like(X)
    for r, (xs, ys, _signed) in enumerate(parts):
        X[r, : len(xs)] = xs
        Y[r, : len(ys)] = ys
    signed = np.array([p[2] for p in parts])
    return X, Y, counts, signed


class KernelBackend:
    """A resolved clip-kernel backend (compiled row loops or NumPy passes).

    ``use_compiled`` is the routing switch the drivers in ``kernel.py``
    consult; ``jitted`` distinguishes real numba compilation from the
    pure-Python force mode that validates the same bodies without it.
    """

    __slots__ = ("name", "requested", "use_compiled", "jitted", "fallback_reason", "_impls")

    def __init__(
        self,
        name: str,
        requested: str,
        use_compiled: bool,
        jitted: bool,
        fallback_reason: str | None,
    ) -> None:
        self.name = name
        self.requested = requested
        self.use_compiled = use_compiled
        self.jitted = jitted
        self.fallback_reason = fallback_reason
        self._impls = (_JIT_IMPLS if jitted else _PURE_IMPLS) if use_compiled else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelBackend(name={self.name!r}, requested={self.requested!r}, "
            f"jitted={self.jitted}, fallback={self.fallback_reason!r})"
        )

    # -- driver entry points ------------------------------------------------ #
    def convex_rows(
        self,
        parts: Sequence[tuple],
        edge_arr: np.ndarray,
        seq_lens: np.ndarray,
        stats=None,
    ) -> list[tuple | None]:
        """Run the convex driver (shared or per-row edge sequences)."""
        if not parts:
            return []
        X, Y, counts, signed = _pad_rows(parts)
        return self._run("convex_rows", X, Y, counts, signed, edge_arr, seq_lens, stats)

    def chain_rows(
        self,
        parts: Sequence[tuple],
        edge_arr: np.ndarray,
        seq_lens: np.ndarray,
        stats=None,
    ) -> list[tuple | None]:
        """Run the half-plane chain driver (one ``clip_halfplane`` per pass)."""
        if not parts:
            return []
        X, Y, counts, signed = _pad_rows(parts)
        return self._run("chain_rows", X, Y, counts, signed, edge_arr, seq_lens, stats)

    def gh_scan(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        counts: np.ndarray,
        clip_ccw: np.ndarray,
    ) -> tuple[np.ndarray, list[list[tuple[int, int, float, float]] | None]]:
        """Greiner-Hormann hit scan; returns per-row flags + hit lists.

        ``flags[r]`` is 0 (no hit), 1 (clean hits in the returned list) or
        2 (degenerate: caller takes the scalar fallback).  Hit tuples are
        ``(subject_lane, clip_edge, alpha, beta)`` in scan order.
        """
        impl = self._impls["gh_scan"]
        started = time.perf_counter()
        flags, h_row, h_i, h_j, h_a, h_b, nh = impl(
            np.ascontiguousarray(X),
            np.ascontiguousarray(Y),
            np.ascontiguousarray(counts),
            np.ascontiguousarray(clip_ccw[:, 0]),
            np.ascontiguousarray(clip_ccw[:, 1]),
            EPSILON,
            _GH_DEGENERATE_TOL,
        )
        _RUNTIME.record(
            "gh_scan", time.perf_counter() - started, 1, int(X.shape[0])
        )
        hits: list[list[tuple[int, int, float, float]] | None] = [
            [] if flags[r] == 1 else None for r in range(len(flags))
        ]
        for q in range(nh):
            bucket = hits[int(h_row[q])]
            if bucket is not None:
                bucket.append(
                    (int(h_i[q]), int(h_j[q]), float(h_a[q]), float(h_b[q]))
                )
        return flags, hits

    def _run(self, name, X, Y, counts, signed, edge_arr, seq_lens, stats):
        impl = self._impls[name]
        started = time.perf_counter()
        out_xs, out_ys, out_off, out_signed, out_alive, row_passes, row_verts = impl(
            X,
            Y,
            counts,
            signed,
            np.ascontiguousarray(edge_arr, dtype=np.float64),
            np.ascontiguousarray(seq_lens, dtype=np.int64),
            EPSILON,
            MERGE_TOLERANCE_KM,
            MIN_SLIVER_AREA_KM2,
        )
        elapsed = time.perf_counter() - started
        passes = int(row_passes.max()) if len(row_passes) else 0
        rows = int(row_passes.sum())
        _RUNTIME.record(name, elapsed, passes, rows)
        if stats is not None:
            # Rows participate at consecutive pass indices starting at 0, so
            # the NumPy drivers' per-pass counters reconstruct exactly from
            # per-row participation: a pass ran while any row was still live.
            stats.clip_passes += passes
            stats.rows_clipped += rows
            stats.vertices_clipped += int(row_verts.sum())
        out: list[tuple | None] = []
        for r in range(len(out_alive)):
            if not out_alive[r]:
                out.append(None)
                continue
            lo = int(out_off[r])
            hi = int(out_off[r + 1])
            out.append((out_xs[lo:hi].copy(), out_ys[lo:hi].copy(), float(out_signed[r])))
        return out


_RESOLVED: dict[tuple[str, str], KernelBackend] = {}
_RESOLVE_LOCK = threading.Lock()


def resolve_backend(name: str = "auto") -> KernelBackend:
    """Map a ``SolverConfig.kernel_backend`` value to a concrete backend.

    ``"numpy"`` always selects the NumPy passes.  ``"compiled"`` selects the
    compiled row loops, falling back to NumPy (with ``fallback_reason`` set)
    when numba is not importable; ``"auto"`` does the same silently.  The
    ``OCTANT_KERNEL_FORCE`` environment variable overrides resolution for
    tests: ``numpy`` disables the backend, ``purepy`` runs the compiled code
    path with uncompiled kernel bodies.  Resolution is memoized; call
    :func:`reset_backends` after changing the environment.
    """
    force = os.environ.get(FORCE_ENV, "").strip().lower()
    key = (name, force)
    backend = _RESOLVED.get(key)
    if backend is not None:
        return backend
    with _RESOLVE_LOCK:
        backend = _RESOLVED.get(key)
        if backend is not None:
            return backend
        if force == "numpy":
            backend = KernelBackend(
                "numpy", name, False, False, f"forced by {FORCE_ENV}=numpy"
            )
        elif name == "numpy":
            backend = KernelBackend("numpy", name, False, False, None)
        elif name in ("compiled", "auto"):
            if force == "purepy":
                backend = KernelBackend(
                    "compiled", name, True, False, f"{FORCE_ENV}=purepy (uncompiled bodies)"
                )
            elif NUMBA_AVAILABLE:
                backend = KernelBackend("compiled", name, True, True, None)
            else:
                backend = KernelBackend(
                    "numpy", name, False, False, "numba unavailable"
                )
        else:
            raise ValueError(
                f"unknown kernel_backend {name!r}; expected 'auto', 'compiled' or 'numpy'"
            )
        _RESOLVED[key] = backend
        return backend


def reset_backends() -> None:
    """Drop memoized backend resolutions (the force env may have changed)."""
    with _RESOLVE_LOCK:
        _RESOLVED.clear()

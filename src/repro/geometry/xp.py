"""Array-API seam for the flat-buffer kernel (``xp`` namespace indirection).

The batched clip kernel in :mod:`repro.geometry.kernel` performs all of its
buffer work -- padding ragged piece lists into rectangular matrices, packed
coordinate gathers, bbox reductions -- through the ``xp`` namespace exported
here rather than through a direct ``numpy`` import.  Today ``xp`` *is*
numpy, so this module changes nothing about behavior or performance; what it
buys is a single switch point for an accelerator backend later:

* A CuPy (or other array-API compatible) backend only has to rebind the
  namespace returned by :func:`get_namespace` -- the buffer-op call sites in
  ``kernel.py`` are already written against the portable subset
  (``zeros``/``empty``/``where``/``cumsum``/``concatenate``/fancy gather)
  that every array-API library provides.
* The *compiled* CPU backend (:mod:`repro.geometry.kernel_compiled`) sits
  below this seam: it consumes the padded host buffers ``xp`` produced and
  never allocates through the namespace, so the two backends compose (pad on
  device, solve on whichever backend the config selects).

Keep this module dependency-free and trivially importable: ``kernel.py``
imports it at module load, before any configuration exists.
"""

from __future__ import annotations

import numpy as _numpy

__all__ = ["xp", "get_namespace"]

#: The active array namespace for kernel buffer ops.  Bound to numpy; a GPU
#: backend rebints this (module-level, process-wide) before building buffers.
xp = _numpy


def get_namespace():
    """Return the active array namespace (numpy today; CuPy-shaped later)."""
    return xp

"""Cubic Bezier curves and closed Bezier paths.

The Octant paper represents estimated location regions as areas *bounded by
Bezier curves*: the representation is compact (a disk needs only four cubic
segments), supports non-convex and disconnected regions, and boolean
operations can be carried out by operating on segment control points.

This module provides:

* :class:`CubicBezier` -- a single cubic segment with evaluation, splitting
  (de Casteljau), bounding boxes and adaptive flattening to a polyline.
* :class:`BezierPath` -- a closed loop of cubic segments, convertible to and
  from polygons, with affine transforms and area/containment queries.

The polygon boolean machinery in :mod:`repro.geometry.clipping` operates on
flattened polylines; :class:`BezierPath` is the exchange format that keeps the
boundary representation compact, exactly as in the paper, while flattening
with a controlled tolerance for the numeric operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from .bbox import BoundingBox
from .point import Point2D

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .polygon import Polygon

__all__ = ["CubicBezier", "BezierPath", "KAPPA"]

#: The magic constant for approximating a quarter circle with a cubic Bezier:
#: control points at distance ``KAPPA * radius`` along the tangents give a
#: maximum radial error of about 0.02 % of the radius.
KAPPA = 4.0 * (math.sqrt(2.0) - 1.0) / 3.0

#: Default flattening tolerance (km).  Flattened polylines deviate from the
#: true curve by at most roughly this distance.
DEFAULT_FLATNESS_KM = 1.0


@dataclass(frozen=True, slots=True)
class CubicBezier:
    """A cubic Bezier segment defined by four control points."""

    p0: Point2D
    p1: Point2D
    p2: Point2D
    p3: Point2D

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def point_at(self, t: float) -> Point2D:
        """Evaluate the curve at parameter ``t`` in ``[0, 1]``."""
        mt = 1.0 - t
        a = mt * mt * mt
        b = 3.0 * mt * mt * t
        c = 3.0 * mt * t * t
        d = t * t * t
        return Point2D(
            a * self.p0.x + b * self.p1.x + c * self.p2.x + d * self.p3.x,
            a * self.p0.y + b * self.p1.y + c * self.p2.y + d * self.p3.y,
        )

    def derivative_at(self, t: float) -> Point2D:
        """First derivative (tangent vector) at parameter ``t``."""
        mt = 1.0 - t
        d0 = (self.p1 - self.p0) * (3.0 * mt * mt)
        d1 = (self.p2 - self.p1) * (6.0 * mt * t)
        d2 = (self.p3 - self.p2) * (3.0 * t * t)
        return d0 + d1 + d2

    # ------------------------------------------------------------------ #
    # Subdivision and flattening
    # ------------------------------------------------------------------ #
    def split(self, t: float = 0.5) -> tuple["CubicBezier", "CubicBezier"]:
        """Split into two curves at parameter ``t`` using de Casteljau."""
        p01 = self.p0 * (1 - t) + self.p1 * t
        p12 = self.p1 * (1 - t) + self.p2 * t
        p23 = self.p2 * (1 - t) + self.p3 * t
        p012 = p01 * (1 - t) + p12 * t
        p123 = p12 * (1 - t) + p23 * t
        mid = p012 * (1 - t) + p123 * t
        return (
            CubicBezier(self.p0, p01, p012, mid),
            CubicBezier(mid, p123, p23, self.p3),
        )

    def flatness(self) -> float:
        """Upper bound on the deviation of the curve from its chord."""
        # Distance of the control points from the chord p0-p3 bounds the
        # deviation of the whole curve (convex-hull property of Beziers).
        d1 = _point_line_distance(self.p1, self.p0, self.p3)
        d2 = _point_line_distance(self.p2, self.p0, self.p3)
        return max(d1, d2)

    def flatten(self, tolerance: float = DEFAULT_FLATNESS_KM) -> list[Point2D]:
        """Approximate the curve by a polyline within ``tolerance``.

        The returned list includes both endpoints.
        """
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance!r}")
        points: list[Point2D] = [self.p0]
        self._flatten_into(points, tolerance, depth=0)
        points.append(self.p3)
        return points

    def _flatten_into(self, out: list[Point2D], tolerance: float, depth: int) -> None:
        if depth >= 24 or self.flatness() <= tolerance:
            return
        left, right = self.split(0.5)
        left._flatten_into(out, tolerance, depth + 1)
        out.append(left.p3)
        right._flatten_into(out, tolerance, depth + 1)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def bounding_box(self) -> BoundingBox:
        """Bounding box of the control polygon (contains the curve)."""
        return BoundingBox.from_points([self.p0, self.p1, self.p2, self.p3])

    def arc_length(self, samples: int = 32) -> float:
        """Approximate arc length by uniform parameter sampling."""
        if samples < 1:
            raise ValueError("samples must be >= 1")
        total = 0.0
        prev = self.p0
        for i in range(1, samples + 1):
            cur = self.point_at(i / samples)
            total += prev.distance_to(cur)
            prev = cur
        return total

    def reversed(self) -> "CubicBezier":
        """The same curve traversed in the opposite direction."""
        return CubicBezier(self.p3, self.p2, self.p1, self.p0)

    def transformed(self, fn: Callable[[Point2D], Point2D]) -> "CubicBezier":
        """Apply a point-wise transform to all control points."""
        return CubicBezier(fn(self.p0), fn(self.p1), fn(self.p2), fn(self.p3))

    @classmethod
    def from_line(cls, a: Point2D, b: Point2D) -> "CubicBezier":
        """Degree-elevate a straight segment to a cubic Bezier."""
        return cls(a, a * (2.0 / 3.0) + b * (1.0 / 3.0), a * (1.0 / 3.0) + b * (2.0 / 3.0), b)


def _point_line_distance(p: Point2D, a: Point2D, b: Point2D) -> float:
    """Distance from ``p`` to the infinite line through ``a`` and ``b``."""
    ab = b - a
    length = ab.norm()
    if length < 1e-12:
        return p.distance_to(a)
    return abs((p.x - a.x) * ab.y - (p.y - a.y) * ab.x) / length


class BezierPath:
    """A closed path made of cubic Bezier segments.

    The path is the boundary of a region piece; segments are expected to be
    connected end-to-end (segment ``i`` ends where segment ``i+1`` starts) and
    the last segment closes back to the first segment's start point.
    """

    __slots__ = ("_segments",)

    def __init__(self, segments: Sequence[CubicBezier]):
        segs = list(segments)
        if len(segs) < 2:
            raise ValueError("a closed BezierPath needs at least two segments")
        for i, seg in enumerate(segs):
            nxt = segs[(i + 1) % len(segs)]
            if not seg.p3.almost_equal(nxt.p0, tol=1e-6):
                raise ValueError(
                    f"BezierPath segments are not connected at index {i}: "
                    f"{seg.p3} != {nxt.p0}"
                )
        self._segments = segs

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def segments(self) -> list[CubicBezier]:
        """The cubic segments forming the closed boundary."""
        return list(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterable[CubicBezier]:
        return iter(self._segments)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, points: Sequence[Point2D]) -> "BezierPath":
        """Build a path of straight (degree-elevated) segments through points."""
        pts = list(points)
        if len(pts) < 3:
            raise ValueError("need at least three points to form a closed path")
        segments = [
            CubicBezier.from_line(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts))
        ]
        return cls(segments)

    @classmethod
    def circle(cls, center: Point2D, radius: float) -> "BezierPath":
        """Closed path approximating a circle with four cubic segments."""
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius!r}")
        c = center
        r = radius
        k = KAPPA * r
        east = Point2D(c.x + r, c.y)
        north = Point2D(c.x, c.y + r)
        west = Point2D(c.x - r, c.y)
        south = Point2D(c.x, c.y - r)
        segments = [
            CubicBezier(east, Point2D(c.x + r, c.y + k), Point2D(c.x + k, c.y + r), north),
            CubicBezier(north, Point2D(c.x - k, c.y + r), Point2D(c.x - r, c.y + k), west),
            CubicBezier(west, Point2D(c.x - r, c.y - k), Point2D(c.x - k, c.y - r), south),
            CubicBezier(south, Point2D(c.x + k, c.y - r), Point2D(c.x + r, c.y - k), east),
        ]
        return cls(segments)

    # ------------------------------------------------------------------ #
    # Conversion and transforms
    # ------------------------------------------------------------------ #
    def flatten(self, tolerance: float = DEFAULT_FLATNESS_KM) -> list[Point2D]:
        """Flatten the closed path to a polygon vertex list (no repeat of start)."""
        points: list[Point2D] = []
        for seg in self._segments:
            flat = seg.flatten(tolerance)
            # Skip the last point of each segment: it is the first point of
            # the next segment, and the final one closes the loop.
            points.extend(flat[:-1])
        return points

    def to_polygon(self, tolerance: float = DEFAULT_FLATNESS_KM) -> "Polygon":
        """Flatten into a :class:`~repro.geometry.polygon.Polygon`."""
        from .polygon import Polygon

        return Polygon(self.flatten(tolerance))

    def transformed(self, fn: Callable[[Point2D], Point2D]) -> "BezierPath":
        """Apply a point-wise transform to every control point.

        This is the operation the paper highlights: because regions are
        bounded by Bezier curves, affine manipulations only need to touch the
        segment endpoints and control points.
        """
        return BezierPath([seg.transformed(fn) for seg in self._segments])

    def translated(self, offset: Point2D) -> "BezierPath":
        """Path rigidly translated by ``offset``."""
        return self.transformed(lambda p: p + offset)

    def scaled(self, factor: float, origin: Point2D | None = None) -> "BezierPath":
        """Path scaled by ``factor`` about ``origin`` (default: the origin)."""
        o = origin if origin is not None else Point2D(0.0, 0.0)
        return self.transformed(lambda p: o + (p - o) * factor)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def bounding_box(self) -> BoundingBox:
        """Bounding box of all control points (contains the region)."""
        box = self._segments[0].bounding_box()
        for seg in self._segments[1:]:
            box = box.union(seg.bounding_box())
        return box

    def area(self, tolerance: float = DEFAULT_FLATNESS_KM) -> float:
        """Unsigned enclosed area, computed on the flattened boundary."""
        return abs(self.to_polygon(tolerance).signed_area())

    def contains_point(self, p: Point2D, tolerance: float = DEFAULT_FLATNESS_KM) -> bool:
        """Point-in-region test on the flattened boundary."""
        return self.to_polygon(tolerance).contains_point(p)

    def perimeter(self) -> float:
        """Approximate boundary length."""
        return sum(seg.arc_length() for seg in self._segments)

"""Simple planar polygons.

A :class:`Polygon` is a simple (non-self-intersecting) closed polygon given by
its vertex list.  Polygons are the workhorse representation produced by
flattening Bezier-bounded region boundaries; the boolean algebra over them
lives in :mod:`repro.geometry.clipping` and the weighted multi-piece region
abstraction in :mod:`repro.geometry.region`.

Interior regions with holes (for example an annulus: the positive constraint
disk minus the negative constraint disk of the same landmark) are represented
as a single simple polygon using the classic *keyhole* construction
(:meth:`Polygon.with_hole`), which keeps every downstream algorithm working on
simple polygons only.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from .bbox import BoundingBox
from .point import EPSILON as _EPSILON
from .point import Point2D, cross

__all__ = ["Polygon"]

#: Vertices closer together than this (km) are merged during cleaning.
MERGE_TOLERANCE_KM = 1e-6


class Polygon:
    """A simple closed polygon defined by an ordered vertex list.

    Vertices are stored without repeating the first vertex at the end.  The
    orientation (clockwise vs counter-clockwise) is preserved as given;
    :meth:`ensure_ccw` returns a counter-clockwise copy when a canonical
    orientation is needed.
    """

    __slots__ = ("_vertices", "_xy", "_bbox", "_signed_area", "_is_convex")

    def __init__(self, vertices: Sequence[Point2D] | Iterable[Point2D]):
        verts = _clean_vertices(list(vertices))
        if len(verts) < 3:
            raise ValueError(
                f"a polygon requires at least 3 distinct vertices, got {len(verts)}"
            )
        self._vertices = verts
        # Raw coordinate tuples for the allocation-free hot loops below.
        # Polygons are immutable, so derived values (bounding box, signed
        # area) are computed once and cached.
        self._xy: tuple[tuple[float, float], ...] = tuple(
            (v.x, v.y) for v in verts
        )
        self._bbox: BoundingBox | None = None
        self._signed_area: float | None = None
        self._is_convex: bool | None = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> list[Point2D]:
        """The vertex list (copy) in boundary order."""
        return list(self._vertices)

    @property
    def coords(self) -> tuple[tuple[float, float], ...]:
        """Vertex coordinates as raw ``(x, y)`` tuples, in boundary order.

        Used by the clipping hot paths to avoid :class:`Point2D` boxing;
        the tuple is the polygon's own cache, so callers must not mutate it.
        """
        return self._xy

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Polygon({len(self._vertices)} vertices, area={self.area():.1f})"

    def edges(self) -> list[tuple[Point2D, Point2D]]:
        """The boundary edges as ``(start, end)`` pairs, in order."""
        n = len(self._vertices)
        return [(self._vertices[i], self._vertices[(i + 1) % n]) for i in range(n)]

    # ------------------------------------------------------------------ #
    # Basic metrics
    # ------------------------------------------------------------------ #
    def signed_area(self) -> float:
        """Signed area via the shoelace formula (positive when CCW)."""
        if self._signed_area is None:
            total = 0.0
            xy = self._xy
            n = len(xy)
            for i in range(n):
                ax, ay = xy[i]
                bx, by = xy[(i + 1) % n]
                total += ax * by - bx * ay
            self._signed_area = total / 2.0
        return self._signed_area

    def area(self) -> float:
        """Unsigned enclosed area."""
        return abs(self.signed_area())

    def area_km2(self) -> float:
        """Enclosed area in square kilometres.

        Planar coordinates are produced by the kilometre-scaled projections in
        :mod:`repro.geometry.projection`, so the shoelace area *is* the area
        in km^2; this alias exists so callers filtering slivers by physical
        size use one consistently-named unit (see
        :func:`repro.core.solver.strict_intersection`).
        """
        return self.area()

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(a.distance_to(b) for a, b in self.edges())

    def centroid(self) -> Point2D:
        """Area centroid of the polygon.

        Falls back to the vertex mean for (numerically) degenerate polygons
        whose area is close to zero.
        """
        a2 = 0.0
        cx = 0.0
        cy = 0.0
        n = len(self._vertices)
        for i in range(n):
            p = self._vertices[i]
            q = self._vertices[(i + 1) % n]
            w = p.x * q.y - q.x * p.y
            a2 += w
            cx += (p.x + q.x) * w
            cy += (p.y + q.y) * w
        if abs(a2) < 1e-12:
            sx = sum(p.x for p in self._vertices)
            sy = sum(p.y for p in self._vertices)
            return Point2D(sx / n, sy / n)
        return Point2D(cx / (3.0 * a2), cy / (3.0 * a2))

    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of the vertices (cached)."""
        if self._bbox is None:
            self._bbox = BoundingBox.from_points(self._vertices)
        return self._bbox

    # ------------------------------------------------------------------ #
    # Orientation
    # ------------------------------------------------------------------ #
    def is_ccw(self) -> bool:
        """True when the boundary is counter-clockwise oriented."""
        return self.signed_area() > 0.0

    def reversed(self) -> "Polygon":
        """The same polygon with reversed vertex order."""
        return Polygon(list(reversed(self._vertices)))

    def ensure_ccw(self) -> "Polygon":
        """This polygon if already CCW, otherwise the reversed copy."""
        return self if self.is_ccw() else self.reversed()

    def is_convex(self) -> bool:
        """True when every interior angle turns the same way (cached)."""
        if self._is_convex is None:
            self._is_convex = self._compute_is_convex()
        return self._is_convex

    def _compute_is_convex(self) -> bool:
        xy = self._xy
        n = len(xy)
        sign = 0
        for i in range(n):
            ax, ay = xy[i]
            bx, by = xy[(i + 1) % n]
            cx, cy = xy[(i + 2) % n]
            z = (bx - ax) * (cy - by) - (by - ay) * (cx - bx)
            if abs(z) < 1e-12:
                continue
            s = 1 if z > 0 else -1
            if sign == 0:
                sign = s
            elif s != sign:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Containment and distance
    # ------------------------------------------------------------------ #
    def contains_point(self, p: Point2D, include_boundary: bool = True) -> bool:
        """Point-in-polygon test using the even-odd (ray casting) rule.

        The even-odd rule makes keyholed polygons (see :meth:`with_hole`)
        behave like true regions-with-holes for containment purposes.
        """
        box = self.bounding_box()
        x, y = p.x, p.y
        tol = MERGE_TOLERANCE_KM
        if not (
            box.min_x - tol <= x <= box.max_x + tol
            and box.min_y - tol <= y <= box.max_y + tol
        ):
            return False
        if self.point_on_boundary(p):
            return include_boundary
        inside = False
        xy = self._xy
        n = len(xy)
        j = n - 1
        for i in range(n):
            xi, yi = xy[i]
            xj, yj = xy[j]
            if (yi > y) != (yj > y):
                x_int = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_int:
                    inside = not inside
            j = i
        return inside

    def point_on_boundary(self, p: Point2D, tol: float = MERGE_TOLERANCE_KM) -> bool:
        """True when ``p`` lies on (within ``tol`` of) the polygon boundary."""
        return self._boundary_distance(p.x, p.y, stop_at=tol) <= tol

    def distance_to_point(self, p: Point2D) -> float:
        """Distance from ``p`` to the region: 0 inside, else boundary distance."""
        if self.contains_point(p):
            return 0.0
        return self._boundary_distance(p.x, p.y)

    def _boundary_distance(self, px: float, py: float, stop_at: float = -1.0) -> float:
        """Minimum distance from ``(px, py)`` to any boundary segment.

        Identical arithmetic to :func:`repro.geometry.point.point_segment_distance`
        applied per edge, unrolled onto raw floats to keep this hot path free
        of :class:`Point2D` allocations.  When ``stop_at`` is non-negative the
        scan returns early once a distance at or below it is found (the
        boundary-membership predicate does not need the exact minimum).
        """
        hypot = math.hypot
        eps2 = _EPSILON * _EPSILON
        xy = self._xy
        n = len(xy)
        best = math.inf
        ax, ay = xy[n - 1]
        for i in range(n):
            bx, by = xy[i]
            abx = bx - ax
            aby = by - ay
            ab_len2 = abx * abx + aby * aby
            if ab_len2 < eps2:
                d = hypot(px - ax, py - ay)
            else:
                t = ((px - ax) * abx + (py - ay) * aby) / ab_len2
                t = max(0.0, min(1.0, t))
                d = hypot(px - (ax + abx * t), py - (ay + aby * t))
            if d < best:
                best = d
                if 0.0 <= stop_at and best <= stop_at:
                    return best
            ax, ay = bx, by
        return best

    def max_distance_to_point(self, p: Point2D) -> float:
        """Largest distance from ``p`` to any vertex of the polygon."""
        return max(p.distance_to(v) for v in self._vertices)

    def contains_polygon(self, other: "Polygon") -> bool:
        """True when every vertex of ``other`` lies inside this polygon.

        This is an approximation valid when the boundaries do not cross,
        which is exactly the situation in which the clipping code needs it.
        """
        return all(self.contains_point(v) for v in other.vertices)

    # ------------------------------------------------------------------ #
    # Transformation and construction helpers
    # ------------------------------------------------------------------ #
    def transformed(self, fn: Callable[[Point2D], Point2D]) -> "Polygon":
        """Polygon with every vertex mapped through ``fn``."""
        return Polygon([fn(v) for v in self._vertices])

    def translated(self, offset: Point2D) -> "Polygon":
        """Polygon rigidly translated by ``offset``."""
        return self.transformed(lambda v: v + offset)

    def scaled(self, factor: float, origin: Point2D | None = None) -> "Polygon":
        """Polygon scaled by ``factor`` about ``origin`` (default: centroid)."""
        o = origin if origin is not None else self.centroid()
        return self.transformed(lambda v: o + (v - o) * factor)

    def simplified(self, tolerance: float) -> "Polygon":
        """Polygon with nearly-collinear vertices removed (Douglas-Peucker-lite).

        Repeatedly drops vertices whose removal displaces the boundary by less
        than ``tolerance``.  Never reduces below a triangle.
        """
        verts = list(self._vertices)
        changed = True
        while changed and len(verts) > 3:
            changed = False
            kept: list[Point2D] = []
            n = len(verts)
            i = 0
            while i < n:
                a = verts[(i - 1) % n]
                b = verts[i]
                c = verts[(i + 1) % n]
                from .point import point_segment_distance

                if len(verts) - (1 if changed else 0) > 3 and point_segment_distance(b, a, c) < tolerance:
                    changed = True
                    i += 1
                    continue
                kept.append(b)
                i += 1
            if len(kept) >= 3:
                verts = kept
            else:
                break
        return Polygon(verts)

    @classmethod
    def regular(cls, center: Point2D, radius: float, sides: int) -> "Polygon":
        """Regular ``sides``-gon inscribed in a circle of ``radius``."""
        if sides < 3:
            raise ValueError("a polygon needs at least 3 sides")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius!r}")
        verts = [
            Point2D(
                center.x + radius * math.cos(2.0 * math.pi * i / sides),
                center.y + radius * math.sin(2.0 * math.pi * i / sides),
            )
            for i in range(sides)
        ]
        return cls(verts)

    @classmethod
    def rectangle(cls, box: BoundingBox) -> "Polygon":
        """Axis-aligned rectangle polygon for a bounding box."""
        return cls(box.corners())

    def with_hole(self, hole: "Polygon") -> "Polygon":
        """Return a keyholed simple polygon equal to this polygon minus ``hole``.

        The hole (which must lie strictly inside this polygon) is connected to
        the outer boundary with an infinitesimally thin slit: the outer ring
        is traversed in its own orientation, then a bridge jumps to the hole,
        the hole is traversed in the *opposite* orientation, and the bridge
        returns.  The result is a single simple polygon whose even-odd
        containment and shoelace area match the region-with-hole.
        """
        outer = self.ensure_ccw()
        inner = hole.ensure_ccw().reversed()  # hole traversed clockwise

        outer_verts = outer.vertices
        inner_verts = inner.vertices

        # Pick the bridge between the closest (outer vertex, inner vertex) pair
        # to keep the slit short and avoid crossing the hole.  Compared on
        # squared distance (same minimizer, no sqrt per pair).
        best = (0, 0)
        best_dist2 = math.inf
        inner_xy = [(v.x, v.y) for v in inner_verts]
        for i, ov in enumerate(outer_verts):
            ox, oy = ov.x, ov.y
            for j, (ix, iy) in enumerate(inner_xy):
                dx = ox - ix
                dy = oy - iy
                d2 = dx * dx + dy * dy
                if d2 < best_dist2:
                    best_dist2 = d2
                    best = (i, j)
        oi, ij = best
        outer_rot = outer_verts[oi:] + outer_verts[:oi]
        inner_rot = inner_verts[ij:] + inner_verts[:ij]
        # outer loop ... bridge out ... inner loop ... bridge back.
        combined = outer_rot + [outer_rot[0]] + inner_rot + [inner_rot[0]]
        return Polygon(combined)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_interior(self, spacing: float) -> list[Point2D]:
        """Grid sample of interior points at roughly ``spacing`` km apart.

        Always returns at least one point (the centroid, or the first vertex
        if the centroid falls outside a non-convex shape).
        """
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing!r}")
        box = self.bounding_box()
        points: list[Point2D] = []
        y = box.min_y + spacing / 2.0
        while y <= box.max_y:
            x = box.min_x + spacing / 2.0
            while x <= box.max_x:
                p = Point2D(x, y)
                if self.contains_point(p):
                    points.append(p)
                x += spacing
            y += spacing
        if not points:
            c = self.centroid()
            points.append(c if self.contains_point(c) else self._vertices[0])
        return points


def _clean_vertices(vertices: list[Point2D]) -> list[Point2D]:
    """Drop consecutive (nearly) duplicate vertices, including wrap-around."""
    if not vertices:
        return []
    tol = MERGE_TOLERANCE_KM
    cleaned: list[Point2D] = [vertices[0]]
    last = vertices[0]
    for v in vertices[1:]:
        if not (abs(v.x - last.x) <= tol and abs(v.y - last.y) <= tol):
            cleaned.append(v)
            last = v
    first = cleaned[0]
    while len(cleaned) > 1 and (
        abs(cleaned[-1].x - first.x) <= tol and abs(cleaned[-1].y - first.y) <= tol
    ):
        cleaned.pop()
    return cleaned

"""Weighted, possibly disconnected location regions.

The output of an Octant localization -- and the intermediate state of the
solver -- is a :class:`Region`: a set of planar polygon pieces, each carrying
a weight that captures how strongly the constraint system believes the target
lies in that piece.  Regions may be non-convex and disconnected, exactly the
generality the paper obtains from its Bezier-bounded representation.

A region is tied to the projection it was built under so that its pieces can
be mapped back to geographic coordinates (for the final point estimate, for
containment checks against the target's true position, and for reporting
region sizes in square miles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from .bbox import BoundingBox
from .clipping import intersect_polygons, subtract_polygons, union_polygons
from .point import Point2D
from .polygon import Polygon
from .projection import Projection
from .sphere import GeoPoint, km_to_miles

__all__ = ["RegionPiece", "Region"]


@dataclass(frozen=True)
class RegionPiece:
    """One connected piece of a region, with its accumulated weight."""

    polygon: Polygon
    weight: float = 1.0

    def area_km2(self) -> float:
        """Area of the piece in square kilometres."""
        return self.polygon.area_km2()

    def weighted_area(self) -> float:
        """Area multiplied by the piece weight."""
        return self.weight * self.polygon.area_km2()

    def with_weight(self, weight: float) -> "RegionPiece":
        """The same polygon with a different weight."""
        return RegionPiece(self.polygon, weight)


class Region:
    """A weighted union of polygon pieces in a shared projected plane."""

    __slots__ = ("_pieces", "_projection")

    def __init__(
        self,
        pieces: Sequence[RegionPiece] | Iterable[RegionPiece],
        projection: Projection | None = None,
    ):
        self._pieces = [p for p in pieces if p.polygon.area() > 0.0]
        self._projection = projection

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, projection: Projection | None = None) -> "Region":
        """A region with no pieces."""
        return cls([], projection)

    @classmethod
    def from_polygon(
        cls,
        polygon: Polygon,
        projection: Projection | None = None,
        weight: float = 1.0,
    ) -> "Region":
        """A region consisting of a single polygon piece."""
        return cls([RegionPiece(polygon, weight)], projection)

    @classmethod
    def from_polygons(
        cls,
        polygons: Iterable[Polygon],
        projection: Projection | None = None,
        weight: float = 1.0,
    ) -> "Region":
        """A region made of several pieces sharing one weight."""
        return cls([RegionPiece(p, weight) for p in polygons], projection)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def pieces(self) -> list[RegionPiece]:
        """The weighted pieces (copy)."""
        return list(self._pieces)

    @property
    def projection(self) -> Projection | None:
        """The projection the planar coordinates are expressed in."""
        return self._projection

    def __len__(self) -> int:
        return len(self._pieces)

    def __iter__(self) -> Iterator[RegionPiece]:
        return iter(self._pieces)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Region({len(self._pieces)} pieces, area={self.area_km2():.1f} km^2)"

    def is_empty(self) -> bool:
        """True when the region contains no area."""
        return not self._pieces or self.area_km2() <= 0.0

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def area_km2(self) -> float:
        """Total area in square kilometres (pieces assumed non-overlapping)."""
        return sum(p.area_km2() for p in self._pieces)

    def area_square_miles(self) -> float:
        """Total area in square statute miles."""
        return self.area_km2() * (km_to_miles(1.0) ** 2)

    def max_weight(self) -> float:
        """Largest piece weight, or 0 for an empty region."""
        return max((p.weight for p in self._pieces), default=0.0)

    def bounding_box(self) -> BoundingBox | None:
        """Bounding box of all pieces, or ``None`` for an empty region."""
        if not self._pieces:
            return None
        box = self._pieces[0].polygon.bounding_box()
        for piece in self._pieces[1:]:
            box = box.union(piece.polygon.bounding_box())
        return box

    # ------------------------------------------------------------------ #
    # Point estimates and containment
    # ------------------------------------------------------------------ #
    def weighted_centroid(self) -> Point2D | None:
        """Weight-and-area weighted centroid of all pieces (planar)."""
        if not self._pieces:
            return None
        total = 0.0
        sx = sy = 0.0
        for piece in self._pieces:
            w = piece.weighted_area()
            c = piece.polygon.centroid()
            sx += w * c.x
            sy += w * c.y
            total += w
        if total <= 0.0:
            return None
        return Point2D(sx / total, sy / total)

    def representative_point(self) -> Point2D | None:
        """A planar point guaranteed to lie inside the region.

        The point estimate is anchored to the *heaviest* piece -- the area
        where the most constraint weight accumulated -- so that including
        lower-weight surrounding pieces in the final region (to reach the
        configured size threshold) widens the region without dragging the
        point estimate away from the strongest evidence.  Falls back to the
        overall weighted centroid, then to an interior sample, for degenerate
        shapes.
        """
        best = self.heaviest_piece()
        if best is None:
            return None
        c = best.polygon.centroid()
        if best.polygon.contains_point(c):
            return c
        centroid = self.weighted_centroid()
        if centroid is not None and self.contains_planar(centroid):
            return centroid
        interior = best.polygon.sample_interior(
            spacing=max(1.0, math.sqrt(best.polygon.area()) / 4.0)
        )
        return interior[0]

    def point_estimate(self) -> GeoPoint | None:
        """Geographic point estimate (requires the region to carry a projection)."""
        planar = self.representative_point()
        if planar is None:
            return None
        if self._projection is None:
            raise ValueError("region has no projection; cannot produce a GeoPoint")
        return self._projection.inverse(planar)

    def heaviest_piece(self) -> RegionPiece | None:
        """The piece with the largest weight (ties broken by area)."""
        if not self._pieces:
            return None
        return max(self._pieces, key=lambda p: (p.weight, p.area_km2()))

    def contains_planar(self, point: Point2D) -> bool:
        """True when a planar point lies inside any piece."""
        return any(p.polygon.contains_point(point) for p in self._pieces)

    def contains_geopoint(self, point: GeoPoint) -> bool:
        """True when a geographic point lies inside the region."""
        if self._projection is None:
            raise ValueError("region has no projection; cannot test a GeoPoint")
        return self.contains_planar(self._projection.forward(point))

    def distance_to_geopoint_km(self, point: GeoPoint) -> float:
        """Planar distance (km) from a geographic point to the region (0 if inside)."""
        if self._projection is None:
            raise ValueError("region has no projection; cannot test a GeoPoint")
        planar = self._projection.forward(point)
        if not self._pieces:
            return math.inf
        return min(p.polygon.distance_to_point(planar) for p in self._pieces)

    # ------------------------------------------------------------------ #
    # Boolean algebra
    # ------------------------------------------------------------------ #
    def intersect_polygon(self, polygon: Polygon, weight_increment: float = 0.0) -> "Region":
        """Intersect every piece with ``polygon``; weights gain ``weight_increment``."""
        pieces: list[RegionPiece] = []
        for piece in self._pieces:
            for poly in intersect_polygons(piece.polygon, polygon):
                pieces.append(RegionPiece(poly, piece.weight + weight_increment))
        return Region(pieces, self._projection)

    def subtract_polygon(self, polygon: Polygon) -> "Region":
        """Remove ``polygon`` from every piece, keeping piece weights."""
        pieces: list[RegionPiece] = []
        for piece in self._pieces:
            for poly in subtract_polygons(piece.polygon, polygon):
                pieces.append(RegionPiece(poly, piece.weight))
        return Region(pieces, self._projection)

    def union_with(self, other: "Region") -> "Region":
        """Union of two regions.

        Pieces are concatenated; overlapping pieces from the two operands are
        merged pairwise when they actually intersect, keeping the larger of
        the two weights for the merged piece (the paper unions the weighted
        pieces sorted by weight, so the stronger belief wins).
        """
        if not self._pieces:
            return Region(other.pieces, self._projection or other.projection)
        if not other.pieces:
            return Region(self._pieces, self._projection)
        merged: list[RegionPiece] = list(self._pieces)
        for addition in other.pieces:
            overlapping_idx = [
                i
                for i, existing in enumerate(merged)
                if existing.polygon.bounding_box().intersects(addition.polygon.bounding_box())
                and intersect_polygons(existing.polygon, addition.polygon)
            ]
            if not overlapping_idx:
                merged.append(addition)
                continue
            # Merge the addition with the first overlapping piece.
            i = overlapping_idx[0]
            existing = merged[i]
            unioned = union_polygons(existing.polygon, addition.polygon)
            weight = max(existing.weight, addition.weight)
            replacement = [RegionPiece(poly, weight) for poly in unioned]
            merged = merged[:i] + replacement + merged[i + 1 :]
        return Region(merged, self._projection or other.projection)

    def filter_by_weight(self, min_weight: float) -> "Region":
        """Keep only pieces whose weight is at least ``min_weight``."""
        return Region(
            [p for p in self._pieces if p.weight >= min_weight], self._projection
        )

    def top_pieces(self, count: int) -> "Region":
        """Keep the ``count`` heaviest pieces."""
        if count <= 0:
            return Region.empty(self._projection)
        ranked = sorted(self._pieces, key=lambda p: (p.weight, p.area_km2()), reverse=True)
        return Region(ranked[:count], self._projection)

    def transformed(self, fn: Callable[[Point2D], Point2D]) -> "Region":
        """Region with every piece polygon transformed point-wise."""
        return Region(
            [RegionPiece(p.polygon.transformed(fn), p.weight) for p in self._pieces],
            self._projection,
        )

    def with_projection(self, projection: Projection) -> "Region":
        """The same planar pieces tagged with a (new) projection."""
        return Region(self._pieces, projection)

    # ------------------------------------------------------------------ #
    # Sampling / export
    # ------------------------------------------------------------------ #
    def sample_geopoints(self, spacing_km: float) -> list[GeoPoint]:
        """Geographic grid sample of the region interior."""
        if self._projection is None:
            raise ValueError("region has no projection; cannot sample GeoPoints")
        points: list[GeoPoint] = []
        for piece in self._pieces:
            for planar in piece.polygon.sample_interior(spacing_km):
                points.append(self._projection.inverse(planar))
        return points

    def boundary_geopoints(self) -> list[list[GeoPoint]]:
        """Boundary rings of every piece in geographic coordinates."""
        if self._projection is None:
            raise ValueError("region has no projection; cannot export GeoPoints")
        return [
            self._projection.inverse_many(piece.polygon.vertices) for piece in self._pieces
        ]

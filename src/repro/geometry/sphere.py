"""Spherical geometry primitives used throughout Octant.

Octant anchors its constraint system to the physical globe: landmarks and
targets live at (latitude, longitude) coordinates, latency measurements are
converted into great-circle distance bounds, and the final location estimate
is a region on the Earth's surface.  This module provides the small set of
spherical operations everything else is built on:

* :class:`GeoPoint` -- an immutable latitude/longitude pair.
* :func:`haversine_km` / :meth:`GeoPoint.distance_km` -- great-circle distance.
* :func:`destination_point` -- travel a distance along an initial bearing.
* Physical constants: Earth radius, speed of light in fiber, and the
  conversion factors used by the paper (miles, the 2/3-c propagation bound).

All distances are in kilometres unless a function name says otherwise; the
paper reports errors in miles, so :data:`KM_PER_MILE` and helpers are provided
for the evaluation harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "EARTH_RADIUS_KM",
    "EARTH_CIRCUMFERENCE_KM",
    "KM_PER_MILE",
    "MILES_PER_KM",
    "SPEED_OF_LIGHT_KM_PER_MS",
    "FIBER_SPEED_KM_PER_MS",
    "GeoPoint",
    "haversine_km",
    "haversine_miles",
    "km_to_miles",
    "miles_to_km",
    "rtt_ms_to_max_distance_km",
    "distance_km_to_min_rtt_ms",
    "initial_bearing_deg",
    "destination_point",
    "destination_arrays",
    "geographic_midpoint",
    "normalize_longitude",
    "normalize_latitude",
]

#: Mean Earth radius (km), the value used for all great-circle computations.
EARTH_RADIUS_KM = 6371.0088

#: Earth circumference (km) derived from :data:`EARTH_RADIUS_KM`.
EARTH_CIRCUMFERENCE_KM = 2.0 * math.pi * EARTH_RADIUS_KM

#: Kilometres per statute mile.  The paper reports all errors in miles.
KM_PER_MILE = 1.609344

#: Statute miles per kilometre.
MILES_PER_KM = 1.0 / KM_PER_MILE

#: Speed of light in vacuum, expressed in km per millisecond.
SPEED_OF_LIGHT_KM_PER_MS = 299792.458 / 1000.0

#: Propagation speed of light in fiber, approximately 2/3 of c (km/ms).
#: This is the conservative bound the paper uses to translate a round-trip
#: latency into a maximum great-circle distance.
FIBER_SPEED_KM_PER_MS = SPEED_OF_LIGHT_KM_PER_MS * (2.0 / 3.0)


def km_to_miles(km: float) -> float:
    """Convert kilometres to statute miles."""
    return km * MILES_PER_KM


def miles_to_km(miles: float) -> float:
    """Convert statute miles to kilometres."""
    return miles * KM_PER_MILE


def rtt_ms_to_max_distance_km(rtt_ms: float) -> float:
    """Maximum one-way great-circle distance implied by a round-trip time.

    A round-trip latency of ``rtt_ms`` milliseconds bounds the one-way
    distance by ``rtt_ms / 2`` milliseconds of propagation at 2/3 the speed
    of light.  This is the loose-but-sound positive constraint of Section 2.1.
    """
    if rtt_ms < 0:
        raise ValueError(f"round-trip time must be non-negative, got {rtt_ms!r}")
    return (rtt_ms / 2.0) * FIBER_SPEED_KM_PER_MS


def distance_km_to_min_rtt_ms(distance_km: float) -> float:
    """Minimum round-trip time implied by a one-way great-circle distance."""
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km!r}")
    return 2.0 * distance_km / FIBER_SPEED_KM_PER_MS


def normalize_longitude(lon_deg: float) -> float:
    """Wrap a longitude into the canonical ``[-180, 180)`` range."""
    lon = math.fmod(lon_deg + 180.0, 360.0)
    if lon < 0:
        lon += 360.0
    return lon - 180.0


def normalize_latitude(lat_deg: float) -> float:
    """Clamp a latitude into ``[-90, 90]``.

    Latitudes slightly outside the legal range can be produced by destination
    point computations near the poles; clamping keeps downstream code simple.
    """
    return max(-90.0, min(90.0, lat_deg))


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the surface of the Earth.

    Attributes
    ----------
    lat:
        Latitude in decimal degrees, positive north.
    lon:
        Longitude in decimal degrees, positive east.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude out of range [-90, 90]: {self.lat!r}")
        if not (-180.0 <= self.lon <= 180.0):
            object.__setattr__(self, "lon", normalize_longitude(self.lon))

    # ------------------------------------------------------------------ #
    # Distances and bearings
    # ------------------------------------------------------------------ #
    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def distance_miles(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in statute miles."""
        return km_to_miles(self.distance_km(other))

    def bearing_to(self, other: "GeoPoint") -> float:
        """Initial bearing (degrees clockwise from north) towards ``other``."""
        return initial_bearing_deg(self.lat, self.lon, other.lat, other.lon)

    def destination(self, bearing_deg: float, distance_km: float) -> "GeoPoint":
        """Point reached by travelling ``distance_km`` along ``bearing_deg``."""
        return destination_point(self, bearing_deg, distance_km)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)`` as a plain tuple."""
        return (self.lat, self.lon)

    def __str__(self) -> str:  # pragma: no cover - repr formatting
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.4f}{ns} {abs(self.lon):.4f}{ew}"


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in kilometres.

    Uses the haversine formula, which is numerically well behaved for the
    small-to-continental distances Octant deals with.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    )
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def haversine_miles(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in statute miles."""
    return km_to_miles(haversine_km(lat1, lon1, lat2, lon2))


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2.

    Returns degrees in ``[0, 360)`` measured clockwise from true north.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlmb = math.radians(lon2 - lon1)
    y = math.sin(dlmb) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlmb)
    theta = math.degrees(math.atan2(y, x))
    return theta % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """Return the point ``distance_km`` away from ``origin`` along ``bearing_deg``.

    The computation follows the standard spherical law of cosines solution for
    the "direct geodesic" problem on a sphere.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km!r}")
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lmb1 = math.radians(origin.lon)

    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lmb2 = lmb1 + math.atan2(y, x)

    return GeoPoint(
        normalize_latitude(math.degrees(phi2)),
        normalize_longitude(math.degrees(lmb2)),
    )


def destination_arrays(
    lats_deg: "object",
    lons_deg: "object",
    bearings_deg: "object",
    distances_km: "object",
) -> tuple["object", "object"]:
    """Vectorized :func:`destination_point` over aligned coordinate arrays.

    Takes origin latitude/longitude, bearing and distance arrays (or
    broadcastable scalars), returns ``(lat_deg, lon_deg)`` arrays.  Every
    element is bitwise identical to the corresponding
    ``destination_point(GeoPoint(lat, lon), bearing, distance)`` result:
    the elementwise steps run as array operations only on builds whose
    NumPy trig matches libm exactly, the inverse trig always goes through
    ``math.asin``/``math.atan2`` per element, and otherwise the whole
    function falls back to the scalar loop.  This is the realization kernel
    the cohort-axis pipeline uses to pool geodesic circle boundaries across
    a whole batch of targets.
    """
    import numpy as np

    from ._exact import NUMPY_TRIG_MATCHES_LIBM, asin_elementwise, atan2_elementwise

    lats = np.broadcast_arrays(
        np.asarray(lats_deg, dtype=float),
        np.asarray(lons_deg, dtype=float),
        np.asarray(bearings_deg, dtype=float),
        np.asarray(distances_km, dtype=float),
    )
    lat_a, lon_a, bearing_a, dist_a = lats
    if not NUMPY_TRIG_MATCHES_LIBM:
        out_lat = np.empty(lat_a.shape)
        out_lon = np.empty(lat_a.shape)
        flat = zip(
            lat_a.ravel().tolist(),
            lon_a.ravel().tolist(),
            bearing_a.ravel().tolist(),
            dist_a.ravel().tolist(),
        )
        lat_flat = out_lat.ravel()
        lon_flat = out_lon.ravel()
        for i, (lat, lon, bearing, dist) in enumerate(flat):
            p = destination_point(GeoPoint(lat, lon), bearing, dist)
            lat_flat[i] = p.lat
            lon_flat[i] = p.lon
        return lat_flat.reshape(lat_a.shape), lon_flat.reshape(lat_a.shape)

    if dist_a.size and float(np.min(dist_a)) < 0:
        raise ValueError("distance must be non-negative")
    delta = dist_a / EARTH_RADIUS_KM
    theta = np.radians(bearing_a)
    phi1 = np.radians(lat_a)
    lmb1 = np.radians(lon_a)

    sin_phi1 = np.sin(phi1)
    cos_phi1 = np.cos(phi1)
    sin_delta = np.sin(delta)
    cos_delta = np.cos(delta)
    sin_phi2 = sin_phi1 * cos_delta + cos_phi1 * sin_delta * np.cos(theta)
    sin_phi2 = np.minimum(1.0, np.maximum(-1.0, sin_phi2))
    phi2 = asin_elementwise(sin_phi2)
    y = np.sin(theta) * sin_delta * cos_phi1
    x = cos_delta - sin_phi1 * sin_phi2
    lmb2 = lmb1 + atan2_elementwise(y, x)

    out_lat = np.maximum(-90.0, np.minimum(90.0, np.degrees(phi2)))
    lon = np.fmod(np.degrees(lmb2) + 180.0, 360.0)
    lon = np.where(lon < 0, lon + 360.0, lon) - 180.0
    return out_lat, lon


def geographic_midpoint(points: Sequence[GeoPoint] | Iterable[GeoPoint]) -> GeoPoint:
    """Return the geographic midpoint (centroid on the sphere) of ``points``.

    Each point is converted to a 3-D unit vector, the vectors are averaged and
    the mean is projected back to the sphere.  Raises ``ValueError`` on an
    empty input.
    """
    pts = list(points)
    if not pts:
        raise ValueError("geographic_midpoint requires at least one point")
    x = y = z = 0.0
    for p in pts:
        phi = math.radians(p.lat)
        lmb = math.radians(p.lon)
        x += math.cos(phi) * math.cos(lmb)
        y += math.cos(phi) * math.sin(lmb)
        z += math.sin(phi)
    n = float(len(pts))
    x, y, z = x / n, y / n, z / n
    norm = math.sqrt(x * x + y * y + z * z)
    if norm < 1e-12:
        # Antipodal degenerate configuration; fall back to the first point.
        return pts[0]
    lat = math.degrees(math.asin(z / norm))
    lon = math.degrees(math.atan2(y, x))
    return GeoPoint(normalize_latitude(lat), normalize_longitude(lon))

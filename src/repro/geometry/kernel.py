"""Vectorized flat-buffer solver kernel.

The weighted region solver's object path clips one Python :class:`Polygon`
at a time: every constraint walks every piece through per-vertex Python
loops (Sutherland-Hodgman passes, keyhole containment scans, wedge
subtraction).  This module re-implements that inner loop as NumPy passes
over a struct-of-arrays *flat buffer*:

* :class:`PieceBuffer` packs the whole piece population into contiguous
  coordinate arrays with per-piece offsets, weights, cached signed areas and
  bounding boxes -- the representation is chosen for the dominant operation
  (batched clipping), not for per-piece object ergonomics.
* Batched Sutherland-Hodgman passes clip *all* pieces against a constraint
  edge at once (:func:`_clip_pass_rows`), with scatter-assembled outputs and
  a no-crossing short-circuit for the common pass that changes nothing.
* A bounding-box / centre-distance prefilter classifies pieces as
  fully-inside or fully-outside a convex constraint and skips the clipper
  for them entirely (see ``DESIGN_SOLVER_KERNEL.md`` for the correctness
  argument: every shortcut is taken only when the object path's outcome is
  provably bit-identical).

Bit-level identity with the object path is the design contract, pinned by
``tests/core/test_solver_engines.py``: every vectorized expression mirrors
the scalar arithmetic operand for operand (NumPy float64 elementwise ops are
IEEE-identical to CPython float ops), sequential accumulations use
``np.cumsum`` (a serial scan, matching the scalar ``+=`` loop bitwise), and
any case the vectorized passes cannot reproduce exactly -- non-convex
operands, Greiner-Hormann territory, ambiguous boundary geometry -- falls
back to the very object-path functions it would otherwise replace.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from .clipping import (
    _MIN_PIECE_AREA_KM2 as MIN_SLIVER_AREA_KM2,
)
from .clipping import (
    clip_convex,
    intersect_polygons,
    subtract_convex,
    subtract_polygons,
)
from .point import EPSILON, Point2D
from .polygon import MERGE_TOLERANCE_KM, Polygon
from .region import Region, RegionPiece

__all__ = [
    "PieceBuffer",
    "VectorSolverKernel",
    "subtract_cautious",
]

#: Safety margin (planar cross-product units) added on top of ``EPSILON``
#: when a prefilter classification relies on a *geometric* argument about
#: points the clipper would only construct later (convex combinations of the
#: piece's vertices).  At the solver's coordinate scales (|coords| < ~2e4 km)
#: a cross product reaches ~1e8, so float64 rounding accumulates to ~1e-7 at
#: worst; the margin sits three decades above that, which keeps every
#: margin-gated classification provably identical to what the clipper would
#: compute, while remaining microscopic geometrically (sub-millimetre at
#: kilometre-scale edges).  Pieces inside the band simply run the clipper.
_PREFILTER_MARGIN = 1e-4

#: Shave applied to the centre-distance (apothem) fully-inside radius so the
#: classification stays conservative under floating-point rounding (10 cm at
#: kilometre coordinates, orders of magnitude above the rounding in the
#: distance computation).
_APOTHEM_SHAVE_KM = 1e-4

#: A part is one piece's geometry outside the buffer: (xs, ys, signed_area).
_Part = tuple[np.ndarray, np.ndarray, float]

#: Batched clipping pays NumPy dispatch overhead per pass; below this many
#: rows the scalar object-path functions are faster on the small vertex
#: counts the solver sees, and using them is trivially bit-identical (they
#: *are* the reference implementation).  Above ``_MIN_BATCH_VERTICES`` total
#: vertices the batch wins regardless of row count: scalar per-vertex loops
#: on large keyholed rings cost milliseconds each.
_MIN_BATCH_ROWS = 3
_MIN_BATCH_VERTICES = 150

#: Sentinel returned by ``_apply_constraint`` when the constraint left the
#: piece population exactly as it was (no satisfied parts, no sliver drops):
#: the caller keeps the current buffer instead of rebuilding it.
_UNCHANGED: list = ["<unchanged>"]


# --------------------------------------------------------------------------- #
# Scalar helpers shared with the object path
# --------------------------------------------------------------------------- #
def subtract_cautious(piece: Polygon, exclusion: Polygon) -> list[Polygon]:
    """Subtract ``exclusion`` from ``piece`` without fragmenting it.

    When the exclusion lies strictly inside the piece, the classic wedge
    decomposition would shatter the result into one piece per exclusion
    edge; a keyholed polygon keeps it as a single piece with identical
    area and containment behaviour.  Otherwise general subtraction is used.
    (Hoisted from ``WeightedRegionSolver`` so both solver engines share one
    implementation.)
    """
    piece_box = piece.bounding_box()
    exclusion_box = exclusion.bounding_box()
    if not piece_box.intersects(exclusion_box):
        return [piece]
    # The exclusion can only lie strictly inside the piece when its
    # bounding box does (up to the boundary tolerance of contains_point);
    # rejecting on boxes skips the per-vertex containment scan in the
    # common partial-overlap case without changing the decision.
    tol = 1e-6
    if (
        piece_box.min_x - tol <= exclusion_box.min_x
        and piece_box.min_y - tol <= exclusion_box.min_y
        and exclusion_box.max_x <= piece_box.max_x + tol
        and exclusion_box.max_y <= piece_box.max_y + tol
        and all(piece.contains_point(v) for v in exclusion.vertices)
    ):
        return [piece.with_hole(exclusion)]
    return subtract_polygons(piece, exclusion)


def _clean_coords(points: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Replica of ``Polygon._clean_vertices`` on raw coordinate tuples."""
    if not points:
        return []
    tol = MERGE_TOLERANCE_KM
    cleaned = [points[0]]
    last = points[0]
    for v in points[1:]:
        if not (abs(v[0] - last[0]) <= tol and abs(v[1] - last[1]) <= tol):
            cleaned.append(v)
            last = v
    first = cleaned[0]
    while len(cleaned) > 1 and (
        abs(cleaned[-1][0] - first[0]) <= tol and abs(cleaned[-1][1] - first[1]) <= tol
    ):
        cleaned.pop()
    return cleaned


def _shoelace(points: Sequence[tuple[float, float]]) -> float:
    """Replica of ``Polygon.signed_area`` (sequential accumulation)."""
    total = 0.0
    n = len(points)
    for i in range(n):
        ax, ay = points[i]
        bx, by = points[(i + 1) % n]
        total += ax * by - bx * ay
    return total / 2.0


# --------------------------------------------------------------------------- #
# The flat buffer
# --------------------------------------------------------------------------- #
class PieceBuffer:
    """Struct-of-arrays snapshot of the solver's piece population.

    ``xs``/``ys`` hold the packed vertex coordinates of every piece (the
    *cleaned* coordinates the equivalent :class:`Polygon` would store);
    ``offsets[i]:offsets[i+1]`` delimits piece ``i``.  Weights, signed areas
    and bounding boxes are cached per piece so pruning and selection never
    touch the coordinates.
    """

    __slots__ = ("xs", "ys", "offsets", "weights", "signed_areas", "bboxes", "_padded")

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        offsets: np.ndarray,
        weights: np.ndarray,
        signed_areas: np.ndarray,
    ):
        self.xs = xs
        self.ys = ys
        self.offsets = offsets
        self.weights = weights
        self.signed_areas = signed_areas
        self._padded: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        if len(offsets) > 1:
            starts = offsets[:-1]
            self.bboxes = np.column_stack(
                [
                    np.minimum.reduceat(xs, starts),
                    np.minimum.reduceat(ys, starts),
                    np.maximum.reduceat(xs, starts),
                    np.maximum.reduceat(ys, starts),
                ]
            )
        else:
            self.bboxes = np.zeros((0, 4))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_parts(
        cls, parts: Sequence[_Part], weights: Sequence[float]
    ) -> "PieceBuffer":
        """Build a buffer from ``(xs, ys, signed_area)`` parts."""
        if not parts:
            empty = np.zeros(0)
            return cls(empty, empty, np.zeros(1, dtype=np.int64), empty, empty)
        counts = np.array([len(p[0]) for p in parts], dtype=np.int64)
        offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        xs = np.concatenate([p[0] for p in parts])
        ys = np.concatenate([p[1] for p in parts])
        signed = np.array([p[2] for p in parts])
        return cls(xs, ys, offsets, np.asarray(weights, dtype=float), signed)

    @classmethod
    def from_polygons(cls, pieces: Sequence[tuple[Polygon, float]]) -> "PieceBuffer":
        """Build a buffer from ``(polygon, weight)`` pairs."""
        parts = []
        weights = []
        for polygon, weight in pieces:
            parts.append(_part_from_polygon(polygon))
            weights.append(weight)
        return cls.from_parts(parts, weights)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.weights)

    @property
    def areas(self) -> np.ndarray:
        """Unsigned piece areas (km^2)."""
        return np.abs(self.signed_areas)

    def piece_coords(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Packed coordinate views of piece ``i``."""
        lo, hi = self.offsets[i], self.offsets[i + 1]
        return self.xs[lo:hi], self.ys[lo:hi]

    def part(self, i: int) -> _Part:
        xs, ys = self.piece_coords(i)
        return xs, ys, float(self.signed_areas[i])

    def polygon(self, i: int) -> Polygon:
        """Materialize piece ``i`` as a :class:`Polygon` (identical vertices)."""
        return _polygon_from_part(self.part(i))

    def subset(self, indices: Sequence[int]) -> "PieceBuffer":
        """A new buffer holding the given pieces, in the given order."""
        parts = [self.part(i) for i in indices]
        weights = [float(self.weights[i]) for i in indices]
        return PieceBuffer.from_parts(parts, weights)

    def padded(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The population as padded rows ``(X, Y, counts)``, built once.

        Treat the arrays as read-only: they are cached on the (immutable)
        buffer and shared between the per-constraint batched stages.
        """
        if self._padded is None:
            self._padded = _pad_parts([self.part(i) for i in range(len(self))])[:3]
        return self._padded


# --------------------------------------------------------------------------- #
# Batched row primitives (padded representation)
# --------------------------------------------------------------------------- #
_LANE_CACHE: dict[int, np.ndarray] = {}
_ROW_CACHE: dict[int, np.ndarray] = {}


def _lanes(width: int) -> np.ndarray:
    arr = _LANE_CACHE.get(width)
    if arr is None:
        arr = np.arange(width)
        _LANE_CACHE[width] = arr
    return arr


def _rows_col(height: int) -> np.ndarray:
    arr = _ROW_CACHE.get(height)
    if arr is None:
        arr = np.arange(height)[:, None]
        _ROW_CACHE[height] = arr
    return arr


def _pad_parts(
    parts: Sequence[_Part],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack parts into padded row arrays ``(X, Y, counts, signed)``."""
    counts = np.array([len(p[0]) for p in parts], dtype=np.int64)
    width = int(counts.max()) if len(counts) else 0
    X = np.zeros((len(parts), max(width, 1)))
    Y = np.zeros_like(X)
    for r, (xs, ys, _signed) in enumerate(parts):
        X[r, : len(xs)] = xs
        Y[r, : len(ys)] = ys
    signed = np.array([p[2] for p in parts])
    return X, Y, counts, signed


def _reverse_rows(
    X: np.ndarray, Y: np.ndarray, counts: np.ndarray, flip: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reverse the first ``counts[r]`` lanes of every flagged row."""
    if not flip.any():
        return X, Y
    R, V = X.shape
    lanes = _lanes(V)
    rev_idx = np.clip(counts[:, None] - 1 - lanes[None, :], 0, V - 1)
    rows = _rows_col(R)
    Xr = np.where(flip[:, None], X[rows, rev_idx], X)
    Yr = np.where(flip[:, None], Y[rows, rev_idx], Y)
    return Xr, Yr


def _signed_areas_rows(X: np.ndarray, Y: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Shoelace signed area per row, bitwise equal to the scalar loop.

    Terms are accumulated with ``np.cumsum`` -- a sequential scan, so the
    rounding matches ``total += ax*by - bx*ay`` exactly; padding lanes
    contribute an exact ``0.0``.
    """
    R, V = X.shape
    lanes = _lanes(V)[None, :]
    valid = lanes < counts[:, None]
    next_idx = np.where(lanes == counts[:, None] - 1, 0, lanes + 1)
    next_idx = np.where(valid, next_idx, 0)
    rows = _rows_col(R)
    NX = X[rows, next_idx]
    NY = Y[rows, next_idx]
    terms = np.where(valid, X * NY - NX * Y, 0.0)
    if V == 0:
        return np.zeros(R)
    return np.cumsum(terms, axis=1)[:, -1] / 2.0


def _clean_rows(
    X: np.ndarray, Y: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply ``Polygon`` vertex cleaning to every row.

    The fast path detects rows with no adjacent near-duplicate pair
    (including the wrap-around pair) -- for those, cleaning is the identity.
    Rows with near-duplicates run the exact scalar replica.
    """
    R, V = X.shape
    lanes = _lanes(V)[None, :]
    valid = (lanes < counts[:, None]) & (counts[:, None] > 0)
    prev_idx = np.where(lanes == 0, np.maximum(counts[:, None] - 1, 0), lanes - 1)
    rows = _rows_col(R)
    tol = MERGE_TOLERANCE_KM
    dup = (
        (np.abs(X - X[rows, prev_idx]) <= tol)
        & (np.abs(Y - Y[rows, prev_idx]) <= tol)
        & valid
    )
    dirty = dup.any(axis=1)
    if dirty.any():
        counts = counts.copy()
        for r in np.nonzero(dirty)[0]:
            c = int(counts[r])
            pts = list(zip(X[r, :c].tolist(), Y[r, :c].tolist()))
            cleaned = _clean_coords(pts)
            counts[r] = len(cleaned)
            X[r, :] = 0.0
            Y[r, :] = 0.0
            for j, (x, y) in enumerate(cleaned):
                X[r, j] = x
                Y[r, j] = y
    return X, Y, counts


def _clip_pass_rows(
    X: np.ndarray,
    Y: np.ndarray,
    counts: np.ndarray,
    ax,
    ay,
    bx,
    by,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Sutherland-Hodgman half-plane pass over all rows at once.

    Mirrors ``clipping._clip_pass`` operand for operand: the sidedness test,
    the intersection parameterization and the emit order (intersection point
    first, then the inside vertex) are identical, so each row's output
    coordinates are bitwise equal to the scalar pass on that row.  Edge
    endpoints may be scalars (one edge for every row) or per-row arrays.

    Fast path: when no row crosses the edge line, every row is either kept
    verbatim or emptied, so the input arrays are returned unchanged with
    updated counts -- no scatter, no allocation.
    """
    R, V = X.shape
    lanes = _lanes(V)[None, :]
    counts_col = counts[:, None]
    valid = lanes < counts_col

    per_row = not np.isscalar(ax) and getattr(ax, "ndim", 0) > 0
    if per_row:
        exv = (bx - ax)[:, None]
        eyv = (by - ay)[:, None]
        axv = ax[:, None]
        ayv = ay[:, None]
    else:
        exv = bx - ax
        eyv = by - ay
        axv = ax
        ayv = ay

    cross = exv * (Y - ayv) - eyv * (X - axv)
    sides = cross >= -EPSILON

    # Predecessor sidedness: lane j-1, wrapping lane 0 to lane count-1.
    prev_sides = np.empty_like(sides)
    prev_sides[:, 1:] = sides[:, :-1]
    prev_sides[:, 0] = sides[_lanes(R), np.maximum(counts - 1, 0)]
    crossing = (sides != prev_sides) & valid

    if not crossing.any():
        # Every row is entirely on one side: kept rows are returned verbatim
        # (the scalar pass emits the same sequence), outside rows empty.
        row_in = (sides | ~valid).all(axis=1)
        return X, Y, np.where(row_in, counts, 0)

    emit_vert = sides & valid
    ri, li = np.nonzero(crossing)
    pi = np.where(li == 0, counts[ri] - 1, li - 1)
    px = X[ri, pi]
    py = Y[ri, pi]
    cx = X[ri, li]
    cy = Y[ri, li]
    if per_row:
        e_x = (bx - ax)[ri]
        e_y = (by - ay)[ri]
        a_x = ax[ri]
        a_y = ay[ri]
    else:
        e_x = exv
        e_y = eyv
        a_x = axv
        a_y = ayv
    rx = cx - px
    ry = cy - py
    denom = rx * e_y - ry * e_x
    ok = ~(np.abs(denom) < 1e-15)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = ((a_x - px) * e_y - (a_y - py) * e_x) / denom
        ix = px + rx * t
        iy = py + ry * t

    emit_inter = crossing
    if not ok.all():
        emit_inter = crossing.copy()
        bad = ~ok
        emit_inter[ri[bad], li[bad]] = False

    per_lane = emit_inter.astype(np.int64) + emit_vert.astype(np.int64)
    ends = np.cumsum(per_lane, axis=1)
    starts = ends - per_lane
    new_counts = ends[:, -1]

    width = max(int(new_counts.max()), 1)
    newX = np.zeros((R, width))
    newY = np.zeros_like(newX)
    keep = ok
    if not keep.all():
        ri, li, ix, iy = ri[keep], li[keep], ix[keep], iy[keep]
    pos = starts[ri, li]
    newX[ri, pos] = ix
    newY[ri, pos] = iy
    rv, lv = np.nonzero(emit_vert)
    pos = starts[rv, lv] + emit_inter[rv, lv]
    newX[rv, pos] = X[rv, lv]
    newY[rv, pos] = Y[rv, lv]
    return newX, newY, new_counts


def _clean_and_measure_rows(
    X: np.ndarray, Y: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fused vertex cleaning + shoelace measurement for every row.

    Identical to ``_clean_rows`` followed by ``_signed_areas_rows`` (the two
    share their lane/index bookkeeping, which is most of the cost on the
    small matrices the solver sees); returns ``(X, Y, counts, signed)``.
    """
    R, V = X.shape
    if V == 0:
        return X, Y, counts, np.zeros(R)
    lanes = _lanes(V)[None, :]
    counts_col = counts[:, None]
    valid = (lanes < counts_col) & (counts_col > 0)
    # Predecessor/successor coordinates by lane shifting (with the per-row
    # wrap lane patched by a small gather) instead of full index matrices.
    row_ids = _lanes(R)
    last = np.maximum(counts - 1, 0)
    PX = np.empty_like(X)
    PY = np.empty_like(Y)
    PX[:, 1:] = X[:, :-1]
    PY[:, 1:] = Y[:, :-1]
    PX[:, 0] = X[row_ids, last]
    PY[:, 0] = Y[row_ids, last]
    tol = MERGE_TOLERANCE_KM
    dup = (np.abs(X - PX) <= tol) & (np.abs(Y - PY) <= tol) & valid
    if dup.any(axis=None):
        X, Y, counts = _clean_rows(X, Y, counts)
        return X, Y, counts, _signed_areas_rows(X, Y, counts)
    NX = np.empty_like(X)
    NY = np.empty_like(Y)
    NX[:, :-1] = X[:, 1:]
    NY[:, :-1] = Y[:, 1:]
    NX[:, -1] = 0.0
    NY[:, -1] = 0.0
    NX[row_ids, last] = X[:, 0]
    NY[row_ids, last] = Y[:, 0]
    terms = np.where(valid, X * NY - NX * Y, 0.0)
    return X, Y, counts, np.cumsum(terms, axis=1)[:, -1] / 2.0


def _finalize_rows(
    X: np.ndarray, Y: np.ndarray, counts: np.ndarray, alive: np.ndarray
) -> list[_Part | None]:
    """Replicate ``_polygon_from_coords`` on every row: clean, validate, measure."""
    alive = alive & (counts >= 3)
    X, Y, counts, signed = _clean_and_measure_rows(X, Y, counts)
    alive = alive & (counts >= 3)
    alive = alive & ~(np.abs(signed) < MIN_SLIVER_AREA_KM2)
    out: list[_Part | None] = []
    for r in range(len(counts)):
        if not alive[r]:
            out.append(None)
            continue
        c = int(counts[r])
        out.append((X[r, :c].copy(), Y[r, :c].copy(), float(signed[r])))
    return out


def _clip_convex_rows(
    parts: Sequence[_Part],
    edges: np.ndarray,
    stats: "_StatsHook | None" = None,
) -> list[_Part | None]:
    """Batched ``clip_convex``: clip every part against the same convex edges.

    ``edges`` is ``(E, 4)`` with rows ``(ax, ay, bx, by)`` in CCW order.
    Rows are pre-oriented CCW exactly like ``_ccw_coords``; a row is dead as
    soon as its vertex count drops below 3 (the scalar loop returns ``None``
    before the next pass); the surviving chains go through the scalar-exact
    finalization (cleaning, sliver threshold).
    """
    X, Y, counts, signed = _pad_parts(parts)
    X, Y = _reverse_rows(X, Y, counts, ~(signed > 0.0))
    for e in range(edges.shape[0]):
        counts = np.where(counts >= 3, counts, 0)
        if not counts.any():
            break
        if stats is not None:
            stats.vertices_clipped += int(counts.sum())
        X, Y, counts = _clip_pass_rows(
            X,
            Y,
            counts,
            float(edges[e, 0]),
            float(edges[e, 1]),
            float(edges[e, 2]),
            float(edges[e, 3]),
        )
    return _finalize_rows(X, Y, counts, counts >= 3)


def _halfplane_chain_rows(
    parts: Sequence[_Part],
    edge_seqs: Sequence[np.ndarray],
    stats: "_StatsHook | None" = None,
) -> list[_Part | None]:
    """Batched chains of ``clip_halfplane`` calls (one edge sequence per row).

    Each pass replicates one ``clip_halfplane``: re-orient to CCW, clip
    against the row's next edge, then clean/validate/measure exactly like the
    per-pass ``_polygon_from_coords`` the scalar code runs.  Used for the
    wedge decomposition of convex subtraction, where every wedge is an
    independent chain ``[outside(edge_i), inside(edge_0..i-1)]``.  Rows are
    compacted to the active subset per pass, so finished or dead chains cost
    nothing.
    """
    if not parts:
        return []
    X, Y, counts, signed = _pad_parts(parts)
    seq_lens = np.array([len(s) for s in edge_seqs], dtype=np.int64)
    max_len = int(seq_lens.max())
    R = len(parts)
    edge_arr = np.zeros((R, max_len, 4))
    for r, seq in enumerate(edge_seqs):
        edge_arr[r, : len(seq), :] = seq
    alive = counts >= 3
    for k in range(max_len):
        act = np.nonzero(alive & (k < seq_lens))[0]
        if len(act) == 0:
            continue
        sx = X[act]
        sy = Y[act]
        sc = counts[act]
        ss = signed[act]
        if stats is not None:
            stats.vertices_clipped += int(sc.sum())
        flip = ~(ss > 0.0)
        sx, sy = _reverse_rows(sx, sy, sc, flip)
        nX, nY, nc = _clip_pass_rows(
            sx,
            sy,
            sc,
            edge_arr[act, k, 0],
            edge_arr[act, k, 1],
            edge_arr[act, k, 2],
            edge_arr[act, k, 3],
        )
        nc = np.where(nc >= 3, nc, 0)
        if nX is sx and not flip.any():
            # Short-circuit pass: no row crossed the edge, so surviving rows
            # kept their exact coordinate sequence.  The scalar path would
            # rebuild the same polygon (cleaning an already-clean ring is the
            # identity and re-measuring the same ring reproduces the same
            # signed area bitwise), so their state is untouched; only rows
            # the pass emptied need recording.  A flipped (CW-stored) row
            # cannot take this path: the scalar clip_halfplane rebuilds it
            # in CCW order, so the reversal must be written back below.
            died = nc == 0
            if died.any():
                dead_rows = act[died]
                counts[dead_rows] = 0
                alive[dead_rows] = False
            continue
        nX, nY, nc, ns = _clean_and_measure_rows(nX, nY, nc)
        good = (nc >= 3) & ~(np.abs(ns) < MIN_SLIVER_AREA_KM2)
        nc = np.where(good, nc, 0)
        # Write the active subset back, growing the canonical width if the
        # pass emitted more vertices than any prior row held.
        if nX.shape[1] > X.shape[1]:
            growX = np.zeros((R, nX.shape[1]))
            growY = np.zeros_like(growX)
            growX[:, : X.shape[1]] = X
            growY[:, : Y.shape[1]] = Y
            X, Y = growX, growY
        X[act, :] = 0.0
        Y[act, :] = 0.0
        X[act, : nX.shape[1]] = nX
        Y[act, : nY.shape[1]] = nY
        counts[act] = nc
        signed[act] = ns
        alive[act] = good
        # Clipping shrinks wedge slices fast; narrowing the canonical arrays
        # to the surviving maximum keeps later passes from dragging the
        # original (possibly huge keyholed) width through every operation.
        live_max = int(counts[alive].max()) if alive.any() else 1
        if live_max < X.shape[1] // 2:
            X = np.ascontiguousarray(X[:, :live_max])
            Y = np.ascontiguousarray(Y[:, :live_max])
    out: list[_Part | None] = []
    for r in range(R):
        if not alive[r]:
            out.append(None)
            continue
        c = int(counts[r])
        out.append((X[r, :c].copy(), Y[r, :c].copy(), float(signed[r])))
    return out


# --------------------------------------------------------------------------- #
# Vectorized containment (keyhole precondition)
# --------------------------------------------------------------------------- #
def _contain_all_queries(
    parts: Sequence[_Part],
    X: np.ndarray,
    Y: np.ndarray,
    counts: np.ndarray,
    boxes: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
) -> np.ndarray:
    """For every part: does it contain *all* query points?

    Vectorized replica of ``all(piece.contains_point(v) for v in queries)``.
    ``contains_point`` returns True either when the even-odd parity says
    inside or when the point sits on the boundary (``include_boundary``);
    parity True therefore decides True without the (expensive) boundary
    distance scan.  Only queries with parity False fall back to the exact
    scalar predicate -- rare, because keyhole exclusions lie strictly inside
    their piece.  ``X/Y/counts/boxes`` are the parts' padded rows and
    bounding boxes, shared with the caller to avoid re-padding.
    """
    P, V = X.shape
    lanes = _lanes(V)[None, :]
    valid = lanes < counts[:, None]
    tol = MERGE_TOLERANCE_KM

    # Bounding-box gate per (part, query).
    in_box = (
        (boxes[:, 0][:, None] - tol <= qx[None, :])
        & (qx[None, :] <= boxes[:, 2][:, None] + tol)
        & (boxes[:, 1][:, None] - tol <= qy[None, :])
        & (qy[None, :] <= boxes[:, 3][:, None] + tol)
    )

    # Even-odd parity, vectorized over (part, query, edge); the crossing
    # predicate and the intersection abscissa mirror the scalar loop.
    rowsP = _rows_col(P)
    prev_idx = np.where(lanes == 0, np.maximum(counts[:, None] - 1, 0), lanes - 1)
    PX = X[rowsP, prev_idx]
    PY = Y[rowsP, prev_idx]
    vy = Y[:, None, :]
    vyj = PY[:, None, :]
    vx = X[:, None, :]
    vxj = PX[:, None, :]
    py = qy[None, :, None]
    px = qx[None, :, None]
    crosses = ((vy > py) != (vyj > py)) & valid[:, None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        x_int = (vxj - vx) * (py - vy) / (vyj - vy) + vx
    hits = crosses & (px < x_int)
    parity = (hits.sum(axis=2) % 2).astype(bool)

    decided_true = in_box & parity
    result = np.empty(P, dtype=bool)
    all_true = decided_true.all(axis=1)
    for p in range(P):
        if all_true[p]:
            result[p] = True
            continue
        # Some query has parity False (or sits outside the box): re-check
        # those with the exact scalar predicate, in vertex order like the
        # scalar all() scan.
        polygon = None
        ok = True
        for q in range(len(qx)):
            if decided_true[p, q]:
                continue
            if not in_box[p, q]:
                ok = False
                break
            if polygon is None:
                polygon = _polygon_from_part(parts[p])
            if not polygon.contains_point(Point2D(float(qx[q]), float(qy[q]))):
                ok = False
                break
        result[p] = ok
    return result


# --------------------------------------------------------------------------- #
# Keyhole construction (vectorized bridge search)
# --------------------------------------------------------------------------- #
def _keyhole_bridges(
    X: np.ndarray,
    Y: np.ndarray,
    counts: np.ndarray,
    wanted: np.ndarray,
    inner_rev_x: np.ndarray,
    inner_rev_y: np.ndarray,
) -> list[tuple[int, int] | None]:
    """Bridge vertex pairs for many keyhole parts in one tensor.

    The squared-distance expression matches the scalar scan elementwise and
    ``argmin`` over the row-major flattened (outer, inner) grid reproduces
    its first-minimum tie-breaking; padding lanes are +inf and never win.
    Only rows flagged in ``wanted`` are needed; the result is valid for
    CCW-oriented rings only (callers re-derive for reversed rings).
    """
    bridges: list[tuple[int, int] | None] = [None] * len(counts)
    rows = np.nonzero(wanted)[0]
    if len(rows) == 0:
        return bridges
    # Only the wanted rows pay for the distance tensor.
    wX = X[rows]
    wY = Y[rows]
    wc = counts[rows]
    width = max(int(wc.max()), 1)
    wX = wX[:, :width]
    wY = wY[:, :width]
    valid = _lanes(width)[None, :] < wc[:, None]
    dox = wX[:, :, None] - inner_rev_x[None, None, :]
    doy = wY[:, :, None] - inner_rev_y[None, None, :]
    d2 = dox * dox + doy * doy
    d2 = np.where(valid[:, :, None], d2, np.inf)
    flat_idx = d2.reshape(len(rows), -1).argmin(axis=1)
    ni = len(inner_rev_x)
    for pos, k in enumerate(rows.tolist()):
        bridges[k] = divmod(int(flat_idx[pos]), ni)
    return bridges



def _with_hole_batch(
    kX: np.ndarray,
    kY: np.ndarray,
    kcounts: np.ndarray,
    rows: np.ndarray,
    bridges: Sequence[tuple[int, int] | None],
    inner_rev_x: np.ndarray,
    inner_rev_y: np.ndarray,
) -> list[_Part]:
    """Batched ``Polygon.with_hole`` for many CCW outer rings at once.

    ``rows`` indexes the keyhole subset's padded arrays; every flagged row
    must be CCW-stored with a precomputed bridge.  The combined ring
    ``outer_rot + [outer_rot[0]] + inner_rot + [inner_rot[0]]`` is gathered
    for all rows in one shot (the bridge lanes are the natural wrap of the
    rotation modulus), then cleaned (vectorized detection, scalar fallback)
    and measured with the shared sequential shoelace.
    """
    P = len(rows)
    ni = len(inner_rev_x)
    counts_r = kcounts[rows]
    widths = counts_r + ni + 2
    W = int(widths.max())
    lanes = _lanes(W)[None, :]
    cnt = counts_r[:, None]
    oi = np.array([bridges[r][0] for r in rows])[:, None]
    ij = np.array([bridges[r][1] for r in rows])[:, None]

    # Lane -> source index: lanes [0, cnt] walk the rotated outer ring
    # (lane == cnt wraps back to the bridge vertex), lanes (cnt, cnt+ni+1]
    # walk the rotated inner ring likewise.
    outer_zone = lanes <= cnt
    outer_src = (oi + lanes) % cnt
    inner_src = (ij + (lanes - cnt - 1)) % ni
    rowsP = _rows_col(P)
    gx_outer = kX[rows][rowsP, outer_src]
    gy_outer = kY[rows][rowsP, outer_src]
    gx_inner = inner_rev_x[inner_src]
    gy_inner = inner_rev_y[inner_src]
    comb_x = np.where(outer_zone, gx_outer, gx_inner)
    comb_y = np.where(outer_zone, gy_outer, gy_inner)

    comb_x, comb_y, widths, signed = _clean_and_measure_rows(comb_x, comb_y, widths)
    out: list[_Part] = []
    for k in range(P):
        w = int(widths[k])
        if w < 3:
            raise ValueError("keyholed polygon degenerated below a triangle")
        out.append((comb_x[k, :w].copy(), comb_y[k, :w].copy(), float(signed[k])))
    return out


def _with_hole_part(
    part: _Part,
    inner_rev_x: np.ndarray,
    inner_rev_y: np.ndarray,
    bridge: tuple[int, int] | None = None,
) -> _Part:
    """Replica of ``Polygon.with_hole`` on raw arrays.

    ``inner_rev_*`` are the hole's CCW coordinates already reversed to
    clockwise traversal (precomputed once per constraint).  The bridge is the
    closest (outer vertex, inner vertex) pair compared on squared distance;
    ``np.argmin`` returns the first minimizer in row-major order, matching
    the scalar scan's strict-improvement update order.  Callers that batch
    the bridge search across parts pass the ``(outer, inner)`` vertex pair
    in; it must have been computed on the CCW-oriented ring.
    """
    xs, ys, signed = part
    if not signed > 0.0:
        xs, ys = xs[::-1], ys[::-1]
        bridge = None  # the scan order changes with the ring orientation

    if bridge is None:
        dox = xs[:, None] - inner_rev_x[None, :]
        doy = ys[:, None] - inner_rev_y[None, :]
        d2 = dox * dox + doy * doy
        flat = int(np.argmin(d2))
        oi, ij = divmod(flat, len(inner_rev_x))
    else:
        oi, ij = bridge

    # outer loop ... bridge out ... inner loop ... bridge back, assembled
    # directly into the output buffers.
    no = len(xs)
    ni = len(inner_rev_x)
    comb_x = np.empty(no + ni + 2)
    comb_y = np.empty(no + ni + 2)
    comb_x[: no - oi] = xs[oi:]
    comb_x[no - oi : no] = xs[:oi]
    comb_x[no] = xs[oi]
    comb_x[no + 1 : no + 1 + ni - ij] = inner_rev_x[ij:]
    comb_x[no + 1 + ni - ij : no + 1 + ni] = inner_rev_x[:ij]
    comb_x[no + 1 + ni] = inner_rev_x[ij]
    comb_y[: no - oi] = ys[oi:]
    comb_y[no - oi : no] = ys[:oi]
    comb_y[no] = ys[oi]
    comb_y[no + 1 : no + 1 + ni - ij] = inner_rev_y[ij:]
    comb_y[no + 1 + ni - ij : no + 1 + ni] = inner_rev_y[:ij]
    comb_y[no + 1 + ni] = inner_rev_y[ij]

    # Vertex cleaning: the combined ring has no adjacent near-duplicates in
    # the overwhelming case (the bridge spans outer-to-inner distance);
    # detect vectorized and only fall back to the scalar replica when a
    # duplicate pair exists.
    tol = MERGE_TOLERANCE_KM
    dup = (
        (np.abs(comb_x[1:] - comb_x[:-1]) <= tol)
        & (np.abs(comb_y[1:] - comb_y[:-1]) <= tol)
    ).any() or (
        abs(float(comb_x[0]) - float(comb_x[-1])) <= tol
        and abs(float(comb_y[0]) - float(comb_y[-1])) <= tol
    )
    if dup:
        cleaned = _clean_coords(list(zip(comb_x.tolist(), comb_y.tolist())))
        if len(cleaned) < 3:
            raise ValueError("keyholed polygon degenerated below a triangle")
        comb_x = np.array([p[0] for p in cleaned])
        comb_y = np.array([p[1] for p in cleaned])
    # Sequential shoelace: the wrap term is added after the cumsum scan,
    # matching the scalar loop's accumulation order bitwise.
    main = comb_x[:-1] * comb_y[1:] - comb_x[1:] * comb_y[:-1]
    wrap = float(comb_x[-1]) * float(comb_y[0]) - float(comb_x[0]) * float(comb_y[-1])
    signed_area = (float(main.cumsum()[-1]) + wrap) / 2.0
    return comb_x, comb_y, signed_area


# --------------------------------------------------------------------------- #
# Per-constraint precomputation
# --------------------------------------------------------------------------- #
class _ConstraintGeometry:
    """Everything the kernel precomputes once per planar constraint."""

    __slots__ = (
        "weight",
        "label",
        "inclusion",
        "exclusion",
        "inc_convex",
        "inc_edges",
        "inc_bbox",
        "inc_center",
        "inc_apothem2",
        "exc_convex",
        "exc_bbox",
        "exc_coords",
        "exc_rev_x",
        "exc_rev_y",
        "exc_wedge_sides",
        "exc_edges",
    )

    def __init__(self, constraint) -> None:
        self.weight = constraint.weight
        self.label = constraint.label
        self.inclusion: Polygon | None = constraint.inclusion
        self.exclusion: Polygon | None = constraint.exclusion

        # Cheap, always-needed facts; the heavier derived arrays (edge
        # tables, keyhole rings, prefilter anchors) are computed on first
        # use -- many constraints resolve every piece with the bounding-box
        # tests alone and never touch them.
        inc = self.inclusion
        if inc is not None:
            self.inc_convex = inc.is_convex()
            self.inc_bbox = inc.bounding_box()
        else:
            self.inc_convex = False
            self.inc_bbox = None
        self.inc_edges = None
        self.inc_center = None
        self.inc_apothem2 = 0.0

        exc = self.exclusion
        if exc is not None:
            self.exc_convex = exc.is_convex()
            self.exc_bbox = exc.bounding_box()
        else:
            self.exc_convex = False
            self.exc_bbox = None
        self.exc_coords = None
        self.exc_rev_x = None
        self.exc_rev_y = None
        self.exc_wedge_sides = None
        self.exc_edges = None

    def ensure_inclusion_tables(self) -> None:
        """Edge table and centre-distance anchor for the convex inclusion."""
        if self.inc_edges is not None:
            return
        inc = self.inclusion
        coords = _ccw_coords_array(inc)
        nxt = np.roll(coords, -1, axis=0)
        self.inc_edges = np.column_stack([coords, nxt])
        # Centre-distance prefilter anchor: the centroid is interior for
        # convex polygons; the apothem is its minimum distance to any
        # edge line, shaved for float safety.
        c = inc.centroid()
        self.inc_center = (c.x, c.y)
        ex = nxt[:, 0] - coords[:, 0]
        ey = nxt[:, 1] - coords[:, 1]
        cross_c = ex * (c.y - coords[:, 1]) - ey * (c.x - coords[:, 0])
        lengths = np.hypot(ex, ey)
        with np.errstate(divide="ignore", invalid="ignore"):
            dists = np.where(lengths > 0, cross_c / lengths, np.inf)
        apothem = max(float(dists.min()) - _APOTHEM_SHAVE_KM, 0.0)
        self.inc_apothem2 = apothem * apothem

    def ensure_keyhole_tables(self) -> None:
        """Query points and clockwise ring for keyhole containment/bridging."""
        if self.exc_coords is not None:
            return
        exc = self.exclusion
        self.exc_coords = np.asarray(exc.coords)
        ccw = _ccw_coords_array(exc)
        rev = ccw[::-1]
        self.exc_rev_x = np.ascontiguousarray(rev[:, 0])
        self.exc_rev_y = np.ascontiguousarray(rev[:, 1])

    def ensure_wedge_tables(self) -> None:
        """Edge tables for the batched wedge decomposition."""
        if self.exc_edges is not None:
            return
        ccw = _ccw_coords_array(self.exclusion)
        nxt = np.roll(ccw, -1, axis=0)
        # keep_left=True edge rows (a -> b) for the wedge inner clips.
        self.exc_edges = np.column_stack([ccw, nxt])
        # Swapped-edge coefficients for the wedge's first (outside) clip:
        # clip_halfplane(keep_left=False) swaps the endpoints, so the
        # sidedness expression is  (ax-bx)*(y-by) - (ay-by)*(x-bx).
        self.exc_wedge_sides = (
            ccw[:, 0] - nxt[:, 0],  # ex (per wedge)
            ccw[:, 1] - nxt[:, 1],  # ey
            nxt[:, 0],  # reference point bx
            nxt[:, 1],  # by
        )


def _ccw_coords_array(polygon: Polygon) -> np.ndarray:
    """``_ccw_coords`` as an ``(n, 2)`` array (reversed copy when CW)."""
    coords = np.asarray(polygon.coords)
    if polygon.signed_area() > 0.0:
        return coords
    return np.ascontiguousarray(coords[::-1])


class _StatsHook:
    """Mutable counters the batched primitives report into."""

    __slots__ = ("vertices_clipped",)

    def __init__(self) -> None:
        self.vertices_clipped = 0


# --------------------------------------------------------------------------- #
# The kernel
# --------------------------------------------------------------------------- #
class VectorSolverKernel:
    """Runs the weighted accumulation on a :class:`PieceBuffer`.

    The kernel owns no policy: constraint ordering, pruning and selection
    replicate the object engine decision for decision (stable Python sorts
    over the buffer's cached weight/area scalars), and every geometric
    shortcut is bit-identity-safe (see module docstring).
    """

    def __init__(self, config, diagnostics) -> None:
        self.config = config
        self.diagnostics = diagnostics
        self._hook = _StatsHook()

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def solve(self, constraints: Sequence, projection, base: Polygon) -> Region:
        diag = self.diagnostics
        buffer = PieceBuffer.from_polygons([(base, 0.0)])
        ordered = sorted(constraints, key=lambda c: c.weight, reverse=True)

        for constraint in ordered:
            started = time.perf_counter()
            # The inclusion/exclusion stages record their own phases inside
            # _apply_constraint; "assemble" is the remainder of this span
            # (geometry precompute, part bookkeeping, prune, buffer build),
            # so the per-phase breakdown sums to the true solve time.
            sub_before = diag.phase_seconds.get("inclusion", 0.0) + diag.phase_seconds.get(
                "exclusion", 0.0
            )
            geometry = _ConstraintGeometry(constraint)
            parts, weights = self._apply_constraint(buffer, geometry)
            if not parts:
                diag.constraints_skipped += 1
                diag.dropped_constraints.append(geometry.label)
                self._record_assemble(started, sub_before)
                continue
            if parts is _UNCHANGED:
                # The constraint produced no satisfied parts and every
                # original piece survived: the population is exactly the
                # current buffer, so skip the rebuild (pruning is a no-op on
                # an already-pruned population).
                pass
            else:
                # Prune on the raw part lists before building the buffer, so
                # each constraint pays for exactly one buffer construction.
                max_pieces = self.config.max_pieces
                if len(parts) > max_pieces:
                    ranked = sorted(
                        range(len(parts)),
                        key=lambda i: (weights[i], abs(parts[i][2])),
                        reverse=True,
                    )[:max_pieces]
                    parts = [parts[i] for i in ranked]
                    weights = [weights[i] for i in ranked]
                buffer = PieceBuffer.from_parts(parts, weights)
            self._record_assemble(started, sub_before)
            diag.constraints_applied += 1
            diag.max_pieces_seen = max(diag.max_pieces_seen, len(buffer))

        started = time.perf_counter()
        selected = self._select(buffer)
        pieces = [
            RegionPiece(buffer.polygon(i), float(buffer.weights[i])) for i in selected
        ]
        diag.phase_seconds["select"] = (
            diag.phase_seconds.get("select", 0.0) + time.perf_counter() - started
        )
        diag.final_piece_count = len(pieces)
        diag.max_weight = max((float(w) for w in buffer.weights), default=0.0)
        diag.selected_weight = max((p.weight for p in pieces), default=0.0)
        diag.vertices_clipped = self._hook.vertices_clipped
        return Region(pieces, projection)

    def _record_assemble(self, started: float, sub_before: float) -> None:
        """Book the constraint span minus its inclusion/exclusion sub-phases."""
        diag = self.diagnostics
        sub_delta = (
            diag.phase_seconds.get("inclusion", 0.0)
            + diag.phase_seconds.get("exclusion", 0.0)
            - sub_before
        )
        diag.phase_seconds["assemble"] = (
            diag.phase_seconds.get("assemble", 0.0)
            + (time.perf_counter() - started)
            - sub_delta
        )

    # ------------------------------------------------------------------ #
    # One constraint over the whole buffer
    # ------------------------------------------------------------------ #
    def _apply_constraint(
        self, buffer: PieceBuffer, geometry: _ConstraintGeometry
    ) -> tuple[list, list]:
        """Split every piece by the constraint (non-exact semantics).

        Mirrors ``WeightedRegionSolver._apply_constraint``: per piece, the
        satisfied parts gain the constraint weight and the original piece is
        kept as the unsatisfied fallback; slivers below the configured area
        are dropped.
        """
        diag = self.diagnostics
        n = len(buffer)

        if geometry.inclusion is not None:
            started = time.perf_counter()
            inside_parts = self._inclusion_step(buffer, geometry)
            diag.phase_seconds["inclusion"] = (
                diag.phase_seconds.get("inclusion", 0.0) + time.perf_counter() - started
            )
        else:
            inside_parts = [[buffer.part(i)] for i in range(n)]

        if geometry.exclusion is not None:
            started = time.perf_counter()
            satisfied = self._exclusion_step(inside_parts, geometry, buffer)
            diag.phase_seconds["exclusion"] = (
                diag.phase_seconds.get("exclusion", 0.0) + time.perf_counter() - started
            )
        else:
            satisfied = inside_parts

        min_area = self.config.min_piece_area_km2
        if n > 0 and not any(satisfied) and bool((buffer.areas >= min_area).all()):
            # Nothing was satisfied and every original survives the sliver
            # filter unchanged: the caller can keep the current buffer.
            return _UNCHANGED, _UNCHANGED
        parts: list = []
        weights: list[float] = []
        for i in range(n):
            gained = float(buffer.weights[i]) + geometry.weight
            for part in satisfied[i]:
                if abs(part[2]) >= min_area:
                    parts.append(part)
                    weights.append(gained)
            # Non-exact mode: the unsatisfied side keeps the original piece.
            original = buffer.part(i)
            if abs(original[2]) >= min_area:
                parts.append(original)
                weights.append(float(buffer.weights[i]))
        return parts, weights

    # ------------------------------------------------------------------ #
    # Inclusion: batched convex clip with prefilter
    # ------------------------------------------------------------------ #
    def _inclusion_step(
        self, buffer: PieceBuffer, geometry: _ConstraintGeometry
    ) -> list[list]:
        n = len(buffer)
        inclusion = geometry.inclusion
        assert inclusion is not None
        diag = self.diagnostics

        if not geometry.inc_convex:
            # Non-convex inclusion: Greiner-Hormann territory; run the exact
            # object-path boolean per piece.
            out: list[list] = []
            for i in range(n):
                polys = intersect_polygons(buffer.polygon(i), inclusion)
                out.append([_part_from_polygon(p) for p in polys])
            return out

        bbox = geometry.inc_bbox
        boxes = buffer.bboxes

        # Replica of BoundingBox.intersects(piece_box, clip_box).  Runs
        # before any table construction so constraints whose geometry misses
        # every piece stay as cheap as the box comparisons.
        disjoint = (
            (boxes[:, 2] < bbox.min_x)
            | (bbox.max_x < boxes[:, 0])
            | (boxes[:, 3] < bbox.min_y)
            | (bbox.max_y < boxes[:, 1])
        )
        diag.prefilter_bbox += int(disjoint.sum())

        out = [[] for _ in range(n)]
        candidates = np.nonzero(~disjoint)[0]
        if len(candidates) == 0:
            return out
        geometry.ensure_inclusion_tables()

        # Whole-population fast path: when every corner of the union
        # bounding box sits within the clip's (shaved) apothem of its
        # centroid, every vertex of every piece does too -- the dominant
        # case for the huge calibrated outer disks -- and each piece is
        # returned unchanged without any per-piece classification.  (No
        # piece can be bbox-disjoint in that situation, so the earlier
        # rejection never fired.)
        cx, cy = geometry.inc_center
        ux0 = float(boxes[:, 0].min())
        uy0 = float(boxes[:, 1].min())
        ux1 = float(boxes[:, 2].max())
        uy1 = float(boxes[:, 3].max())
        far = max(
            (ux0 - cx) * (ux0 - cx),
            (ux1 - cx) * (ux1 - cx),
        ) + max(
            (uy0 - cy) * (uy0 - cy),
            (uy1 - cy) * (uy1 - cy),
        )
        if far <= geometry.inc_apothem2:
            diag.prefilter_inside += n
            return [[_ccw_part(buffer.part(i))] for i in range(n)]

        # Centre-distance prefilter: every vertex within the (shaved)
        # apothem of the clip centroid is strictly inside every clip edge,
        # so the clipper would return the piece unchanged.
        cx, cy = geometry.inc_center
        dx = buffer.xs - cx
        dy = buffer.ys - cy
        d2 = dx * dx + dy * dy
        starts = buffer.offsets[:-1]
        max_d2 = np.maximum.reduceat(d2, starts)
        center_inside = max_d2[candidates] <= geometry.inc_apothem2

        undecided: list[int] = []
        for idx, piece in enumerate(candidates):
            if center_inside[idx]:
                out[piece] = [_ccw_part(buffer.part(piece))]
                diag.prefilter_inside += 1
            else:
                undecided.append(int(piece))
        if not undecided:
            return out

        # Exact side-matrix classification on the remaining pieces: the
        # sidedness expression matches the clipper's first pass bitwise, so
        # "all vertices inside every edge" reproduces the all-kept fast path
        # and "all vertices outside one edge (with margin)" reproduces the
        # empty result.  One (piece, edge, vertex) tensor covers them all.
        edges = geometry.inc_edges
        ex = edges[:, 2] - edges[:, 0]
        ey = edges[:, 3] - edges[:, 1]
        parts_u = [buffer.part(i) for i in undecided]
        X, Y, counts, _signed = _pad_parts(parts_u)
        valid = _lanes(X.shape[1])[None, None, :] < counts[:, None, None]
        cross = ex[None, :, None] * (Y[:, None, :] - edges[:, 1][None, :, None]) - ey[
            None, :, None
        ] * (X[:, None, :] - edges[:, 0][None, :, None])
        all_inside = np.where(valid, cross >= -EPSILON, True).all(axis=(1, 2))
        any_edge_out = (
            np.where(valid, cross < -(EPSILON + _PREFILTER_MARGIN), True)
            .all(axis=2)
            .any(axis=1)
        )

        still: list[int] = []
        still_rows: list[int] = []
        for idx, piece in enumerate(undecided):
            if all_inside[idx]:
                out[piece] = [_ccw_part(buffer.part(piece))]
                diag.prefilter_inside += 1
            elif any_edge_out[idx]:
                diag.prefilter_outside += 1
            else:
                still.append(piece)
                still_rows.append(idx)
        if not still:
            return out

        diag.pieces_clipped += len(still)
        still_verts = int(
            sum(buffer.offsets[i + 1] - buffer.offsets[i] for i in still)
        )
        if len(still) < _MIN_BATCH_ROWS and still_verts < _MIN_BATCH_VERTICES:
            # Too few (and small enough) pieces to amortize batched passes:
            # run the scalar reference clipper (bit-identical by construction).
            for piece in still:
                clipped = clip_convex(buffer.polygon(piece), inclusion)
                if clipped is not None:
                    out[piece] = [_part_from_polygon(clipped)]
            return out

        # Edge filtering: an edge every remaining vertex is inside (with the
        # float-safety margin) clips nothing for any piece -- intermediate
        # clip points are convex combinations of these vertices, so they stay
        # inside too and the pass provably returns its input.  Only edges
        # with geometry near the pieces are run.
        near = (cross[still_rows] < (-EPSILON + _PREFILTER_MARGIN)) & valid[still_rows]
        needed = near.any(axis=(0, 2))

        parts = [_ccw_part(buffer.part(i)) for i in still]
        results = _clip_convex_rows(parts, geometry.inc_edges[needed], self._hook)
        for piece, result in zip(still, results):
            if result is not None:
                out[piece] = [result]
        return out

    # ------------------------------------------------------------------ #
    # Exclusion: cautious subtraction with vectorized shortcuts
    # ------------------------------------------------------------------ #
    def _exclusion_step(
        self,
        inside_parts: list[list],
        geometry: _ConstraintGeometry,
        buffer: PieceBuffer | None = None,
    ) -> list[list]:
        """``subtract_cautious`` over every intermediate part, batched.

        Per part the decision tree matches the scalar code: bounding-box
        disjoint keeps the part, a strictly-contained exclusion keyholes it,
        a convex exclusion is wedge-subtracted (all wedges of all parts in
        one batched chain run), anything else rides the object fallback.
        """
        exclusion = geometry.exclusion
        assert exclusion is not None
        bbox = geometry.exc_bbox
        diag = self.diagnostics
        tol = 1e-6

        flat: list[_Part] = []
        owners: list[int] = []
        for pi, parts in enumerate(inside_parts):
            for part in parts:
                flat.append(part)
                owners.append(pi)
        if not flat:
            return [[] for _ in inside_parts]

        # Pad once; every stage below (bbox classification, containment,
        # wedge sidedness) reads the same row arrays.  In the dominant case
        # -- every piece passed the inclusion fully-inside, so the parts are
        # the buffer's own coordinate slices, unreversed -- the buffer's
        # cached padded rows are reused outright.
        if (
            buffer is not None
            and len(flat) == len(buffer)
            and all(p[0].base is buffer.xs for p in flat)
        ):
            X, Y, counts = buffer.padded()
        else:
            X, Y, counts, _signed = _pad_parts(flat)
        lanes = _lanes(X.shape[1])[None, :]
        valid = lanes < counts[:, None]
        inf = np.inf
        minx = np.where(valid, X, inf).min(axis=1)
        miny = np.where(valid, Y, inf).min(axis=1)
        maxx = np.where(valid, X, -inf).max(axis=1)
        maxy = np.where(valid, Y, -inf).max(axis=1)
        # Replica of piece_box.intersects(exclusion_box).
        disjoint = (
            (maxx < bbox.min_x)
            | (bbox.max_x < minx)
            | (maxy < bbox.min_y)
            | (bbox.max_y < miny)
        )
        # Keyhole precondition: exclusion bbox inside the piece bbox (with
        # the scalar path's tolerance).
        keyhole_able = (
            ~disjoint
            & (minx - tol <= bbox.min_x)
            & (miny - tol <= bbox.min_y)
            & (bbox.max_x <= maxx + tol)
            & (bbox.max_y <= maxy + tol)
        )

        results: list[list | None] = [None] * len(flat)
        keyhole_idx: list[int] = []
        subtract_idx: list[int] = []
        for fi, part in enumerate(flat):
            if disjoint[fi]:
                results[fi] = [part]
                diag.prefilter_bbox += 1
            elif keyhole_able[fi]:
                keyhole_idx.append(fi)
            else:
                subtract_idx.append(fi)

        if keyhole_idx:
            geometry.ensure_keyhole_tables()
            boxes = np.column_stack([minx, miny, maxx, maxy])
            kX = X[keyhole_idx]
            kY = Y[keyhole_idx]
            kcounts = counts[keyhole_idx]
            contained = _contain_all_queries(
                [flat[fi] for fi in keyhole_idx],
                kX,
                kY,
                kcounts,
                boxes[keyhole_idx],
                geometry.exc_coords[:, 0],
                geometry.exc_coords[:, 1],
            )
            bridges = _keyhole_bridges(
                kX, kY, kcounts, contained, geometry.exc_rev_x, geometry.exc_rev_y
            )
            batch_rows: list[int] = []
            for k, fi in enumerate(keyhole_idx):
                if contained[k]:
                    diag.prefilter_inside += 1
                    if flat[fi][2] > 0.0:
                        batch_rows.append(k)
                    else:
                        # CW-stored ring: the bridge scan order depends on
                        # orientation, so this (rare) part goes scalar.
                        results[fi] = [
                            _with_hole_part(
                                flat[fi], geometry.exc_rev_x, geometry.exc_rev_y
                            )
                        ]
                else:
                    subtract_idx.append(fi)
            if batch_rows:
                keyholed = _with_hole_batch(
                    kX,
                    kY,
                    kcounts,
                    np.asarray(batch_rows),
                    bridges,
                    geometry.exc_rev_x,
                    geometry.exc_rev_y,
                )
                for k, part in zip(batch_rows, keyholed):
                    results[keyhole_idx[k]] = [part]
            subtract_idx.sort()

        if subtract_idx:
            if not geometry.exc_convex:
                # General subtraction (Greiner-Hormann): object fallback.
                for fi in subtract_idx:
                    polys = subtract_polygons(_polygon_from_part(flat[fi]), exclusion)
                    results[fi] = [_part_from_polygon(p) for p in polys]
            elif len(subtract_idx) < _MIN_BATCH_ROWS and (
                int(counts[subtract_idx].sum()) < _MIN_BATCH_VERTICES
            ):
                # Too few parts to amortize the wedge tensors -- and small
                # enough that the scalar per-vertex loops win.  Big keyholed
                # rings batch even alone: a scalar wedge decomposition on a
                # multi-hundred-vertex ring costs milliseconds.
                diag.pieces_clipped += len(subtract_idx)
                for fi in subtract_idx:
                    polys = subtract_convex(_polygon_from_part(flat[fi]), exclusion)
                    results[fi] = [_part_from_polygon(p) for p in polys]
            else:
                self._subtract_convex_batch(
                    flat, subtract_idx, X, Y, counts, geometry, results
                )

        out: list[list] = [[] for _ in inside_parts]
        for fi, kept in enumerate(results):
            if kept:
                out[owners[fi]].extend(kept)
        return out

    def _subtract_convex_batch(
        self,
        flat: list[_Part],
        subtract_idx: list[int],
        flatX: np.ndarray,
        flatY: np.ndarray,
        flat_counts: np.ndarray,
        geometry: _ConstraintGeometry,
        results: list[list | None],
    ) -> None:
        """Batched ``subtract_convex`` over many parts at once.

        Wedge ``i`` of the decomposition starts by clipping the part to the
        outside of exclusion edge ``i``; when every vertex is inside that
        half-plane (sidedness expression false for all, evaluated with the
        exact swapped-endpoint arithmetic of ``keep_left=False``), the wedge
        yields nothing and is skipped -- the scalar fast path, evaluated for
        all (part, wedge) pairs in one tensor.  Every surviving pair becomes
        one chain row for the batched half-plane runner.
        """
        diag = self.diagnostics
        geometry.ensure_wedge_tables()
        ex, ey, rbx, rby = geometry.exc_wedge_sides
        X = flatX[subtract_idx]
        Y = flatY[subtract_idx]
        counts = flat_counts[subtract_idx]
        valid = _lanes(X.shape[1])[None, None, :] < counts[:, None, None]
        side = ex[None, :, None] * (Y[:, None, :] - rby[None, :, None]) - ey[
            None, :, None
        ] * (X[:, None, :] - rbx[None, :, None])
        nontrivial = ((side >= -EPSILON) & valid).any(axis=2)

        # The wedge's inner clips keep the part inside edges 0..i-1; an edge
        # every part vertex is inside (with the float-safety margin) clips
        # nothing -- chain intermediates are convex combinations of the
        # part's vertices -- so it is dropped from that part's sequences.
        edges = geometry.exc_edges
        ex_k = edges[:, 2] - edges[:, 0]
        ey_k = edges[:, 3] - edges[:, 1]
        side_k = ex_k[None, :, None] * (Y[:, None, :] - edges[:, 1][None, :, None]) - ey_k[
            None, :, None
        ] * (X[:, None, :] - edges[:, 0][None, :, None])
        keep_needed = ((side_k < (-EPSILON + _PREFILTER_MARGIN)) & valid).any(axis=2)

        chain_parts: list[_Part] = []
        chain_seqs: list[np.ndarray] = []
        chain_owner: list[int] = []
        for k, fi in enumerate(subtract_idx):
            wedges = np.nonzero(nontrivial[k])[0]
            if len(wedges) == 0:
                # Every wedge clips to nothing: the part lies within the
                # exclusion and vanishes.
                diag.prefilter_outside += 1
                results[fi] = []
                continue
            diag.pieces_clipped += 1
            inner_needed = np.nonzero(keep_needed[k])[0]
            for i in wedges:
                swapped = np.array(
                    [edges[i, 2], edges[i, 3], edges[i, 0], edges[i, 1]]
                )[None, :]
                inner = inner_needed[inner_needed < i]
                chain_parts.append(flat[fi])
                chain_seqs.append(np.concatenate([swapped, edges[inner]], axis=0))
                chain_owner.append(fi)
            results[fi] = []
        if not chain_parts:
            return
        chained = _halfplane_chain_rows(chain_parts, chain_seqs, self._hook)
        for fi, piece in zip(chain_owner, chained):
            if piece is not None:
                results[fi].append(piece)

    # ------------------------------------------------------------------ #
    # Selection (stable scalar sort over cached metrics)
    # ------------------------------------------------------------------ #
    def _select(self, buffer: PieceBuffer) -> list[int]:
        if len(buffer) == 0:
            return []
        weights = buffer.weights.tolist()
        areas = buffer.areas.tolist()
        ranked = sorted(
            range(len(buffer)), key=lambda i: (weights[i], -areas[i]), reverse=True
        )
        config = self.config
        selected: list[int] = []
        accumulated = 0.0
        top_weight = weights[ranked[0]]
        for i in ranked:
            if selected and accumulated >= config.target_region_area_km2:
                break
            if selected and weights[i] < top_weight and accumulated > 0:
                if accumulated >= config.target_region_area_km2 / 4.0:
                    break
            selected.append(i)
            accumulated += areas[i]
        return selected


# --------------------------------------------------------------------------- #
# Part conversions
# --------------------------------------------------------------------------- #
def _part_from_polygon(polygon: Polygon) -> _Part:
    coords = np.asarray(polygon.coords)
    return (
        np.ascontiguousarray(coords[:, 0]),
        np.ascontiguousarray(coords[:, 1]),
        polygon.signed_area(),
    )


def _polygon_from_part(part: _Part) -> Polygon:
    xs, ys, _signed = part
    return Polygon([Point2D(x, y) for x, y in zip(xs.tolist(), ys.tolist())])


def _ccw_part(part: _Part) -> _Part:
    """The part re-oriented CCW, exactly like ``_ccw_coords``.

    The signed area of a reversed ring is recomputed with the sequential
    shoelace (not negated): the object path would build a new ``Polygon``
    from the reversed vertices and measure it, and reversing the summation
    order can differ from sign flipping in the last ulp.
    """
    xs, ys, signed = part
    if signed > 0.0:
        return part
    rx = xs[::-1].copy()
    ry = ys[::-1].copy()
    return rx, ry, _shoelace(list(zip(rx.tolist(), ry.tolist())))
